//! Facade for the extsec workspace: re-exports [`extsec_core`] plus the
//! networked front end as [`server`] and the adversarial campaign
//! explorer as [`campaign`].
#![forbid(unsafe_code)]
pub use extsec_campaign as campaign;
pub use extsec_core::*;
pub use extsec_server as server;
