//! Facade for the extsec workspace: re-exports [`extsec_core`].
#![forbid(unsafe_code)]
pub use extsec_core::*;
