//! Offline stand-in for `serde_derive`.
//!
//! Parses the item with `proc_macro::TokenTree` directly (no syn/quote)
//! and emits `serde::Serialize` / `serde::Deserialize` impls against the
//! shim's `Content` tree, matching serde's default representation:
//!
//! - named struct        -> map of fields
//! - newtype struct      -> the inner value, transparently
//! - tuple struct        -> sequence
//! - unit struct         -> null
//! - enum                -> externally tagged (`"Variant"`,
//!   `{"Variant": value}`, `{"Variant": [..]}`, `{"Variant": {..}}`)
//!
//! Supports exactly what this workspace needs: non-generic items, doc
//! comments and inert attributes (`#[default]`), explicit discriminants
//! (`Read = 0`). Generic items are rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field list.
enum Fields {
    /// `{ a: T, b: U }` with the names in order.
    Named(Vec<String>),
    /// `( T, U )` with the arity.
    Tuple(usize),
    /// No payload.
    Unit,
}

/// A parsed enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// A parsed `struct` or `enum` item.
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated code failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__c: &::serde::Content) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("derive(Deserialize): generated code failed to parse")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } => name,
        Item::Enum { name, .. } => name,
    }
}

// --- parsing ------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes_and_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive shim: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("derive shim: unexpected token after `struct {name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("derive shim: unexpected token after `enum {name}`: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("derive shim: expected `struct` or `enum`, got `{other}`"),
    }
}

/// Advances past `#[...]` attributes (incl. doc comments) and `pub`/
/// `pub(...)` visibility markers.
fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` and the `[...]` group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("derive shim: expected identifier, got {other:?}"),
    }
}

/// Parses `name: Type, ...` returning the field names in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut names = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        names.push(expect_ident(&tokens, &mut pos));
        // Skip `: Type` up to the next top-level comma. Generic angle
        // brackets contain no commas at *token* top level only inside
        // groups, so track `<`/`>` depth explicitly.
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    names
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= 0`) and the separating comma.
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    pos += 1;
                    break;
                }
                _ => pos += 1,
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// --- code generation ----------------------------------------------------

fn serialize_struct(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}))")
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Fields::Unit => {
            let _ = name;
            "::serde::Content::Null".to_string()
        }
    }
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__m, \"{f}\")?"))
                .collect();
            format!(
                "let __m = __c.as_map().ok_or_else(|| ::serde::Error::custom(\
                     format!(\"expected map for struct {name}, got {{}}\", __c.kind())))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::deserialize(__c)?))"),
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __c.as_seq().ok_or_else(|| ::serde::Error::custom(\
                     format!(\"expected sequence for struct {name}, got {{}}\", __c.kind())))?;\n\
                 if __s.len() != {n} {{\n\
                     return Err(::serde::Error::custom(format!(\
                         \"expected {n} elements for struct {name}, got {{}}\", __s.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Fields::Unit => format!("let _ = __c; Ok({name})"),
    }
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let vn = &v.name;
        let arm = match &v.fields {
            Fields::Unit => format!(
                "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),"
            ),
            Fields::Tuple(1) => format!(
                "{name}::{vn}(__f0) => ::serde::Content::Map(vec![\
                     (\"{vn}\".to_string(), ::serde::Serialize::serialize(__f0))]),"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::serialize(__f{i})"))
                    .collect();
                format!(
                    "{name}::{vn}({}) => ::serde::Content::Map(vec![\
                         (\"{vn}\".to_string(), ::serde::Content::Seq(vec![{}]))]),",
                    binds.join(", "),
                    items.join(", ")
                )
            }
            Fields::Named(field_names) => {
                let binds = field_names.join(", ");
                let entries: Vec<String> = field_names
                    .iter()
                    .map(|f| {
                        format!("(\"{f}\".to_string(), ::serde::Serialize::serialize({f}))")
                    })
                    .collect();
                format!(
                    "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![\
                         (\"{vn}\".to_string(), ::serde::Content::Map(vec![{}]))]),",
                    entries.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut payload_arms = Vec::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                unit_arms.push(format!("\"{vn}\" => Ok({name}::{vn}),"));
            }
            Fields::Tuple(1) => {
                payload_arms.push(format!(
                    "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize(__v)?)),"
                ));
            }
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize(&__s[{i}])?"))
                    .collect();
                payload_arms.push(format!(
                    "\"{vn}\" => {{\n\
                         let __s = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\
                             format!(\"expected sequence for variant {name}::{vn}, got {{}}\", __v.kind())))?;\n\
                         if __s.len() != {n} {{\n\
                             return Err(::serde::Error::custom(format!(\
                                 \"expected {n} elements for variant {name}::{vn}, got {{}}\", __s.len())));\n\
                         }}\n\
                         Ok({name}::{vn}({}))\n\
                     }}",
                    inits.join(", ")
                ));
            }
            Fields::Named(field_names) => {
                let inits: Vec<String> = field_names
                    .iter()
                    .map(|f| format!("{f}: ::serde::__field(__m, \"{f}\")?"))
                    .collect();
                payload_arms.push(format!(
                    "\"{vn}\" => {{\n\
                         let __m = __v.as_map().ok_or_else(|| ::serde::Error::custom(\
                             format!(\"expected map for variant {name}::{vn}, got {{}}\", __v.kind())))?;\n\
                         Ok({name}::{vn} {{ {} }})\n\
                     }}",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match __c {{\n\
             ::serde::Content::Str(__tag) => match __tag.as_str() {{\n\
                 {}\n\
                 __other => Err(::serde::Error::custom(format!(\
                     \"unknown unit variant `{{__other}}` for enum {name}\"))),\n\
             }},\n\
             ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __v) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {}\n\
                     __other => Err(::serde::Error::custom(format!(\
                         \"unknown variant `{{__other}}` for enum {name}\"))),\n\
                 }}\n\
             }}\n\
             __other => Err(::serde::Error::custom(format!(\
                 \"expected enum {name}, got {{}}\", __other.kind()))),\n\
         }}",
        unit_arms.join("\n"),
        payload_arms.join("\n")
    )
}
