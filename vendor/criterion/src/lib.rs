//! Offline stand-in for `criterion`.
//!
//! Keeps the harness API this workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros) but measures with a plain
//! doubling-batch wall-clock loop and prints a one-line mean per bench —
//! no statistics, plots, or persistence.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness state: timing budgets shared by every bench.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; this shim reports a mean, so the
    /// sample count does not apply.
    pub fn sample_size(self, _samples: usize) -> Self {
        self
    }

    /// Sets the warm-up budget per bench.
    pub fn warm_up_time(mut self, warm_up: Duration) -> Self {
        self.warm_up = warm_up;
        self
    }

    /// Sets the measurement budget per bench.
    pub fn measurement_time(mut self, measurement: Duration) -> Self {
        self.measurement = measurement;
        self
    }

    /// Starts a named group of benches.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single bench outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.warm_up, self.measurement, &id.into_label(), &mut f);
        self
    }
}

/// A named collection of related benches.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a bench over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(
            self.criterion.warm_up,
            self.criterion.measurement,
            &label,
            &mut |b| f(b, input),
        );
        self
    }

    /// Runs a bench with no external input.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(self.criterion.warm_up, self.criterion.measurement, &label, &mut f);
        self
    }

    /// Ends the group (a no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// A two-part bench label (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Bench identifiers: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoLabel {
    /// The printable label.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Passed to bench closures; [`Bencher::iter`] runs the measurement.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration and total iterations, once measured.
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Measures `f`: warms up for the warm-up budget, then runs doubling
    /// batches until the measurement budget elapses.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
        }

        let mut total_iters: u64 = 0;
        let mut batch: u64 = 1;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            total_iters += batch;
            let elapsed = start.elapsed();
            if elapsed >= self.measurement {
                let mean_ns = elapsed.as_nanos() as f64 / total_iters as f64;
                self.result = Some((mean_ns, total_iters));
                return;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }
}

fn run_bench(
    warm_up: Duration,
    measurement: Duration,
    label: &str,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        warm_up,
        measurement,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean_ns, iters)) => {
            let (value, unit) = if mean_ns >= 1_000_000.0 {
                (mean_ns / 1_000_000.0, "ms")
            } else if mean_ns >= 1_000.0 {
                (mean_ns / 1_000.0, "µs")
            } else {
                (mean_ns, "ns")
            };
            println!("{label:<56} time: {value:>10.3} {unit}/iter ({iters} iterations)");
        }
        None => println!("{label:<56} (no measurement: bencher.iter was not called)"),
    }
}

/// Declares a bench group: either `criterion_group!(name, target, ...)` or
/// the long `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.bench_with_input(BenchmarkId::new("f", 1), &2u64, |b, x| {
                b.iter(|| {
                    ran += 1;
                    x + 1
                })
            });
            group.bench_function("plain", |b| b.iter(|| 1 + 1));
            group.finish();
        }
        c.bench_function("top", |b| b.iter(|| 40 + 2));
        assert!(ran > 0);
    }
}
