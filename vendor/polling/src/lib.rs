//! Offline stand-in for the `polling` crate: a minimal readiness poller.
//!
//! Provides a safe, level-triggered interface over the operating system's
//! readiness notification facility: `epoll(7)` on Linux and `poll(2)` on
//! other Unix platforms. No async runtime, no callbacks — callers register
//! file descriptors under a `usize` key, block in [`Poller::wait`], and get
//! back a list of [`Event`]s naming which keys are ready.
//!
//! Divergences from the real crate, for offline builds:
//! - always level-triggered (the real crate defaults to oneshot mode);
//! - registration is a safe call — callers are responsible for deleting a
//!   source before closing its descriptor;
//! - only the epoll and poll backends exist.

#![warn(missing_docs)]

use std::io;
use std::os::unix::io::AsRawFd;
use std::time::Duration;

/// Key reserved for the internal wakeup channel; user registrations must
/// not use it.
const NOTIFY_KEY: usize = usize::MAX;

/// Readiness interest or readiness result for one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier for the registered source.
    pub key: usize,
    /// Interest in (or occurrence of) read readiness.
    pub readable: bool,
    /// Interest in (or occurrence of) write readiness.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Self {
        Event { key, readable: true, writable: false }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Self {
        Event { key, readable: false, writable: true }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Self {
        Event { key, readable: true, writable: true }
    }

    /// No interest; the source stays registered but reports nothing.
    pub fn none(key: usize) -> Self {
        Event { key, readable: false, writable: false }
    }
}

/// Reusable buffer of readiness events filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// New, empty event buffer.
    pub fn new() -> Self {
        Events { inner: Vec::with_capacity(1024) }
    }

    /// Iterate over the events reported by the last `wait`.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    /// Number of events reported by the last `wait`.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the last `wait` reported no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drop all buffered events.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

/// A readiness poller multiplexing many registered file descriptors.
#[derive(Debug)]
pub struct Poller {
    sys: sys::Poller,
}

impl Poller {
    /// Create a new poller with an internal wakeup channel.
    pub fn new() -> io::Result<Self> {
        Ok(Poller { sys: sys::Poller::new()? })
    }

    /// Register `source` under `interest.key`. The key must be unique among
    /// live registrations and must not be `usize::MAX` (reserved).
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        assert_ne!(interest.key, NOTIFY_KEY, "poller key usize::MAX is reserved");
        self.sys.add(source.as_raw_fd(), interest)
    }

    /// Change the interest set of an already-registered source.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        assert_ne!(interest.key, NOTIFY_KEY, "poller key usize::MAX is reserved");
        self.sys.modify(source.as_raw_fd(), interest)
    }

    /// Remove a source from the poller. Must be called before the source's
    /// descriptor is closed.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.sys.delete(source.as_raw_fd())
    }

    /// Block until at least one registered source is ready, `timeout`
    /// elapses (`None` blocks indefinitely), or [`Poller::notify`] is
    /// called. Returns the number of events appended to `events`
    /// (the buffer is cleared first).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.sys.wait(&mut events.inner, timeout)
    }

    /// Wake up a concurrent or future [`Poller::wait`] call from any thread.
    pub fn notify(&self) -> io::Result<()> {
        self.sys.notify()
    }
}

/// Round a timeout up to whole milliseconds so sub-millisecond waits do not
/// degenerate into busy loops; `None` means block forever.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            if d.is_zero() {
                0
            } else {
                let ms = d.as_millis().max(1);
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! epoll backend: raw FFI against the libc that std already links.

    use super::{timeout_ms, Event, NOTIFY_KEY};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    // The kernel ABI packs epoll_event on x86-64 (no padding between the
    // mask and the payload); other architectures use natural alignment.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn interest_mask(interest: Event) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    #[derive(Debug)]
    pub(super) struct Poller {
        epfd: RawFd,
        event_fd: RawFd,
    }

    // The poller only hands out `&self` operations that epoll already
    // serializes in the kernel.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        pub(super) fn new() -> io::Result<Self> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let event_fd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller { epfd, event_fd };
            poller.ctl(
                EPOLL_CTL_ADD,
                event_fd,
                EpollEvent { events: EPOLLIN, data: NOTIFY_KEY as u64 },
            )?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, mut ev: EpollEvent) -> io::Result<()> {
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub(super) fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                EpollEvent { events: interest_mask(interest), data: interest.key as u64 },
            )
        }

        pub(super) fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                EpollEvent { events: interest_mask(interest), data: interest.key as u64 },
            )
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, EpollEvent { events: 0, data: 0 })
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 1024];
            let ret = unsafe {
                epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms(timeout))
            };
            let n = match cvt(ret) {
                Ok(n) => n as usize,
                // A signal interrupted the wait: report an empty set and
                // let the caller recompute its deadline and re-enter.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &buf[..n] {
                let key = { ev.data } as usize;
                if key == NOTIFY_KEY {
                    // Drain the eventfd so the next wait can block again.
                    let mut scratch = [0u8; 8];
                    unsafe { read(self.event_fd, scratch.as_mut_ptr(), scratch.len()) };
                    continue;
                }
                let bits = { ev.events };
                out.push(Event {
                    key,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(out.len())
        }

        pub(super) fn notify(&self) -> io::Result<()> {
            let one: u64 = 1;
            let ret = unsafe { write(self.event_fd, one.to_ne_bytes().as_ptr(), 8) };
            // A full eventfd counter (EAGAIN) already guarantees a wakeup.
            if ret < 0 {
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.event_fd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! poll(2) backend for non-Linux Unix platforms: a registration table
    //! rebuilt into a pollfd array on every wait. Correct, not fast — the
    //! reactor's hot deployments are Linux/epoll.

    use super::{timeout_ms, Event, NOTIFY_KEY};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = if cfg!(any(
        target_os = "macos",
        target_os = "ios",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd"
    )) {
        0x4
    } else {
        0o4000
    };

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    #[derive(Debug)]
    pub(super) struct Poller {
        registry: Mutex<HashMap<RawFd, Event>>,
        wake_rx: RawFd,
        wake_tx: RawFd,
    }

    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        pub(super) fn new() -> io::Result<Self> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) };
            }
            Ok(Poller {
                registry: Mutex::new(HashMap::new()),
                wake_rx: fds[0],
                wake_tx: fds[1],
            })
        }

        pub(super) fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap();
            if reg.insert(fd, interest).is_some() {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
            }
            Ok(())
        }

        pub(super) fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap();
            match reg.get_mut(&fd) {
                Some(slot) => {
                    *slot = interest;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap();
            match reg.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut fds = vec![PollFd { fd: self.wake_rx, events: POLLIN, revents: 0 }];
            let mut keys = vec![NOTIFY_KEY];
            {
                let reg = self.registry.lock().unwrap();
                for (&fd, interest) in reg.iter() {
                    let mut events = 0i16;
                    if interest.readable {
                        events |= POLLIN;
                    }
                    if interest.writable {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd { fd, events, revents: 0 });
                    keys.push(interest.key);
                }
            }
            let ret =
                unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
            if ret < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for (slot, &key) in fds.iter().zip(keys.iter()) {
                if slot.revents == 0 {
                    continue;
                }
                if key == NOTIFY_KEY {
                    let mut scratch = [0u8; 64];
                    while unsafe { read(self.wake_rx, scratch.as_mut_ptr(), scratch.len()) } > 0 {}
                    continue;
                }
                out.push(Event {
                    key,
                    readable: slot.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: slot.revents & (POLLOUT | POLLHUP | POLLERR) != 0,
                });
            }
            Ok(out.len())
        }

        pub(super) fn notify(&self) -> io::Result<()> {
            let byte = [1u8];
            unsafe { write(self.wake_tx, byte.as_ptr(), 1) };
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wake_rx);
                close(self.wake_tx);
            }
        }
    }
}

#[cfg(not(unix))]
compile_error!("the vendored polling stand-in supports Unix platforms only");

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn reports_read_readiness_when_data_arrives() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&rx, Event::readable(7)).unwrap();

        let mut events = Events::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert_eq!(n, 0, "no data yet, wait should time out");

        tx.write_all(b"ping").unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);

        let mut rx = rx;
        let mut buf = [0u8; 16];
        assert_eq!(rx.read(&mut buf).unwrap(), 4);
        poller.delete(&rx).unwrap();
    }

    #[test]
    fn level_triggered_until_drained() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        tx.write_all(b"data").unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&rx, Event::readable(1)).unwrap();
        let mut events = Events::new();
        for _ in 0..3 {
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1, "level-triggered: readiness repeats until drained");
        }
        poller.delete(&rx).unwrap();
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let remote = poller.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.notify().unwrap();
        });
        let mut events = Events::new();
        let start = Instant::now();
        let n = poller.wait(&mut events, Some(Duration::from_secs(30))).unwrap();
        assert_eq!(n, 0, "notify produces a wakeup without user events");
        assert!(start.elapsed() < Duration::from_secs(10));
        handle.join().unwrap();
    }

    #[test]
    fn modify_enables_write_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tx = TcpStream::connect(addr).unwrap();
        let (_rx, _) = listener.accept().unwrap();
        tx.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&tx, Event::none(3)).unwrap();
        let mut events = Events::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert_eq!(n, 0, "no interest registered yet");

        poller.modify(&tx, Event::writable(3)).unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 3);
        assert!(ev.writable);
        poller.delete(&tx).unwrap();
    }
}
