//! Offline stand-in for `proptest`.
//!
//! Keeps the API shape this workspace uses — `proptest!`, `Strategy` with
//! `prop_map`/`prop_recursive`, range/tuple/collection strategies,
//! `prop_oneof!`, `prop_assert*!` — on top of a deterministic xorshift
//! generator. Differences from real proptest: no shrinking (a failing
//! case panics with its case number; every run is deterministic per test
//! name, so failures reproduce exactly) and no persistence files.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration, error type, and the deterministic generator.

    use std::fmt;

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl fmt::Display) -> Self {
            TestCaseError(msg.to_string())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic xorshift64* generator, seeded from the test name so
    /// every test gets a stable, distinct stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary tag (e.g. the test name).
        pub fn deterministic(tag: &str) -> Self {
            // FNV-1a over the tag, then splitmix64 to spread it.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            TestRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Returns a uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and core combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds recursive values: `recurse` receives a strategy for the
        /// previous depth level and returns the next level's strategy.
        /// `_desired_size`/`_expected_branch_size` are accepted for API
        /// compatibility but depth alone bounds recursion here.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let deeper = recurse(current.clone()).boxed();
                let leaf = base.clone();
                current = BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
                    // A leaf 1 time in 4 keeps expected sizes modest while
                    // still exercising full depth.
                    if rng.below(4) == 0 {
                        leaf.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }));
            }
            current
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(pub(crate) Arc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Boxes `strategy`.
        pub fn new<S>(strategy: S) -> Self
        where
            S: Strategy<Value = T> + 'static,
            T: 'static,
        {
            strategy.boxed()
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A weighted choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Creates a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! with zero total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (weight, strategy) in &self.arms {
                if pick < *weight as u64 {
                    return strategy.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `&str` strategies are regexes generating matching strings, as in
    /// real proptest. Supports the subset this workspace uses: literal
    /// characters, `.`, character classes (`[a-z0-9_/]` with ranges and
    /// singletons), and `{n}`/`{m,n}` quantifiers.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_regex(self);
            let mut out = String::new();
            for atom in &atoms {
                let span = atom.max - atom.min + 1;
                let count = atom.min + rng.below(span as u64) as u32;
                for _ in 0..count {
                    out.push(pick_char(&atom.ranges, rng));
                }
            }
            out
        }
    }

    struct RegexAtom {
        ranges: Vec<(char, char)>,
        min: u32,
        max: u32,
    }

    fn parse_regex(pattern: &str) -> Vec<RegexAtom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let ranges = match chars[i] {
                '[' => {
                    let mut ranges = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((chars[i], chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((chars[i], chars[i]));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in regex `{pattern}`");
                    i += 1; // ']'
                    ranges
                }
                '.' => {
                    i += 1;
                    // Printable ASCII plus a couple of multi-byte spans to
                    // exercise UTF-8 handling downstream.
                    vec![(' ', '~'), ('¡', 'ÿ'), ('一', '丐')]
                }
                '\\' => {
                    i += 1;
                    assert!(i < chars.len(), "trailing backslash in regex `{pattern}`");
                    let c = chars[i];
                    i += 1;
                    vec![(c, c)]
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad quantifier"),
                        hi.parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(RegexAtom { ranges, min, max });
        }
        atoms
    }

    fn pick_char(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u64 = ranges
            .iter()
            .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
            .sum();
        let mut pick = rng.below(total);
        for (lo, hi) in ranges {
            let size = (*hi as u64) - (*lo as u64) + 1;
            if pick < size {
                return char::from_u32(*lo as u32 + pick as u32)
                    .expect("non-scalar in regex class");
            }
            pick -= size;
        }
        unreachable!("char pick out of range")
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A half-open range of collection sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.max_exclusive - self.min) as u64;
            self.min + rng.below(span.max(1)) as usize
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>`; duplicates collapse, so the set may be
    /// smaller than the drawn size (as with real proptest under a tight
    /// element domain).
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates sets of `element` with draw counts in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option<T>` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `Some` three times in four.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// Generates `Option`s of `element`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

pub mod sample {
    //! Sampling from explicit collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy picking uniformly from a fixed list.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Picks uniformly from `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty list");
        Select(items)
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Either boolean, uniformly.
    pub const ANY: BoolAny = BoolAny;
}

pub mod prop {
    //! The `prop::` path alias used by `proptest::prelude::*`.

    pub use crate::bool;
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

pub mod prelude {
    //! Everything tests import.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ($($strategy,)+);
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                ::std::module_path!(), "::", ::std::stringify!($name)
            ));
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        { $body };
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    ::std::panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        ::std::stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::BoxedStrategy::new($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::BoxedStrategy::new($strategy)),)+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{:?}` == `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __l,
                    __r,
                    ::std::format!($($fmt)+)
                );
            }
        }
    };
}

/// Fails the current case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{:?}` != `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0..10u32, y in -5i64..5, z in 0..=3usize) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&y));
            prop_assert!(z <= 3);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0..100u8, 2..6),
            s in crate::collection::btree_set(0..10u16, 0..5),
            o in crate::option::of(0..4u32),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(s.len() < 5);
            if let Some(x) = o {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn oneof_and_select_hit_only_listed_values(
            a in prop_oneof![Just(1u8), Just(2), Just(3)],
            b in prop_oneof![4 => Just(10u8), 1 => Just(20)],
            c in prop::sample::select(vec!["x", "y"]),
        ) {
            prop_assert!(matches!(a, 1..=3));
            prop_assert!(b == 10 || b == 20);
            prop_assert!(c == "x" || c == "y");
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn recursive_strategies_bound_depth(
            t in (0i64..10).prop_map(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            })
        ) {
            prop_assert!(depth(&t) <= 4);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::deterministic("t1");
        let mut b = crate::test_runner::TestRng::deterministic("t1");
        let mut c = crate::test_runner::TestRng::deterministic("t2");
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }
}
