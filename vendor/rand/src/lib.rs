//! Offline stand-in for the `rand` crate: a deterministic xorshift64*
//! generator behind the `Rng`/`SeedableRng` trait surface this workspace
//! uses (`gen_range`, `gen_bool`, `seed_from_u64`).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in gen_range");
                let span = (high as i128 - low as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + num_step::Step> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_range(rng, start, num_step::Step::forward(end))
    }
}

mod num_step {
    /// Minimal successor operation for inclusive ranges.
    pub trait Step {
        fn forward(self) -> Self;
    }
    macro_rules! impl_step {
        ($($t:ty),*) => {$(
            impl Step for $t {
                fn forward(self) -> Self {
                    self.checked_add(1).expect("inclusive range at type max")
                }
            }
        )*};
    }
    impl_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// The raw generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xorshift64* seeded through
    /// splitmix64 (so nearby seeds diverge immediately).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 step to spread the seed.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(0..10usize);
            assert_eq!(x, b.gen_range(0..10usize));
            assert!(x < 10);
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(
            (0..8).map(|_| a.gen_range(0..1000u32)).collect::<Vec<_>>(),
            (0..8).map(|_| c.gen_range(0..1000u32)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn inclusive_and_signed_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = r.gen_range(-8i64..8);
            assert!((-8..8).contains(&x));
            let y = r.gen_range(0..=3u16);
            assert!(y <= 3);
        }
    }
}
