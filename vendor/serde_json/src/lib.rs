//! Offline stand-in for `serde_json`: prints and parses the serde shim's
//! [`Content`] tree as JSON. Covers the subset the shim's data model can
//! express — null, bool, (signed/unsigned) integers, strings, arrays,
//! string-keyed objects — which is everything derived impls produce.

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization/parse failure.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as an indented JSON string (two spaces).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into a `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&content)?)
}

// --- printer ------------------------------------------------------------

fn write_content(out: &mut String, content: &Content, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Int(i) => out.push_str(&i.to_string()),
        Content::UInt(u) => out.push_str(&u.to_string()),
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, value, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::new("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(Error::new(
                "floating-point numbers are not supported by this shim",
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::Int)
                .map_err(|e| Error::new(format!("bad integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Content::UInt)
                .map_err(|e| Error::new(format!("bad integer `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let content = Content::Map(vec![
            ("name".to_string(), Content::Str("a \"b\"\n".to_string())),
            (
                "items".to_string(),
                Content::Seq(vec![Content::UInt(1), Content::Int(-2), Content::Null]),
            ),
            ("ok".to_string(), Content::Bool(true)),
            ("empty".to_string(), Content::Seq(vec![])),
        ]);

        struct Raw(Content);
        impl Serialize for Raw {
            fn serialize(&self) -> Content {
                self.0.clone()
            }
        }
        impl Deserialize for Raw {
            fn deserialize(c: &Content) -> Result<Self, serde::Error> {
                Ok(Raw(c.clone()))
            }
        }

        let compact = to_string(&Raw(content.clone())).unwrap();
        let pretty = to_string_pretty(&Raw(content.clone())).unwrap();
        assert_eq!(from_str::<Raw>(&compact).unwrap().0, content);
        assert_eq!(from_str::<Raw>(&pretty).unwrap().0, content);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<u32>("1.5").is_err());
    }
}
