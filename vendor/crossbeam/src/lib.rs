//! Offline stand-in for the `crossbeam` crate: just the `channel` module,
//! built over `std::sync::mpsc` with crossbeam's multi-producer API shape.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPMC-flavoured channels over `std::sync::mpsc`.
    //!
    //! `Sender` is `Clone` as with crossbeam; `Receiver` wraps the std
    //! receiver behind a mutex so it stays `Sync`.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    pub use mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Error from [`Sender::try_send`], carrying the refused value.
    /// Mirrors crossbeam's shape so callers can tell backpressure from a
    /// dead consumer.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    /// The sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: SenderInner<T>,
    }

    #[derive(Debug)]
    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
                SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
            };
            Sender { inner }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send (never blocks for unbounded channels).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(tx) => tx.send(value),
                SenderInner::Bounded(tx) => tx.send(value),
            }
        }

        /// Non-blocking send; fails when the channel is full or closed.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(tx) => {
                    tx.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
                SenderInner::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// The receiving half of a channel (shareable, unlike `mpsc::Receiver`).
    #[derive(Debug, Clone)]
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .try_recv()
        }

        /// Blocking receive with a timeout.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recv_timeout(timeout)
        }

        /// Drains every value currently buffered.
        pub fn try_iter(&self) -> Vec<T> {
            let mut out = Vec::new();
            while let Ok(v) = self.try_recv() {
                out.push(v);
            }
            out
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderInner::Unbounded(tx),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// Creates a bounded channel holding at most `cap` values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderInner::Bounded(tx),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn bounded_try_send_fails_when_full() {
            let (tx, _rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        }

        #[test]
        fn try_send_reports_disconnect() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(9));
        }
    }
}
