//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based zero-copy architecture, this shim uses
//! a concrete value tree ([`Content`]): `Serialize` renders a value *into*
//! the tree and `Deserialize` reads a value *out of* it. The companion
//! `serde_derive` stand-in emits impls against these traits with serde's
//! default externally-tagged data model, and `serde_json` prints/parses
//! the tree, so `#[derive(Serialize, Deserialize)]` + JSON round-trips
//! behave the same as with real serde for the shapes this workspace uses.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialized form of any value: serde's data model made concrete.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// `null` (unit, `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map with string keys, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Views this value as a map, if it is one.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Views this value as a sequence, if it is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Views this value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::Int(_) => "integer",
            Content::UInt(_) => "integer",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Values that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// Renders the value.
    fn serialize(&self) -> Content;
}

/// Values that can be read back out of a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reads a value, failing if the tree has the wrong shape.
    fn deserialize(content: &Content) -> Result<Self, Error>;
}

/// Looks `key` up in a struct map and deserializes it (derive support).
pub fn __field<T: Deserialize>(map: &[(String, Content)], key: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize(v),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

// --- primitive impls ----------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let raw = match content {
                    Content::UInt(u) => *u,
                    Content::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let raw = match content {
                    Content::Int(i) => *i,
                    Content::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

// --- container impls ----------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(value) => value.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&7u32.serialize()), Ok(7));
        assert_eq!(i64::deserialize(&(-3i64).serialize()), Ok(-3));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::deserialize(&v.serialize()), Ok(v));
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&none.serialize()), Ok(None));
        let set: BTreeSet<u16> = [4, 5].into_iter().collect();
        assert_eq!(BTreeSet::<u16>::deserialize(&set.serialize()), Ok(set));
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(bool::deserialize(&Content::Int(1)).is_err());
        assert!(u8::deserialize(&Content::UInt(300)).is_err());
        assert!(Vec::<u8>::deserialize(&Content::Str("x".into())).is_err());
    }
}
