//! Offline stand-in for the `bytes` crate: a `BytesMut` backed by a plain
//! `Vec<u8>`, covering the growable-buffer surface this workspace uses.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Returns the number of bytes held.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the reserved capacity.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Removes all bytes, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends `slice` to the buffer.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Shortens the buffer to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(slice: &[u8]) -> Self {
        BytesMut {
            data: slice.to_vec(),
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_and_clear() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b.to_vec(), b"hello");
        b.clear();
        assert!(b.is_empty());
        assert!(b.capacity() >= 8);
    }
}
