//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`, `read()` and `write()` return guards directly, recovering
//! the inner data if a previous holder panicked. Only the surface this
//! workspace uses is provided.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-tolerant API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-tolerant API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
