//! The tamper-evident audit pipeline, end to end over the wire: checks
//! recorded off the hot path, drained into hash-chained on-disk
//! segments, queried and verified through the v3 wire API — then a
//! byte is flipped on disk and the verifier names the damaged segment.
//!
//! Run with `cargo run --example audit_demo`.

use extsec::server::{Client, ClientConfig, Server, ServerConfig};
use extsec::{
    AccessMode, Acl, AclEntry, AuditPipeline, AuditQuery, Lattice, ModeSet, MonitorBuilder,
    NodeKind, NsPath, Outcome, PipelineConfig, Protection, SecurityClass, Subject,
};
use std::sync::Arc;

fn p(s: &str) -> NsPath {
    s.parse().unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small world: alice may execute `/svc/x/op`, bob may not.
    let lattice = Lattice::build(["low", "high"], ["c0"])?;
    let mut builder = MonitorBuilder::new(lattice);
    let alice = builder.add_principal("alice")?;
    let bob = builder.add_principal("bob")?;
    let monitor = builder.build();
    monitor.bootstrap(|ns| {
        let visible = Protection::new(
            Acl::public(ModeSet::only(AccessMode::List)),
            SecurityClass::bottom(),
        );
        ns.ensure_path(&p("/svc/x"), NodeKind::Domain, &visible)?;
        ns.insert(
            &p("/svc/x"),
            "op",
            NodeKind::Procedure,
            Protection::new(
                Acl::from_entries([AclEntry::allow_principal(alice, AccessMode::Execute)]),
                SecurityClass::bottom(),
            ),
        )?;
        Ok(())
    })?;
    let class = monitor.lattice(|l| l.parse_class("low").unwrap());
    let alice = Subject::new(alice, class.clone());
    let bob = Subject::new(bob, class);

    // 1. Attach: a persistent pipeline over a scratch directory, with
    //    tiny segments so this short run seals several of them.
    let dir = std::env::temp_dir().join(format!("extsec-audit-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    monitor.attach_audit_pipeline(Arc::new(AuditPipeline::open_dir(
        &dir,
        PipelineConfig {
            segment_max_bytes: 512,
            ..PipelineConfig::default()
        },
    )?));
    println!("audit pipeline attached at {}\n", dir.display());

    let server = Server::spawn(Arc::clone(&monitor), "127.0.0.1:0", ServerConfig::default())?;
    let mut client = Client::connect(server.local_addr(), ClientConfig::default())?;

    // 2. Record: every check through the server lands in the ring and
    //    is drained to disk in the background — the check path never
    //    blocks on I/O.
    let op = p("/svc/x/op");
    for _ in 0..30 {
        assert!(client.check(&alice, &op, AccessMode::Execute)?.allowed());
        assert!(!client.check(&bob, &op, AccessMode::Execute)?.allowed());
    }
    println!("recorded 60 checks (30 allowed, 30 denied)");

    // 3. Query: filters are conjunctive; pagination via `next_seq`.
    let everything = client.audit_query(&AuditQuery::default())?;
    println!(
        "unfiltered query: {} events, {} declared gaps",
        everything.records.len(),
        everything.gaps.len()
    );
    let denials = client.audit_query(&AuditQuery {
        outcome: Some(Outcome::DacNoEntry),
        ..AuditQuery::default()
    })?;
    println!("denials only: {} events", denials.records.len());
    let first = &denials.records[0];
    println!(
        "  first: seq {} principal {} path {} -> {}",
        first.seq, first.principal, first.path, first.outcome
    );

    // 4. Verify: re-derive the SHA-256 chain across every segment and
    //    splice the anchors.
    let report = client.audit_verify()?;
    println!(
        "\nverify: ok={} across {} segments, chain head {}...",
        report.ok,
        report.segments.len(),
        &report.chain_head[..16]
    );
    assert!(report.ok);

    // 5. Tamper: flip one byte in the middle of a persisted segment,
    //    behind the pipeline's back.
    let victim = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-"))
        })
        .expect("a segment on disk");
    let mut bytes = std::fs::read(&victim)?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim, &bytes)?;
    println!(
        "\nflipped one bit at byte {mid} of {}",
        victim.file_name().unwrap().to_string_lossy()
    );

    let report = client.audit_verify()?;
    assert!(!report.ok, "a flipped bit must not verify");
    for segment in report.segments.iter().filter(|s| !s.status.is_ok()) {
        println!(
            "verify now reports: {} (seqs {}..={}) -> {:?}",
            segment.name, segment.first_seq, segment.last_seq, segment.status
        );
    }

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.accepted, stats.closed, "no connection slot leaked");
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
