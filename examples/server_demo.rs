//! The paper's applet scenario, served over TCP: spawn the name-server
//! front end on an ephemeral port, drive the §2.2 access matrix through
//! the wire client, and print the server's telemetry on shutdown.
//!
//! Run with `cargo run --example server_demo`.

use extsec::scenarios::{applet_scenario, APPLET_FILES};
use extsec::server::{Client, ClientConfig, Server, ServerConfig};
use extsec::services::fs::FsService;
use extsec::AccessMode;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = applet_scenario()?;
    let monitor = Arc::clone(&sc.system.monitor);
    monitor.telemetry().set_enabled(true);

    let server = Server::spawn(monitor, "127.0.0.1:0", ServerConfig::default())?;
    println!("serving the reference monitor on {}\n", server.local_addr());

    let mut client = Client::connect(server.local_addr(), ClientConfig::default())?;
    client.ping()?;

    // The §2.2 access matrix, but every cell is a wire round trip — and
    // each row is ONE batched frame answered from one policy snapshot.
    let modes = [
        (AccessMode::Read, 'r'),
        (AccessMode::Write, 'w'),
        (AccessMode::WriteAppend, 'a'),
    ];
    println!("access matrix over the wire (r = read, w = overwrite, a = append):\n");
    print!("{:<12}", "");
    for (path, _) in APPLET_FILES {
        print!("{path:<20}");
    }
    println!();
    for (name, subject) in sc.subjects() {
        let mut items = Vec::new();
        for (path, _) in APPLET_FILES {
            let node = FsService::node_path(path)?;
            for (mode, _) in modes {
                items.push((node.clone(), mode));
            }
        }
        let decisions = client.batch_check(subject, &items)?;
        print!("{name:<12}");
        for (file_idx, _) in APPLET_FILES.iter().enumerate() {
            let mut cell = String::new();
            for (mode_idx, (_, sym)) in modes.iter().enumerate() {
                let allowed = decisions[file_idx * modes.len() + mode_idx].allowed();
                cell.push(if allowed { *sym } else { '-' });
            }
            print!("{cell:<20}");
        }
        println!();
    }

    // One denial, explained end to end through the wire.
    let node = FsService::node_path("dept-2/report")?;
    let explanation = client.explain(&sc.applet_d1, &node, AccessMode::Read)?;
    println!("\nwhy is department-1 denied department-2's report?\n{explanation}");

    // Pull the combined telemetry document (this also feeds any sinks
    // registered on the monitor's pull path).
    let document = client.telemetry()?;
    println!("telemetry document: {} bytes of JSON", document.len());

    drop(client);
    let stats = server.shutdown();
    println!("\nserver telemetry at shutdown:\n{stats}");
    assert_eq!(stats.accepted, stats.closed, "no connection slot leaked");
    Ok(())
}
