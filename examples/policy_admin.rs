//! Policy administration: the operator's view of the model — inspect the
//! name space with globs, edit ACLs in the text format, ask the monitor
//! to *explain* its decisions, and snapshot/restore the whole policy.
//!
//! Run with `cargo run --example policy_admin`.

use extsec::acl::{format_acl, parse_acl};
use extsec::namespace::Glob;
use extsec::refmon::ReferenceMonitor;
use extsec::scenarios::paper_lattice;
use extsec::{AccessMode, NodeKind, NsPath, Protection, SecurityClass, SystemBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = SystemBuilder::new(paper_lattice());
    builder.principal("alice")?;
    builder.principal("bob")?;
    let ops = builder.group("operators")?;
    let alice_id = builder.principal("carol")?; // a third user for the demo
    builder.member(ops, alice_id)?;
    let system = builder.build()?;

    // --- 1. Survey the installed services with glob queries. ----------
    println!("procedures under /svc/**:");
    let pattern: Glob = "/svc/*/*".parse()?;
    let procedures = system.monitor.inspect(|ns| ns.find(&pattern));
    for (_, path) in procedures.iter().take(8) {
        println!("  {path}");
    }
    println!("  ... {} total\n", procedures.len());

    // --- 2. Create an object and edit its ACL in the text format. -----
    let secret: NsPath = "/obj/fs/payroll".parse()?;
    system.monitor.bootstrap(|ns| {
        let parent = ns.resolve(&"/obj/fs".parse().unwrap())?;
        ns.insert_at(parent, "payroll", NodeKind::Object, Protection::default())?;
        Ok(())
    })?;
    let acl = system
        .monitor
        .directory(|d| parse_acl(d, "+alice:rwa -bob:r +@operators:rA"))?;
    println!("setting ACL on {secret}:");
    println!("  {}", system.monitor.directory(|d| format_acl(d, &acl)));
    system.monitor.bootstrap(|ns| {
        let id = ns.resolve(&secret)?;
        ns.update_protection(id, |prot| prot.acl = acl.clone())?;
        Ok(())
    })?;

    // --- 3. Ask the monitor to explain itself. -------------------------
    let bob = system.subject("bob", "others")?;
    println!("\nwhy is bob denied?");
    print!(
        "{}",
        system.monitor.explain(&bob, &secret, AccessMode::Read)
    );

    let alice = system.subject("alice", "others")?;
    println!("and alice allowed?");
    print!(
        "{}",
        system.monitor.explain(&alice, &secret, AccessMode::Read)
    );

    // --- 4. Snapshot the policy, wreck it, restore it. ----------------
    let snapshot = system.monitor.snapshot();
    let json = serde_json::to_string(&snapshot)?;
    println!(
        "snapshot: {} nodes, {} principals, {} bytes of JSON",
        snapshot.nodes.len(),
        snapshot.directory.principal_count(),
        json.len()
    );

    // Wreck: drop the careful ACL.
    system.monitor.bootstrap(|ns| {
        let id = ns.resolve(&secret)?;
        ns.update_protection(id, |prot| {
            prot.acl = extsec::Acl::public(extsec::ModeSet::parse("rwa").unwrap());
            prot.label = SecurityClass::bottom();
        })?;
        Ok(())
    })?;
    assert!(system
        .monitor
        .check(&bob, &secret, AccessMode::Read)
        .allowed());
    println!("\npolicy wrecked: bob can read the payroll now");

    // Restore from the snapshot into a fresh monitor and verify the
    // original decision is back.
    let restored = ReferenceMonitor::from_snapshot(serde_json::from_str(&json)?)?;
    let decision = restored.check(&bob, &secret, AccessMode::Read);
    println!("after restore: bob read {secret} -> {decision}");
    assert!(!decision.allowed());

    // --- 5. The audit trail of this session. --------------------------
    println!(
        "\naudit: {} events recorded this session ({} denials)",
        system.monitor.audit().len(),
        system.monitor.audit().denials().len()
    );
    Ok(())
}
