//! A campus-scale simulation: many applets at mixed trust levels and
//! compartments randomly reading, appending and overwriting a shared
//! file population — with one applet running under the optional
//! high-water-mark mode. Prints an activity report derived from the
//! audit log.
//!
//! Run with `cargo run --example campus`.

use extsec::refmon::FloatingSubject;
use extsec::scenarios::paper_lattice;
use extsec::{AccessMode, Acl, ModeSet, NodeKind, NsPath, Protection, Subject, SystemBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = SystemBuilder::new(paper_lattice());
    // Ten applets across the trust spectrum.
    let classes = [
        "local:{myself,department-1,department-2,outside}",
        "organization:{department-1}",
        "organization:{department-1}",
        "organization:{department-2}",
        "organization:{department-1,department-2}",
        "others",
        "others",
        "organization:{department-2}",
        "others:{outside}",
        "organization:{department-1}",
    ];
    for i in 0..classes.len() {
        builder.principal(format!("applet{i}"))?;
    }
    let system = builder.build()?;

    // Forty files labelled across the lattice.
    let file_labels = [
        "others",
        "others:{outside}",
        "organization:{department-1}",
        "organization:{department-2}",
        "organization:{department-1,department-2}",
        "local:{myself,department-1,department-2,outside}",
    ];
    let mut rng = StdRng::seed_from_u64(1997);
    let mut files = Vec::new();
    system.monitor.bootstrap(|ns| {
        let visible = Protection::new(
            Acl::public(ModeSet::only(AccessMode::List)),
            Default::default(),
        );
        ns.ensure_path(
            &"/obj/campus".parse().unwrap(),
            NodeKind::Directory,
            &visible,
        )?;
        Ok(())
    })?;
    for i in 0..40 {
        let label = file_labels[rng.gen_range(0..file_labels.len())];
        let path = format!("campus/file{i}");
        system.fs.bootstrap_file(
            &system.monitor,
            &path,
            "seed",
            Protection::new(
                Acl::public(ModeSet::parse("rwa").unwrap()),
                system.class(label)?,
            ),
            &Protection::new(
                Acl::public(ModeSet::parse("l").unwrap()),
                Default::default(),
            ),
        )?;
        files.push((path, label));
    }

    // Applet 4 (the dual-department auditor) runs under the
    // high-water-mark mode; everyone else at fixed classes.
    let mut subjects: Vec<Subject> = (0..classes.len())
        .map(|i| system.subject(&format!("applet{i}"), classes[i]).unwrap())
        .collect();
    // The auditor starts at the organization level but is *cleared* to
    // the top: it may read anything, and its write range narrows as it
    // does (the high-water-mark).
    let top = system.monitor.lattice(|l| l.top());
    let mut floating = FloatingSubject::with_clearance(
        system
            .subject("applet4", "organization:{department-1}")
            .unwrap(),
        top,
    );

    // 2000 random operations.
    let modes = [AccessMode::Read, AccessMode::Write, AccessMode::WriteAppend];
    let mut per_applet: BTreeMap<usize, (u32, u32)> = BTreeMap::new();
    for _ in 0..2000 {
        let a = rng.gen_range(0..subjects.len());
        let (file, _) = &files[rng.gen_range(0..files.len())];
        let mode = modes[rng.gen_range(0..modes.len())];
        let node: NsPath = extsec::services::fs::FsService::node_path(file)?;
        let allowed = if a == 4 {
            floating.check(&system.monitor, &node, mode).allowed()
        } else {
            system.monitor.check(&subjects[a], &node, mode).allowed()
        };
        let entry = per_applet.entry(a).or_insert((0, 0));
        if allowed {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }
    subjects[4] = floating.subject().clone();

    println!("campus simulation: 10 applets × 2000 random operations on 40 labelled files\n");
    println!(
        "{:<10} {:<48} {:>8} {:>8}",
        "applet", "class", "allowed", "denied"
    );
    for (i, subject) in subjects.iter().enumerate() {
        let (ok, no) = per_applet.get(&i).copied().unwrap_or((0, 0));
        let class = system.monitor.lattice(|l| l.format_class(&subject.class));
        let marker = if i == 4 { " (floating)" } else { "" };
        println!(
            "{:<10} {:<48} {:>8} {:>8}",
            format!("applet{i}{marker}"),
            class,
            ok,
            no
        );
    }

    println!(
        "\nfloating applet raised its mark {} time(s); final class: {}",
        floating.raises(),
        system
            .monitor
            .lattice(|l| l.format_class(&floating.subject().class))
    );

    let audit = system.monitor.audit();
    println!(
        "\naudit ring: {} events retained, {} dropped (ring bound), {} denials",
        audit.len(),
        audit.dropped(),
        audit.denials().len()
    );
    Ok(())
}
