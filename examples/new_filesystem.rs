//! The paper's §1.1 motivating example: an extension provides a new file
//! system. It *calls* the existing mbuf service to store data, and users
//! reach it by the existing VFS interface that the extension *extends*.
//!
//! Run with `cargo run --example new_filesystem`.

use extsec::scenarios::paper_lattice;
use extsec::{AccessMode, AclEntry, ExtensionManifest, Origin, SystemBuilder, Value};

const LOGFS_SRC: &str = r#"
module logfs
import alloc  = "/svc/mbuf/alloc" (int) -> int
import mwrite = "/svc/mbuf/write" (int, str)
import mread  = "/svc/mbuf/read" (int) -> str

func handle(op: str, path: str, data: str) -> str
  locals h: int
  load_local op
  push_str "write"
  eq
  jump_if_not do_read
  load_local data
  str_len
  syscall alloc
  store_local h
  load_local h
  load_local data
  syscall mwrite
  load_local h
  int_to_str
  ret
label do_read
  load_local path
  str_to_int
  syscall mread
  ret
end
export handle = handle
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = SystemBuilder::new(paper_lattice());
    builder.principal("dev")?;
    builder.principal("user")?;
    let system = builder.build()?;
    let dev = system.subject("dev", "others")?;
    let user = system.subject("user", "others")?;

    // Grant the developer the right to register new VFS types.
    let dev_id = dev.principal;
    system.monitor.bootstrap(|ns| {
        let id = ns.resolve(&"/svc/vfs/types".parse().unwrap())?;
        ns.update_protection(id, |prot| {
            prot.acl
                .push(AclEntry::allow_principal(dev_id, AccessMode::WriteAppend));
        })?;
        Ok(())
    })?;

    // 1. Load the extension (verified, linked, execute-checked imports).
    println!("loading logfs extension...");
    let ext = system.load_extension(
        LOGFS_SRC,
        ExtensionManifest {
            name: "logfs".into(),
            principal: dev.principal,
            origin: Origin::Local,
            static_class: None,
        },
    )?;
    println!("  linked against: /svc/mbuf/{{alloc,write,read}} (execute checks passed)");

    // 2. Register the type and extend the interface.
    system.vfs.register_type(&system.monitor, &dev, "logfs")?;
    system
        .runtime
        .extend(ext, &"/svc/vfs/types/logfs".parse()?, "handle")?;
    println!("  registered as VFS type 'logfs' (extend check passed)");

    // 3. Mount and use it through the unchanged VFS interface.
    system.call(
        &user,
        "/svc/vfs/mount",
        &[Value::Str("logs".into()), Value::Str("logfs".into())],
    )?;
    println!("\nmounted logfs at 'logs/'; writing through /svc/vfs/write:");
    let mut tokens = Vec::new();
    for line in ["boot: ok", "net: up", "disk: clean"] {
        let token = system.call(
            &user,
            "/svc/vfs/write",
            &[Value::Str("logs/system".into()), Value::Str(line.into())],
        )?;
        let Some(Value::Str(token)) = token else {
            unreachable!("logfs returns a token")
        };
        println!("  wrote {line:?} -> record {token}");
        tokens.push(token);
    }

    println!("\nreading back through /svc/vfs/read:");
    for token in &tokens {
        let data = system.call(
            &user,
            "/svc/vfs/read",
            &[Value::Str(format!("logs/{token}"))],
        )?;
        println!("  record {token}: {data:?}");
    }

    println!(
        "\nmbuf pool accounting for the caller: {} bytes",
        system.mbuf.usage(user.principal)
    );
    println!("mounts: {:?}", system.vfs.mounts());
    Ok(())
}
