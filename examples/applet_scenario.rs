//! The paper's §2/§2.2 worked example, printed as the full access
//! matrix — the closest thing the position paper has to a results table.
//!
//! Run with `cargo run --example applet_scenario`.

use extsec::scenarios::{applet_scenario, APPLET_FILES};
use extsec::AccessMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = applet_scenario()?;

    println!("lattice: others < organization < local");
    println!("categories: myself, department-1, department-2, outside\n");
    println!("files:");
    for (path, label) in APPLET_FILES {
        println!("  {path:<18} @ {label}");
    }

    println!("\naccess matrix (r = read, w = overwrite, a = append):\n");
    print!("{:<12}", "");
    for (path, _) in APPLET_FILES {
        print!("{:<20}", path);
    }
    println!();
    for (name, subject) in sc.subjects() {
        print!("{name:<12}");
        for (path, _) in APPLET_FILES {
            let node = extsec::services::fs::FsService::node_path(path)?;
            let mut cellstr = String::new();
            for (mode, sym) in [
                (AccessMode::Read, 'r'),
                (AccessMode::Write, 'w'),
                (AccessMode::WriteAppend, 'a'),
            ] {
                cellstr.push(if sc.system.monitor.check(subject, &node, mode).allowed() {
                    sym
                } else {
                    '-'
                });
            }
            print!("{cellstr:<20}");
        }
        println!();
    }

    println!("\npaper claims, demonstrated:");

    // "The user's applets ... have access to all files."
    for (path, _) in APPLET_FILES {
        assert!(sc.read(path, &sc.user).is_ok());
    }
    println!("  * the user's applets read every file, including other applets' data");

    // "...can not access each other's files."
    assert!(sc.read("dept-2/report", &sc.applet_d1).is_err());
    assert!(sc.read("dept-1/report", &sc.applet_d2).is_err());
    println!("  * department-1 and department-2 applets are strictly separated");

    // "...a third applet ... can access the data of both."
    assert!(sc.read("dept-1/report", &sc.applet_d12).is_ok());
    assert!(sc.read("dept-2/report", &sc.applet_d12).is_ok());
    println!("  * the dual-labelled applet bridges both compartments (controlled sharing)");

    // "...applets that originate from outside ... no file access."
    assert!(sc.read("user/profile", &sc.outsider).is_err());
    assert!(sc.read("dept-1/report", &sc.outsider).is_err());
    println!("  * the outside applet reaches no local or organization file");

    // Write-append as the blind write-up mode.
    sc.append("user/profile", &sc.applet_d1, " [appended by d1]")?;
    assert!(sc.read("user/profile", &sc.applet_d1).is_err());
    let profile = sc.read("user/profile", &sc.user)?;
    println!(
        "  * d1 appended to the user's profile without ever seeing it: {:?}",
        &profile[profile.len().saturating_sub(30)..]
    );
    Ok(())
}
