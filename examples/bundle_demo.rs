//! The policy-bundle lifecycle, end to end over the wire: stage a
//! versioned diff, shadow it against live traffic and read the flip
//! report, activate it atomically, then roll the whole thing back.
//!
//! Run with `cargo run --example bundle_demo`.

use extsec::server::{Client, ClientConfig, Server, ServerConfig};
use extsec::{
    AccessMode, Acl, AclEntry, Lattice, ModeSet, MonitorBuilder, NodeKind, NsPath, Protection,
    SecurityClass, Subject,
};
use std::sync::Arc;

fn p(s: &str) -> NsPath {
    s.parse().unwrap()
}

/// The staged diff: revoke bob's read on one procedure, grant him write
/// on another — one flip in each direction, visible in the shadow
/// report before anything is enforced.
const BUNDLE: &str = r#"
bundle "q3-access-review" version 1 base current;
set-acl /svc/x/read "+alice:rx";
acl-add /svc/x/write "+bob:w";
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small world: alice administers, bob holds read on `/svc/x/read`
    // and nothing on `/svc/x/write`.
    let lattice = Lattice::build(["low", "high"], ["c0"])?;
    let mut builder = MonitorBuilder::new(lattice);
    let alice = builder.add_principal("alice")?;
    let bob = builder.add_principal("bob")?;
    let monitor = builder.build();
    monitor.bootstrap(|ns| {
        let visible = Protection::new(
            Acl::public(ModeSet::only(AccessMode::List)),
            SecurityClass::bottom(),
        );
        ns.ensure_path(&p("/svc/x"), NodeKind::Domain, &visible)?;
        ns.insert(
            &p("/svc/x"),
            "read",
            NodeKind::Procedure,
            Protection::new(
                Acl::from_entries([
                    AclEntry::allow_principal(alice, AccessMode::Read),
                    AclEntry::allow_principal(bob, AccessMode::Read),
                ]),
                SecurityClass::bottom(),
            ),
        )?;
        ns.insert(
            &p("/svc/x"),
            "write",
            NodeKind::Procedure,
            Protection::new(
                Acl::from_entries([AclEntry::allow_principal(alice, AccessMode::Write)]),
                SecurityClass::bottom(),
            ),
        )?;
        Ok(())
    })?;
    let class = monitor.lattice(|l| l.parse_class("low").unwrap());
    let bob = Subject::new(bob, class);

    let server = Server::spawn(Arc::clone(&monitor), "127.0.0.1:0", ServerConfig::default())?;
    println!("serving the reference monitor on {}\n", server.local_addr());
    let mut admin = Client::connect(server.local_addr(), ClientConfig::default())?;

    let items = [
        (p("/svc/x/read"), AccessMode::Read),
        (p("/svc/x/write"), AccessMode::Write),
    ];
    let surface = |client: &mut Client| -> Result<Vec<bool>, Box<dyn std::error::Error>> {
        Ok(client
            .batch_check(&bob, &items)?
            .iter()
            .map(|d| d.allowed())
            .collect())
    };

    // 1. Stage: compile the diff against the live snapshot.
    let before = surface(&mut admin)?;
    let (id, base) = admin.load_bundle(BUNDLE)?;
    println!("staged bundle {id} against base generation {base}");
    assert_eq!(surface(&mut admin)?, before, "staging changes nothing");

    // 2. Shadow: dual-evaluate real traffic, count would-be flips,
    //    enforce nothing.
    admin.shadow(id, true)?;
    for _ in 0..5 {
        assert_eq!(surface(&mut admin)?, before, "shadow enforces nothing");
    }
    let status = admin.bundle_status()?;
    let report = status.shadow.expect("shadow mode is on");
    println!(
        "shadow report: {} checks dual-evaluated, {} allow->deny, {} deny->allow",
        report.checks, report.allow_to_deny, report.deny_to_allow
    );
    for flip in &report.flips {
        println!(
            "  principal {:?} on {}: {} allow->deny, {} deny->allow",
            flip.principal, flip.path, flip.allow_to_deny, flip.deny_to_allow
        );
    }
    admin.shadow(id, false)?;

    // 3. Activate: one atomic snapshot publish.
    let generation = admin.activate(id)?;
    let after = surface(&mut admin)?;
    println!("\nactivated as generation {generation}");
    println!("bob on (read, write): {before:?} -> {after:?}");
    assert_ne!(before, after);

    // 4. Roll back: the prior decision surface, byte for byte.
    let restored = admin.rollback()?;
    println!("rolled back to generation {restored}");
    assert_eq!(surface(&mut admin)?, before, "rollback restores exactly");

    let status = admin.bundle_status()?;
    println!(
        "final status: active generation {}, {} staged, {} snapshots in the rollback ring",
        status.active,
        status.staged.len(),
        status.history
    );

    drop(admin);
    let stats = server.shutdown();
    assert_eq!(stats.accepted, stats.closed, "no connection slot leaked");
    Ok(())
}
