//! Telemetry quickstart: enable pipeline telemetry, drive a small mixed
//! workload, and print the monitor's full observability surface — the
//! per-stage latency histograms, per-mode/service/dispatch counters,
//! decision-cache stats, and audit stats.
//!
//! Run with `cargo run --release --example stats`.

use extsec::{
    AccessMode, AclEntry, ExtensionManifest, LastSnapshotSink, Lattice, ModeSet, NodeKind, Origin,
    Protection, SecurityClass, SystemBuilder, Value,
};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Assemble a system (monitor + runtime + standard services).
    let lattice = Lattice::build(["guest", "staff"], ["payroll"])?;
    let mut builder = SystemBuilder::new(lattice);
    let alice = builder.principal("alice")?;
    builder.principal("mallory")?;
    builder.echo_console();
    let system = builder.build()?;

    // 2. Telemetry is off by default (each instrumentation point is a
    //    single relaxed atomic load). Flip it on for this run, and hang a
    //    pull-based sink off the hub.
    let sink = Arc::new(LastSnapshotSink::default());
    system.monitor.telemetry().set_enabled(true);
    system.monitor.telemetry().add_sink(sink.clone());

    // 3. A protected procedure only alice@staff may execute.
    let staff_class = system.class("staff")?;
    system.monitor.bootstrap(|ns| {
        let visible = Protection::new(
            extsec::Acl::public(ModeSet::only(AccessMode::List)),
            SecurityClass::bottom(),
        );
        ns.ensure_path(&"/svc/payroll".parse().unwrap(), NodeKind::Domain, &visible)?;
        let mut protection = Protection::new(Default::default(), staff_class.clone());
        protection
            .acl
            .push(AclEntry::allow_principal(alice, AccessMode::Execute));
        ns.insert(
            &"/svc/payroll".parse().unwrap(),
            "run",
            NodeKind::Procedure,
            protection,
        )?;
        Ok(())
    })?;

    // 4. Drive a mixed workload: grants and denials across several access
    //    modes, batched reads through one pinned view (one view = one
    //    telemetry span), and an extension call that crosses the monitor
    //    into the console service.
    let alice_staff = system.subject("alice", "staff:{payroll}")?;
    let mallory = system.subject("mallory", "guest")?;
    let payroll = "/svc/payroll/run".parse()?;
    for _ in 0..1_000 {
        system
            .monitor
            .check(&alice_staff, &payroll, AccessMode::Execute);
        system.monitor.check(&mallory, &payroll, AccessMode::Read);
    }
    {
        let view = system.monitor.view();
        for _ in 0..100 {
            view.check(&alice_staff, &payroll, AccessMode::Execute);
            let _ = view.list(&alice_staff, &"/svc".parse()?);
        }
    }
    let ext = system.load_extension(
        r#"
module greeter
import print = "/svc/console/print" (str)
func main()
  push_str "hello from the sandbox"
  syscall print
  ret
end
export main = main
"#,
        ExtensionManifest {
            name: "greeter".into(),
            principal: alice,
            origin: Origin::Local,
            static_class: None,
        },
    )?;
    system.runtime.run(ext, "main", &[], &alice_staff)?;
    let _ = Value::Int(0);

    // 5. A misbehaving extension: every run traps, the health ledger
    //    counts the faults, and the circuit breaker quarantines it —
    //    visible below in the fault/quarantine counters and the report.
    let flaky = system.load_extension(
        r#"
module flaky
func main() -> int
  trap
end
export main = main
"#,
        ExtensionManifest {
            name: "flaky".into(),
            principal: alice,
            origin: Origin::Local,
            static_class: None,
        },
    )?;
    let budget = system.runtime.health().config().fault_budget;
    for _ in 0..=budget {
        let _ = system.runtime.run(flaky, "main", &[], &alice_staff);
    }
    println!("{}", system.runtime.explain_health(flaky));

    // 6. Print the whole observability surface. `publish()` also pushes
    //    the same snapshot to every registered sink.
    system.monitor.telemetry().publish();
    println!("{}", system.monitor.telemetry_snapshot());

    let cache = system.monitor.cache_stats();
    println!(
        "decision cache: {} hits / {} misses, {} entries, generation {} ({} invalidations)",
        cache.hits, cache.misses, cache.entries, cache.generation, cache.invalidations
    );
    let audit = system.monitor.audit_stats();
    println!(
        "audit log: {} retained of {} capacity, {} dropped",
        audit.retained, audit.capacity, audit.ring_dropped
    );
    println!(
        "sink saw the same snapshot: {}",
        sink.last().map(|s| s.checks()).unwrap_or(0)
            == system.monitor.telemetry_snapshot().checks()
    );
    Ok(())
}
