//! Quickstart: build an extensible system, protect a service with
//! execute/extend ACLs and MAC labels, and load a sandboxed extension.
//!
//! Run with `cargo run --example quickstart`.

use extsec::{
    AccessMode, AclEntry, ExtensionManifest, Lattice, ModeSet, NodeKind, Origin, Protection,
    SecurityClass, SystemBuilder, Value,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Define the security lattice: two levels of trust, one category.
    let lattice = Lattice::build(["guest", "staff"], ["payroll"])?;

    // 2. Assemble the system: reference monitor + runtime + standard
    //    services (fs, mbuf, threads, console, clock, vfs).
    let mut builder = SystemBuilder::new(lattice);
    let alice = builder.principal("alice")?;
    builder.principal("mallory")?;
    builder.echo_console();
    let system = builder.build()?;
    println!("system assembled: {:?}", system.runtime);

    // 3. Install a protected procedure: only alice may execute it, and
    //    its label keeps guests out regardless of ACLs.
    let staff_class = system.class("staff")?;
    system.monitor.bootstrap(|ns| {
        let visible = Protection::new(
            extsec::Acl::public(ModeSet::only(AccessMode::List)),
            SecurityClass::bottom(),
        );
        ns.ensure_path(&"/svc/payroll".parse().unwrap(), NodeKind::Domain, &visible)?;
        let mut protection = Protection::new(Default::default(), staff_class.clone());
        protection
            .acl
            .push(AclEntry::allow_principal(alice, AccessMode::Execute));
        // `run` is just the console behind a harder gate for the demo.
        ns.insert(
            &"/svc/payroll".parse().unwrap(),
            "run",
            NodeKind::Procedure,
            protection,
        )?;
        Ok(())
    })?;

    // 4. Decisions: same principal, different classes.
    let alice_staff = system.subject("alice", "staff:{payroll}")?;
    let alice_guest = system.subject("alice", "guest")?;
    let mallory = system.subject("mallory", "staff:{payroll}")?;
    let payroll = "/svc/payroll/run".parse()?;
    for (who, subject) in [
        ("alice@staff", &alice_staff),
        ("alice@guest", &alice_guest),
        ("mallory@staff", &mallory),
    ] {
        let decision = system.monitor.check(subject, &payroll, AccessMode::Execute);
        println!("execute /svc/payroll/run as {who}: {decision}");
    }

    // 5. Load an extension that uses the console through a syscall gate.
    let ext = system.load_extension(
        r#"
module greeter
import print = "/svc/console/print" (str)
func main(n: int)
  locals i: int
label loop
  load_local i
  load_local n
  lt
  jump_if_not done
  push_str "hello from the sandbox"
  syscall print
  load_local i
  push_int 1
  add
  store_local i
  jump loop
label done
  ret
end
export main = main
"#,
        ExtensionManifest {
            name: "greeter".into(),
            principal: alice,
            origin: Origin::Local,
            static_class: None,
        },
    )?;
    system
        .runtime
        .run(ext, "main", &[Value::Int(3)], &alice_staff)?;

    // 6. The audit log recorded everything.
    println!("\naudit trail:");
    for event in system.monitor.audit().snapshot() {
        println!("  {event}");
    }
    Ok(())
}
