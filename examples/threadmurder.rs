//! The ThreadMurder attack (§1.2), replayed against the Java 1.x sandbox
//! model and against the extsec model.
//!
//! Run with `cargo run --example threadmurder`.

use extsec::scenarios::threadmurder_scenario;
use extsec::{AccessMode, JavaSandboxPolicy, PolicyEngine, TrustTier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = threadmurder_scenario()?;
    println!("two remote applets, each with one registered thread:");
    println!("  victim-applet  owns /obj/threads/victim-worker");
    println!("  murder-applet  owns /obj/threads/murder-worker\n");

    // --- Under the Java sandbox model (decision replay). -------------
    let java = JavaSandboxPolicy::classic();
    java.set_tier(sc.user.principal, TrustTier::Trusted);
    let murder_path = "/obj/threads/victim-worker".parse()?;
    let verdict = java.decide(&sc.murderer, &murder_path, AccessMode::Delete);
    println!("java sandbox: murder-applet deletes victim's thread -> {verdict}");
    assert!(verdict.allowed(), "the published hole");
    println!("  (the sandbox isolates applets from the SYSTEM, not from EACH OTHER)\n");

    // --- Under extsec (actually executed). ---------------------------
    println!("extsec: murder-applet enumerates threads:");
    let visible = sc.system.applets.list(&sc.system.monitor, &sc.murderer)?;
    println!("  visible to murderer: {visible:?} (category separation hides the victim)");

    print!("extsec: murder-applet kills victim-worker -> ");
    match sc
        .system
        .applets
        .kill(&sc.system.monitor, &sc.murderer, "victim-worker")
    {
        Ok(()) => println!("KILLED (should not happen!)"),
        Err(e) => println!("denied ({e})"),
    }
    assert_eq!(sc.system.applets.alive("victim-worker"), Some(true));
    println!("  victim-worker is still alive\n");

    // The owner retains full control over its own thread.
    sc.system
        .applets
        .kill(&sc.system.monitor, &sc.victim, "victim-worker")?;
    println!("extsec: victim-applet kills its own thread -> ok (owner right)");

    // The audit log shows the denied murder attempt.
    let denials = sc.system.monitor.audit().denials();
    println!("\naudit: {} denied accesses recorded, e.g.:", denials.len());
    if let Some(event) = denials.last() {
        println!("  {event}");
    }
    Ok(())
}
