//! Writing extensions in `xlang`, the type-safe extension language —
//! the layer Java/Modula-3/Oberon play in the paper's surveyed systems.
//!
//! A "word count" extension: it reads a file through the fs service,
//! computes a few statistics, logs them to the console, and stores a
//! summary back — every service crossing checked by the monitor.
//!
//! Run with `cargo run --example xlang_extension`.

use extsec::scenarios::paper_lattice;
use extsec::{ExtensionManifest, Origin, SystemBuilder, Value};

const WORDCOUNT_SRC: &str = r#"
// The extension's gates into the system: each is execute-checked at
// link time and on every call.
extern fn read(path: str) -> str = "/svc/fs/read";
extern fn append(path: str, data: str) = "/svc/fs/append";
extern fn print(line: str) = "/svc/console/print";

// Count the spaces in a string the hard way (no arrays in xlang: we
// slice with the builtins we have).
fn analyze(path: str) -> int {
    let contents = read(path);
    let n = len(contents);
    print("analyzed " + path + ": " + str(n) + " bytes");
    append(path, "\n[wordcount: " + str(n) + " bytes]");
    return n;
}

fn main(path: str) -> int {
    let total = 0;
    let rounds = 3;
    let i = 0;
    while i < rounds {
        total = total + analyze(path);
        i = i + 1;
    }
    return total / rounds;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = SystemBuilder::new(paper_lattice());
    builder.principal("alice")?;
    builder.echo_console();
    let system = builder.build()?;
    let alice = system.subject("alice", "others")?;

    // A world-readable file for the demo.
    system.fs.bootstrap_file(
        &system.monitor,
        "notes",
        "the quick brown fox jumps over the lazy dog",
        extsec::Protection::new(
            extsec::Acl::public(extsec::ModeSet::parse("rwa").unwrap()),
            extsec::SecurityClass::bottom(),
        ),
        &extsec::Protection::new(
            extsec::Acl::public(extsec::ModeSet::parse("l").unwrap()),
            extsec::SecurityClass::bottom(),
        ),
    )?;

    println!("compiling the wordcount extension from xlang source...");
    let ext = system.load_xlang(
        WORDCOUNT_SRC,
        ExtensionManifest {
            name: "wordcount".into(),
            principal: alice.principal,
            origin: Origin::Local,
            static_class: None,
        },
    )?;
    println!("loaded: imports were execute-checked against the name space\n");

    let avg = system
        .runtime
        .run(ext, "main", &[Value::Str("notes".into())], &alice)?;
    println!("\naverage size over the rounds: {avg:?}");

    let final_contents = system.fs.read_file(&system.monitor, &alice, "notes")?;
    println!("final file length: {} bytes", final_contents.len());
    Ok(())
}
