//! The sharded readiness reactor.
//!
//! The front end is `config.workers` *shards*, each a thread running one
//! event loop over its own level-triggered poller (see the vendored
//! `polling` crate: raw epoll on Linux, poll(2) elsewhere). A shard owns
//! every connection registered with it outright — slab slot, buffers,
//! timer entries — so the hot path takes no locks and shares no state
//! except the monitor (already concurrent by design) and the telemetry
//! counters (sharded atomics).
//!
//! Shard 0 additionally owns the listener. Accepted connections are
//! handed to shards round-robin through a small mutex-guarded inbox plus
//! a poller wakeup; the inbox is only touched at accept time, never per
//! request. Two admission valves guard the door, both answering with a
//! typed `Busy` frame instead of a silent RST:
//!
//! - a global connection cap (`max_connections`) — the hard ceiling on
//!   slots across all shards;
//! - the per-shard inbox bound (`accept_queue`) — backpressure against
//!   an accept burst outrunning registration.
//!
//! Timeouts come from a coarse single-level timer wheel per shard
//! (16 ms ticks, 512 slots ≈ an 8 s horizon; farther deadlines re-insert
//! when their slot comes around). Cancellation is lazy: each connection
//! carries a sequence number bumped whenever its deadline changes, and a
//! fired wheel entry is honored only if its sequence still matches. An
//! idle shard with no armed timers blocks in the poller indefinitely —
//! a quiescent server burns no CPU.
//!
//! Every way a connection can end — clean EOF, protocol refusal, I/O
//! error, timeout, a panic caught mid-dispatch, server shutdown — funnels
//! through [`Shard::close`], the only place a slot is freed and the
//! open/closed accounting balanced. That single funnel is what the
//! fault-storm tests lean on: `accepted == closed` with zero leaks, no
//! matter what the peer or the injected faults do.

use crate::conn::{Conn, Ctx, Turn};
use crate::proto::{self, Response};
use crate::server::ServerConfig;
use crate::telemetry::ServerTelemetry;
use extsec_refmon::ReferenceMonitor;
use polling::{Event, Events, Poller};
use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Poller key reserved for the listener (shard 0 only). The vendored
/// poller reserves `usize::MAX` for its own wakeup channel.
pub(crate) const LISTENER_KEY: usize = usize::MAX - 1;

/// Timer-wheel tick. Deadlines fire up to one tick late — fine for
/// timeouts measured in hundreds of milliseconds.
const WHEEL_TICK: Duration = Duration::from_millis(16);

/// Timer-wheel slots; with 16 ms ticks the horizon is ≈ 8 s. Deadlines
/// past the horizon re-insert when their slot is reached.
const WHEEL_SLOTS: usize = 512;

/// State shared by every shard and the [`crate::server::Server`] handle.
pub(crate) struct Shared {
    pub(crate) monitor: Arc<ReferenceMonitor>,
    pub(crate) telemetry: Arc<ServerTelemetry>,
    pub(crate) config: Arc<ServerConfig>,
    pub(crate) shutdown: AtomicBool,
    /// Live connection slots across all shards (admission control).
    pub(crate) conns: AtomicUsize,
}

/// The cross-thread face of a shard: its poller (for wakeups and remote
/// registration hints) and the inbox of accepted sockets awaiting
/// registration.
pub(crate) struct ShardHandle {
    pub(crate) poller: Poller,
    inbox: Mutex<VecDeque<TcpStream>>,
}

impl ShardHandle {
    pub(crate) fn new() -> io::Result<ShardHandle> {
        Ok(ShardHandle {
            poller: Poller::new()?,
            inbox: Mutex::new(VecDeque::new()),
        })
    }

    /// Queues a socket for registration, refusing beyond `cap`.
    fn push(&self, stream: TcpStream, cap: usize) -> Result<(), TcpStream> {
        let mut inbox = self.inbox.lock().unwrap();
        if inbox.len() >= cap {
            return Err(stream);
        }
        inbox.push_back(stream);
        Ok(())
    }

    fn pop(&self) -> Option<TcpStream> {
        self.inbox.lock().unwrap().pop_front()
    }
}

/// One event-loop thread: poller, connection slab, timer wheel.
pub(crate) struct Shard {
    index: usize,
    shared: Arc<Shared>,
    handle: Arc<ShardHandle>,
    /// Every shard's handle (accept handoff; only shard 0 uses it).
    peers: Vec<Arc<ShardHandle>>,
    /// The listener, owned by shard 0.
    listener: Option<TcpListener>,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    wheel: TimerWheel,
    /// Round-robin cursor for accept handoff.
    next_shard: usize,
}

impl Shard {
    pub(crate) fn new(
        index: usize,
        shared: Arc<Shared>,
        peers: Vec<Arc<ShardHandle>>,
        listener: Option<TcpListener>,
    ) -> Shard {
        let handle = Arc::clone(&peers[index]);
        Shard {
            index,
            shared,
            handle,
            peers,
            listener,
            slab: Vec::new(),
            free: Vec::new(),
            wheel: TimerWheel::new(Instant::now()),
            next_shard: index,
        }
    }

    /// The event loop. Returns only at shutdown, after every owned
    /// connection has been closed and accounted.
    pub(crate) fn run(mut self) {
        let mut events = Events::new();
        let mut due: Vec<(usize, u64)> = Vec::new();
        loop {
            let timeout = self.wheel.next_timeout();
            match self.handle.poller.wait(&mut events, timeout) {
                Ok(_) => {}
                Err(_) => {
                    // A failed wait would spin; back off a tick instead.
                    std::thread::sleep(WHEEL_TICK);
                }
            }
            self.shared.telemetry.count_poll(events.len() as u64);
            if self.shared.shutdown.load(Ordering::Acquire) {
                self.shutdown_all();
                return;
            }
            let now = Instant::now();
            self.wheel.advance(now, &mut due);
            self.fire_deadlines(&mut due, now);
            self.drain_inbox();
            for event in events.iter() {
                if event.key == LISTENER_KEY {
                    self.accept_ready();
                } else {
                    self.conn_ready(event.key, event.readable, event.writable);
                }
            }
        }
    }

    /// Registers every socket waiting in this shard's inbox.
    fn drain_inbox(&mut self) {
        while let Some(stream) = self.handle.pop() {
            self.register(stream);
        }
    }

    /// Adopts one accepted socket into the slab and the poller.
    fn register(&mut self, stream: TcpStream) {
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slab.push(None);
                self.slab.len() - 1
            }
        };
        let conn = Conn::new(stream);
        if self
            .handle
            .poller
            .add(&conn.stream, Event::readable(idx))
            .is_err()
        {
            // Registration failed (fd pressure): release the reserved
            // slot; the connection was never served, so it is never
            // accounted.
            self.free.push(idx);
            self.shared.conns.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        self.shared.telemetry.conn_opened();
        self.slab[idx] = Some(conn);
        // Sockets usually arrive with data already in flight; serve the
        // first turn immediately rather than waiting for the next poll.
        self.conn_ready(idx, true, false);
    }

    /// One readiness turn for one connection, panic-contained.
    fn conn_ready(&mut self, idx: usize, readable: bool, writable: bool) {
        let shared = Arc::clone(&self.shared);
        let ctx = Ctx {
            monitor: &shared.monitor,
            tele: &shared.telemetry,
            config: &shared.config,
        };
        let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        // A panic in decode or dispatch is contained to this turn: the
        // close funnel below still balances the slot accounting, and the
        // shard moves on to the next event.
        let turn =
            std::panic::catch_unwind(AssertUnwindSafe(|| conn.drive(readable, writable, &ctx)));
        match turn {
            Ok(Turn::Keep) => self.commit_posture(idx),
            Ok(Turn::Close) => self.close(idx),
            Err(_) => {
                self.shared.telemetry.count_worker_panic();
                self.close(idx);
            }
        }
    }

    /// Mirrors a connection's freshly computed posture (interest set and
    /// deadline) into the poller and the timer wheel.
    fn commit_posture(&mut self, idx: usize) {
        let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if conn.want_read != conn.reg_read || conn.want_write != conn.reg_write {
            let mut interest = Event::none(idx);
            interest.readable = conn.want_read;
            interest.writable = conn.want_write;
            if self.handle.poller.modify(&conn.stream, interest).is_ok() {
                conn.reg_read = conn.want_read;
                conn.reg_write = conn.want_write;
            }
        }
        if let Some((at, kind)) = &mut conn.deadline {
            if conn.timer_seq != conn.armed_seq {
                // The state machine stamps a placeholder instant; the
                // shard owns wheel time, so the real horizon is fixed
                // here, at arm time.
                *at = Instant::now() + Conn::deadline_after(*kind, &self.shared.config);
                let deadline = *at;
                conn.armed_seq = conn.timer_seq;
                self.wheel.insert(idx, conn.timer_seq, deadline);
            }
        }
    }

    /// Applies fired wheel entries, skipping lazily cancelled ones.
    fn fire_deadlines(&mut self, due: &mut Vec<(usize, u64)>, now: Instant) {
        for (idx, seq) in due.drain(..) {
            let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            if conn.timer_seq != seq {
                continue;
            }
            let Some((at, kind)) = conn.deadline else {
                continue;
            };
            if at > now {
                continue;
            }
            if kind.is_timeout() {
                self.shared.telemetry.count_timeout();
            }
            self.close(idx);
        }
    }

    /// The single close funnel: deregister, free the slot, balance the
    /// global count and the accepted/closed accounting.
    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.slab.get_mut(idx).and_then(Option::take) {
            let _ = self.handle.poller.delete(&conn.stream);
            self.free.push(idx);
            self.shared.conns.fetch_sub(1, Ordering::AcqRel);
            self.shared.telemetry.conn_closed();
        }
    }

    /// Accepts until the listener runs dry (level-triggered).
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient accept errors (ECONNABORTED and friends):
                // keep the listener alive.
                Err(_) => return,
            }
        }
    }

    /// Admission control plus round-robin handoff for one new socket.
    fn admit(&mut self, stream: TcpStream) {
        let config = &self.shared.config;
        // Reserve a slot first so concurrent closes cannot be raced past
        // the cap; undo the reservation on any refusal path.
        let occupied = self.shared.conns.fetch_add(1, Ordering::AcqRel);
        if occupied >= config.max_connections {
            self.shared.conns.fetch_sub(1, Ordering::AcqRel);
            self.shared.telemetry.count_shed_accept();
            shed(stream, config);
            return;
        }
        let target = self.next_shard % self.peers.len();
        self.next_shard = self.next_shard.wrapping_add(1);
        if target == self.index {
            self.register(stream);
            return;
        }
        match self.peers[target].push(stream, config.accept_queue) {
            Ok(()) => {
                let _ = self.peers[target].poller.notify();
                self.shared.telemetry.count_wakeup();
            }
            Err(stream) => {
                self.shared.conns.fetch_sub(1, Ordering::AcqRel);
                self.shared.telemetry.count_shed_accept();
                shed(stream, config);
            }
        }
    }

    /// Graceful-shutdown sweep: best-effort flush of queued replies,
    /// then every owned connection through the close funnel. Inbox
    /// sockets were never registered (or accounted); they are dropped.
    fn shutdown_all(&mut self) {
        for idx in 0..self.slab.len() {
            if let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) {
                conn.final_flush();
                self.close(idx);
            }
        }
        while let Some(stream) = self.handle.pop() {
            self.shared.conns.fetch_sub(1, Ordering::AcqRel);
            drop(stream);
        }
        self.listener = None;
    }
}

/// Sheds one connection at the door: answer `Busy` (best effort),
/// half-close the write side so the frame survives in flight, and drop
/// the socket. A shed connection never enters the accepted/closed
/// accounting — it was refused, not served.
pub(crate) fn shed(mut stream: TcpStream, config: &ServerConfig) {
    // Accepted sockets are blocking by default; a freshly accepted
    // socket's send buffer is empty, so this cannot stall — the timeout
    // is a belt against pathological peers.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let busy = Response::Busy {
        retry_after_ms: config.shed_retry_after.as_millis() as u64,
    };
    if proto::write_frame(&mut stream, &busy.encode()).is_ok() {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
}

/// Hashed timer wheel, single level. Entries are `(slot index, seq)`
/// pairs; validity is checked against the connection at fire time, so
/// cancellation and refresh are free (bump the seq and forget).
struct TimerWheel {
    slots: Vec<Vec<WheelEntry>>,
    /// The instant the cursor slot began.
    base: Instant,
    cursor: usize,
    /// Entries currently parked in slots (drives `next_timeout`).
    armed: usize,
}

struct WheelEntry {
    idx: usize,
    seq: u64,
    at: Instant,
}

impl TimerWheel {
    fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            base: now,
            cursor: 0,
            armed: 0,
        }
    }

    /// How long the poller may block: forever when nothing is armed
    /// (an idle shard is fully quiescent), else one tick.
    fn next_timeout(&self) -> Option<Duration> {
        if self.armed == 0 {
            None
        } else {
            Some(WHEEL_TICK)
        }
    }

    fn insert(&mut self, idx: usize, seq: u64, at: Instant) {
        let delta = at.saturating_duration_since(self.base);
        let ticks = (delta.as_millis() / WHEEL_TICK.as_millis()) as usize + 1;
        // Beyond-horizon deadlines park in the farthest slot and
        // re-insert when it comes around.
        let ticks = ticks.clamp(1, WHEEL_SLOTS - 1);
        let slot = (self.cursor + ticks) % WHEEL_SLOTS;
        self.slots[slot].push(WheelEntry { idx, seq, at });
        self.armed += 1;
    }

    /// Walks the cursor up to `now`, collecting due entries into `due`
    /// and re-parking the beyond-horizon ones.
    fn advance(&mut self, now: Instant, due: &mut Vec<(usize, u64)>) {
        if self.armed == 0 {
            // Nothing parked: re-anchor so the next insert measures its
            // delta from the present, not from before an unbounded wait.
            self.base = now;
            return;
        }
        while now.saturating_duration_since(self.base) >= WHEEL_TICK {
            self.base += WHEEL_TICK;
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            let entries = std::mem::take(&mut self.slots[self.cursor]);
            for entry in entries {
                self.armed -= 1;
                if entry.at <= now {
                    due.push((entry.idx, entry.seq));
                } else {
                    self.insert(entry.idx, entry.seq, entry.at);
                }
            }
            if self.armed == 0 {
                self.base = now;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_fires_due_entries_and_reparks_far_ones() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        assert_eq!(wheel.next_timeout(), None);
        // One near deadline (2 ticks out) and one far beyond the horizon.
        wheel.insert(1, 10, start + WHEEL_TICK * 2);
        wheel.insert(2, 20, start + WHEEL_TICK * (WHEEL_SLOTS as u32 * 2));
        assert_eq!(wheel.next_timeout(), Some(WHEEL_TICK));

        let mut due = Vec::new();
        wheel.advance(start + WHEEL_TICK * 3, &mut due);
        assert_eq!(due, vec![(1, 10)]);

        // The far entry survives a full revolution without firing.
        due.clear();
        wheel.advance(start + WHEEL_TICK * (WHEEL_SLOTS as u32 + 10), &mut due);
        assert!(due.is_empty());
        assert_eq!(wheel.next_timeout(), Some(WHEEL_TICK));

        // …and fires once its real instant passes.
        wheel.advance(start + WHEEL_TICK * (WHEEL_SLOTS as u32 * 2 + 2), &mut due);
        assert_eq!(due, vec![(2, 20)]);
        assert_eq!(wheel.next_timeout(), None);
    }

    #[test]
    fn wheel_rebases_when_idle() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        // A long idle stretch with nothing armed must not age the base.
        let later = start + Duration::from_secs(60);
        let mut due = Vec::new();
        wheel.advance(later, &mut due);
        wheel.insert(7, 1, later + WHEEL_TICK * 3);
        wheel.advance(later + WHEEL_TICK, &mut due);
        assert!(due.is_empty(), "re-anchored deadline must not fire early");
        wheel.advance(later + WHEEL_TICK * 4, &mut due);
        assert_eq!(due, vec![(7, 1)]);
    }
}
