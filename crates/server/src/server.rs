//! The multithreaded TCP front end.
//!
//! One listener thread accepts connections and feeds them through a
//! *bounded* crossbeam channel to a fixed pool of worker threads; each
//! worker serves one connection at a time (see [`crate::conn`]). The
//! bounded queue is the backpressure valve: when every worker is busy
//! and the queue is full, new connections are dropped at accept and
//! counted, instead of piling up unbounded — the same "refuse early,
//! account always" posture the decoder takes toward hostile frames.
//!
//! Shutdown is graceful: the shutdown flag is raised, the listener is
//! unblocked with a loopback connection and exits, dropping the channel
//! sender; workers finish the request in flight, notice the flag at the
//! next idle tick, drain the queue, and exit. [`Server::shutdown`] joins
//! them all and hands back the final telemetry snapshot.

use crate::conn;
use crate::proto::{self, Response, MAX_FRAME};
use crate::telemetry::{ServerTelemetry, ServerTelemetrySnapshot};
use crossbeam::channel::{self, Receiver, TrySendError};
use extsec_refmon::ReferenceMonitor;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before new
    /// ones are dropped at accept.
    pub accept_queue: usize,
    /// Per-connection read timeout. Doubles as the idle tick at which a
    /// worker polls the shutdown flag between frames.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Largest accepted frame payload, bytes (at most [`MAX_FRAME`]).
    pub max_frame: u32,
    /// Largest accepted batch, items (at most the protocol's hard cap).
    pub max_batch: usize,
    /// Requests one connection may issue before it is shed with a
    /// `Busy` response (graceful degradation under a monopolizing
    /// client). Effectively unlimited by default.
    pub conn_request_budget: u64,
    /// The backoff hint carried in `Busy` responses.
    pub shed_retry_after: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            accept_queue: 64,
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_secs(1),
            max_frame: MAX_FRAME,
            max_batch: 1024,
            conn_request_budget: u64::MAX,
            shed_retry_after: Duration::from_millis(100),
        }
    }
}

/// A running server: a listener, a worker pool, and their shared state.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    telemetry: Arc<ServerTelemetry>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and spawns the
    /// listener and `config.workers` worker threads.
    pub fn spawn(
        monitor: Arc<ReferenceMonitor>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let config = Arc::new(ServerConfig {
            max_frame: config.max_frame.min(MAX_FRAME),
            workers: config.workers.max(1),
            ..config
        });
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let telemetry = Arc::new(ServerTelemetry::new());
        let (tx, rx) = channel::bounded::<TcpStream>(config.accept_queue);
        // The vendored Receiver is only Clone for cloneable payloads;
        // share it through an Arc instead (it is Sync).
        let rx: Arc<Receiver<TcpStream>> = Arc::new(rx);

        let mut workers = Vec::with_capacity(config.workers);
        for index in 0..config.workers {
            let rx = Arc::clone(&rx);
            let monitor = Arc::clone(&monitor);
            let telemetry = Arc::clone(&telemetry);
            let config = Arc::clone(&config);
            let shutdown = Arc::clone(&shutdown);
            workers.push(
                thread::Builder::new()
                    .name(format!("extsec-server-worker-{index}"))
                    .spawn(move || {
                        // recv() fails only once the listener has exited
                        // and the queue is drained — the drain half of
                        // graceful shutdown. A panic while serving one
                        // connection (contained here) must not take the
                        // worker down with it: the slot accounting runs
                        // in `serve`'s drop guard during the unwind, and
                        // the worker moves on to the next connection.
                        while let Ok(stream) = rx.recv() {
                            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                conn::serve(stream, &monitor, &telemetry, &config, &shutdown);
                            }));
                            if caught.is_err() {
                                telemetry.count_worker_panic();
                            }
                        }
                    })?,
            );
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_tele = Arc::clone(&telemetry);
        let accept_config = Arc::clone(&config);
        let listener_handle = thread::Builder::new()
            .name("extsec-server-listener".into())
            .spawn(move || {
                // `tx` lives in this closure: when the loop breaks, the
                // sender drops and the workers' recv() starts failing.
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let stream = match stream {
                        Ok(stream) => stream,
                        Err(_) => continue,
                    };
                    let _ = stream.set_read_timeout(Some(accept_config.read_timeout));
                    let _ = stream.set_write_timeout(Some(accept_config.write_timeout));
                    let _ = stream.set_nodelay(true);
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        // The vendored channel folds "full" and
                        // "disconnected" into one error; workers only
                        // disconnect at shutdown, which the flag covers.
                        Err(TrySendError(stream)) => {
                            // Backpressure: refuse at the door rather
                            // than queue without bound — but refuse
                            // *legibly*, with a typed Busy frame naming
                            // a backoff, instead of a silent RST.
                            accept_tele.count_shed_accept();
                            shed(stream, &accept_config);
                            if accept_shutdown.load(Ordering::Acquire) {
                                break;
                            }
                        }
                    }
                }
            })?;

        Ok(Server {
            addr: local,
            shutdown,
            listener: Some(listener_handle),
            workers,
            telemetry,
        })
    }

    /// The bound address (with the real port when spawned on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's live telemetry.
    pub fn telemetry(&self) -> &ServerTelemetry {
        &self.telemetry
    }

    /// Stops accepting, drains, joins every thread, and returns the
    /// final telemetry snapshot.
    pub fn shutdown(mut self) -> ServerTelemetrySnapshot {
        self.stop();
        self.telemetry.snapshot()
    }

    fn stop(&mut self) {
        if self.listener.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Release);
        // Unblock accept(): the listener checks the flag on the next
        // connection, and this one is it.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.listener.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Sheds one connection at accept: answer `Busy` (best effort), half-close
/// the write side so the frame survives in flight, and drop the socket.
/// The shed connection never enters the accepted/closed accounting — it
/// was refused, not served.
fn shed(mut stream: TcpStream, config: &ServerConfig) {
    let busy = Response::Busy {
        retry_after_ms: config.shed_retry_after.as_millis() as u64,
    };
    if proto::write_frame(&mut stream, &busy.encode()).is_ok() {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
}
