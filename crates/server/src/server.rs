//! The sharded, event-driven TCP front end.
//!
//! `config.workers` shard threads each run a readiness event loop (see
//! [`crate::reactor`]) multiplexing many non-blocking connections —
//! thousands of mostly-idle peers cost a fixed number of threads, not a
//! thread apiece or a queue slot apiece. Shard 0 owns the listener and
//! hands accepted sockets to the other shards round-robin.
//!
//! Admission control happens at the door, with a typed `Busy` frame
//! rather than a silent RST: a global `max_connections` cap on live
//! slots, plus the bounded per-shard handoff queue (`accept_queue`) —
//! the same "refuse early, account always" posture the decoder takes
//! toward hostile frames.
//!
//! Shutdown is graceful: the flag is raised, every shard is woken
//! through its poller, each shard flushes what it can, closes and
//! accounts every owned connection, and exits. [`Server::shutdown`]
//! joins them all and hands back the final telemetry snapshot.

use crate::proto::MAX_FRAME;
use crate::reactor::{Shard, ShardHandle, Shared, LISTENER_KEY};
use crate::telemetry::{ServerTelemetry, ServerTelemetrySnapshot};
use extsec_refmon::ReferenceMonitor;
use polling::Event;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Shard (event-loop) threads; each multiplexes many connections.
    pub workers: usize,
    /// Accepted connections that may sit in one shard's handoff queue
    /// awaiting registration before new ones are shed at accept.
    pub accept_queue: usize,
    /// How long a peer may stall mid-frame before the connection is
    /// timed out (idle connections *between* frames are not timed out).
    pub read_timeout: Duration,
    /// How long a pending reply may sit unread before the connection is
    /// timed out.
    pub write_timeout: Duration,
    /// Largest accepted frame payload, bytes (at most [`MAX_FRAME`]).
    pub max_frame: u32,
    /// Largest accepted batch, items (at most the protocol's hard cap).
    pub max_batch: usize,
    /// Requests one connection may issue before it is shed with a
    /// `Busy` response (graceful degradation under a monopolizing
    /// client). Effectively unlimited by default.
    pub conn_request_budget: u64,
    /// The backoff hint carried in `Busy` responses.
    pub shed_retry_after: Duration,
    /// Live connections the server will hold across all shards before
    /// shedding new ones at accept with a `Busy` frame.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            accept_queue: 64,
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_secs(1),
            max_frame: MAX_FRAME,
            max_batch: 1024,
            conn_request_budget: u64::MAX,
            shed_retry_after: Duration::from_millis(100),
            max_connections: 8192,
        }
    }
}

/// A running server: shard threads and their shared state.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    handles: Vec<Arc<ShardHandle>>,
    shards: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and spawns
    /// `config.workers` shard event loops; shard 0 owns the listener.
    pub fn spawn(
        monitor: Arc<ReferenceMonitor>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let config = Arc::new(ServerConfig {
            max_frame: config.max_frame.min(MAX_FRAME),
            workers: config.workers.max(1),
            max_connections: config.max_connections.max(1),
            ..config
        });
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let telemetry = Arc::new(ServerTelemetry::new());
        let shared = Arc::new(Shared {
            monitor,
            telemetry: Arc::clone(&telemetry),
            config: Arc::clone(&config),
            shutdown: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
        });

        let mut handles = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            handles.push(Arc::new(ShardHandle::new()?));
        }
        handles[0]
            .poller
            .add(&listener, Event::readable(LISTENER_KEY))?;

        let mut shards = Vec::with_capacity(config.workers);
        for index in 0..config.workers {
            let shard = Shard::new(
                index,
                Arc::clone(&shared),
                handles.clone(),
                if index == 0 {
                    Some(listener.try_clone()?)
                } else {
                    None
                },
            );
            shards.push(
                thread::Builder::new()
                    .name(format!("extsec-server-shard-{index}"))
                    .spawn(move || shard.run())?,
            );
        }
        drop(listener);

        Ok(Server {
            addr: local,
            shared,
            handles,
            shards,
        })
    }

    /// The bound address (with the real port when spawned on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's live telemetry.
    pub fn telemetry(&self) -> &ServerTelemetry {
        &self.shared.telemetry
    }

    /// Stops accepting, closes every connection, joins every shard, and
    /// returns the final telemetry snapshot.
    pub fn shutdown(mut self) -> ServerTelemetrySnapshot {
        self.stop();
        self.shared.telemetry.snapshot()
    }

    fn stop(&mut self) {
        if self.shards.is_empty() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake every shard out of its poller wait; each notices the flag
        // and runs its shutdown sweep.
        for handle in &self.handles {
            let _ = handle.poller.notify();
        }
        for handle in self.shards.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}
