//! The client: connection reuse, streaming pipelining, and retry.
//!
//! A [`Client`] owns at most one TCP connection and reuses it across
//! calls. [`Client::pipeline`] *streams*: the connection is non-blocking
//! and the client interleaves writing requests with reading whatever
//! responses have already arrived, instead of writing the whole pipeline
//! and only then reading. The server answers each frame with exactly one
//! response frame, in order, so a pipeline of `n` requests still costs
//! one round trip — but responses are consumed as they land, so a large
//! pipeline never deadlocks on mutual backpressure (both sides' socket
//! buffers full, each waiting for the other to drain), and a `Busy` shed
//! is observed as soon as the server sends it, not after the whole
//! request burst is flushed.
//!
//! On a *transient* transport error (reset, broken pipe, timeout, a
//! server that closed an idle connection) the client drops the dead
//! connection, reconnects, and retries the whole pipeline. That is safe
//! for the read set — checks, listings, explanations, telemetry pulls
//! mutate nothing, so a replay only re-observes — and it stays safe for
//! the bundle admin set because those operations are guarded: replaying
//! an [`activate`](Client::activate) whose response was lost fails
//! closed with [`ErrorCode::GenerationConflict`] (the first application
//! moved the active generation past the bundle's base, and the consumed
//! handle is unknown), never double-applies; re-staging the same source
//! just stages a second identical bundle under a fresh handle; a
//! replayed [`rollback`](Client::rollback) *does* pop one more ring
//! entry, so treat a rollback timeout as unknown-outcome and check
//! [`bundle_status`](Client::bundle_status) before retrying by hand.
//! Server-sent `Error` responses are *answers*, not failures: they are
//! returned (or surfaced as [`ClientError::Server`]) and never retried.
//! Every retry, reconnect, and backoff sleep is counted in
//! [`ClientStats`].

use crate::proto::{
    self, BatchItem, ErrorCode, FrameScan, ProtoError, Request, Response, MAX_FRAME,
};
use extsec_acl::AccessMode;
use extsec_namespace::NsPath;
use extsec_refmon::{
    AuditQuery, BundleId, BundleStatusReport, Decision, Explanation, Generation, QueryResult,
    Subject, VerifyReport,
};
use polling::{Event, Events, Poller};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Tuning knobs for a [`Client`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-response read timeout.
    pub read_timeout: Duration,
    /// Write timeout for the request side of a pipeline.
    pub write_timeout: Duration,
    /// How many times a pipeline is retried on a fresh connection after
    /// a transient transport error or a `Busy` shed (0 disables retry).
    pub retries: u32,
    /// Largest accepted response frame payload, bytes.
    pub max_frame: u32,
    /// First retry's backoff; each further retry doubles it (jittered).
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff between retries.
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            retries: 2,
            max_frame: MAX_FRAME,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(250),
        }
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed and retries (if any) were exhausted.
    Io(io::Error),
    /// The server sent bytes that violate the protocol.
    Proto(ProtoError),
    /// The server shed the connection (or request) with a `Busy`
    /// response and retries were exhausted.
    Busy {
        /// The server's suggested minimum backoff, in milliseconds.
        retry_after_ms: u64,
    },
    /// The server answered with an `Error` response.
    Server {
        /// The error class.
        code: ErrorCode,
        /// The server's description.
        message: String,
    },
    /// The server answered with a well-formed response of the wrong
    /// kind for the request (a server bug or a confused proxy).
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy (retry after {retry_after_ms}ms)")
            }
            ClientError::Server { code, message } => write!(f, "server [{code}]: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Counters for the client's resilience machinery: how often pipelines
/// were retried, why, and how long was spent backing off. Cheap to copy;
/// read them with [`Client::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Pipelines that completed successfully.
    pub pipelines: u64,
    /// Requests sent across all successful pipelines.
    pub requests: u64,
    /// Responses consumed while the request side of the same pipeline
    /// was still being written — the streaming overlap at work.
    pub responses_streamed_early: u64,
    /// Pipeline attempts retried after a transient transport error.
    pub retries_io: u64,
    /// Pipeline attempts retried after a server `Busy` shed.
    pub retries_busy: u64,
    /// Fresh connections dialed (the first connect counts).
    pub reconnects: u64,
    /// Total time slept in retry backoff, milliseconds.
    pub backoff_ms: u64,
}

/// One live connection: the socket (non-blocking), the poller that
/// waits on it, and the read-side reassembly buffer.
struct Transport {
    stream: TcpStream,
    poller: Poller,
    rbuf: Vec<u8>,
    rpos: usize,
    reg_writable: bool,
}

/// The transport's poller key for its one socket.
const SOCKET_KEY: usize = 0;

impl Transport {
    fn open(addr: SocketAddr) -> io::Result<Transport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(&stream, Event::all(SOCKET_KEY))?;
        Ok(Transport {
            stream,
            poller,
            rbuf: Vec::new(),
            rpos: 0,
            reg_writable: true,
        })
    }

    /// Aligns poller interest with whether output is still pending.
    fn want_writable(&mut self, wanted: bool) -> io::Result<()> {
        if wanted != self.reg_writable {
            let mut interest = Event::readable(SOCKET_KEY);
            interest.writable = wanted;
            self.poller.modify(&self.stream, interest)?;
            self.reg_writable = wanted;
        }
        Ok(())
    }
}

/// A connected (or reconnecting) client for one server address.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Transport>,
    stats: ClientStats,
}

impl Client {
    /// Resolves `addr` and connects eagerly.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let mut client = Client {
            addr,
            config,
            conn: None,
            stats: ClientStats::default(),
        };
        client.reconnect()?;
        Ok(client)
    }

    /// The retry/backoff counters accumulated so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    fn reconnect(&mut self) -> io::Result<()> {
        self.conn = Some(Transport::open(self.addr)?);
        self.stats.reconnects += 1;
        Ok(())
    }

    /// Whether an error is worth a reconnect-and-retry.
    fn transient(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::UnexpectedEof
                | io::ErrorKind::TimedOut
                | io::ErrorKind::WouldBlock
        )
    }

    /// Streams a pipeline: requests are written and responses consumed
    /// concurrently, in order, until one response per request is in
    /// hand. Retries the whole pipeline on a fresh connection after a
    /// transient transport error or a server `Busy` shed (safe: all
    /// operations are reads), sleeping a jittered exponential backoff
    /// between attempts so a fleet of shed clients does not return in
    /// lockstep.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        let mut attempt = 0;
        loop {
            let retry_floor = match self.try_pipeline(requests) {
                Ok(responses) => {
                    self.stats.pipelines += 1;
                    self.stats.requests += requests.len() as u64;
                    return Ok(responses);
                }
                Err(ClientError::Io(e))
                    if attempt < self.config.retries && Self::transient(e.kind()) =>
                {
                    self.stats.retries_io += 1;
                    Duration::ZERO
                }
                Err(ClientError::Busy { retry_after_ms }) if attempt < self.config.retries => {
                    self.stats.retries_busy += 1;
                    Duration::from_millis(retry_after_ms)
                }
                Err(other) => return Err(other),
            };
            attempt += 1;
            self.conn = None;
            let delay = backoff_delay(
                self.config.backoff_base,
                self.config.backoff_cap,
                attempt,
                jitter_salt(),
            )
            .max(retry_floor);
            if !delay.is_zero() {
                self.stats.backoff_ms += delay.as_millis() as u64;
                std::thread::sleep(delay);
            }
        }
    }

    fn try_pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let max_frame = self.config.max_frame;
        let Some(conn) = self.conn.as_mut() else {
            // reconnect() above either set the transport or bailed with
            // its own error; this is unreachable, but refuse rather than
            // panic inside a retry loop.
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "reconnect left no connection",
            )));
        };
        // One contiguous request burst; flushed as the socket accepts it.
        let mut out = Vec::new();
        for request in requests {
            out.extend_from_slice(&request.encode());
        }
        let mut opos = 0;
        let mut responses = Vec::with_capacity(requests.len());
        let mut events = Events::new();
        // The timeout is on *progress*, not on the whole pipeline: any
        // byte moved in either direction resets the clock.
        let mut last_progress = Instant::now();
        while responses.len() < requests.len() {
            let mut progressed = false;
            // Push pending requests while the socket takes them.
            while opos < out.len() {
                match conn.stream.write(&out[opos..]) {
                    Ok(0) => {
                        return Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "socket accepted no bytes",
                        )))
                    }
                    Ok(n) => {
                        opos += n;
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(ClientError::Io(e)),
                }
            }
            // Consume whatever responses have already landed.
            loop {
                match proto::scan_frame(&conn.rbuf[conn.rpos..], max_frame)
                    .map_err(ClientError::Proto)?
                {
                    FrameScan::Complete {
                        opcode,
                        payload_start,
                        consumed,
                    } => {
                        let payload = &conn.rbuf[conn.rpos + payload_start..conn.rpos + consumed];
                        let response =
                            Response::decode(opcode, payload).map_err(ClientError::Proto)?;
                        conn.rpos += consumed;
                        if let Response::Busy { retry_after_ms } = response {
                            // The server shed us and will close; surface
                            // it so the retry loop can back off for at
                            // least the server's hint.
                            return Err(ClientError::Busy { retry_after_ms });
                        }
                        if opos < out.len() {
                            self.stats.responses_streamed_early += 1;
                        }
                        responses.push(response);
                        progressed = true;
                        if responses.len() == requests.len() {
                            break;
                        }
                    }
                    FrameScan::Partial => {
                        // Reclaim the consumed prefix, then try the wire.
                        if conn.rpos > 0 {
                            conn.rbuf.copy_within(conn.rpos.., 0);
                            let keep = conn.rbuf.len() - conn.rpos;
                            conn.rbuf.truncate(keep);
                            conn.rpos = 0;
                        }
                        let len = conn.rbuf.len();
                        conn.rbuf.resize(len + 16 * 1024, 0);
                        match conn.stream.read(&mut conn.rbuf[len..]) {
                            Ok(0) => {
                                conn.rbuf.truncate(len);
                                return Err(ClientError::Io(io::Error::new(
                                    io::ErrorKind::UnexpectedEof,
                                    "server closed mid-pipeline",
                                )));
                            }
                            Ok(n) => {
                                conn.rbuf.truncate(len + n);
                                progressed = true;
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                conn.rbuf.truncate(len);
                                break;
                            }
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                                conn.rbuf.truncate(len);
                            }
                            Err(e) => {
                                conn.rbuf.truncate(len);
                                return Err(ClientError::Io(e));
                            }
                        }
                    }
                }
            }
            if responses.len() == requests.len() {
                break;
            }
            if progressed {
                last_progress = Instant::now();
                continue;
            }
            // Both directions blocked: wait for readiness, bounded by
            // the progress timeout.
            let budget = if opos < out.len() {
                self.config.read_timeout.min(self.config.write_timeout)
            } else {
                self.config.read_timeout
            };
            let waited = last_progress.elapsed();
            if waited >= budget {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no response before the read timeout",
                )));
            }
            conn.want_writable(opos < out.len())?;
            conn.poller.wait(&mut events, Some(budget - waited))?;
        }
        Ok(responses)
    }

    fn one(&mut self, request: Request) -> Result<Response, ClientError> {
        let mut responses = self.pipeline(std::slice::from_ref(&request))?;
        Ok(responses.remove(0))
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.one(Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Runs one access check on the server.
    pub fn check(
        &mut self,
        subject: &Subject,
        path: &NsPath,
        mode: AccessMode,
    ) -> Result<Decision, ClientError> {
        let request = Request::Check {
            subject: subject.clone(),
            path: path.clone(),
            mode,
        };
        match self.one(request)? {
            Response::Decision(decision) => Ok(decision),
            other => Err(unexpected("Decision", &other)),
        }
    }

    /// Runs a batch of checks against one server-side snapshot; the
    /// decisions come back in item order and are mutually consistent.
    pub fn batch_check(
        &mut self,
        subject: &Subject,
        items: &[(NsPath, AccessMode)],
    ) -> Result<Vec<Decision>, ClientError> {
        let request = Request::BatchCheck {
            subject: subject.clone(),
            items: items
                .iter()
                .map(|(path, mode)| BatchItem {
                    path: path.clone(),
                    mode: *mode,
                })
                .collect(),
        };
        match self.one(request)? {
            Response::Batch(decisions) => Ok(decisions),
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// Lists the children of the container at `path`.
    pub fn list(&mut self, subject: &Subject, path: &NsPath) -> Result<Vec<String>, ClientError> {
        let request = Request::List {
            subject: subject.clone(),
            path: path.clone(),
        };
        match self.one(request)? {
            Response::Listing(names) => Ok(names),
            other => Err(unexpected("Listing", &other)),
        }
    }

    /// Fetches and parses the reasoning trace for one check.
    pub fn explain(
        &mut self,
        subject: &Subject,
        path: &NsPath,
        mode: AccessMode,
    ) -> Result<Explanation, ClientError> {
        let request = Request::Explain {
            subject: subject.clone(),
            path: path.clone(),
            mode,
        };
        match self.one(request)? {
            Response::Explanation(json) => serde_json::from_str(&json)
                .map_err(|e| ClientError::Unexpected(format!("unparseable explanation: {e}"))),
            other => Err(unexpected("Explanation", &other)),
        }
    }

    /// Pulls the combined monitor + server telemetry JSON document.
    pub fn telemetry(&mut self) -> Result<String, ClientError> {
        match self.one(Request::Telemetry)? {
            Response::Telemetry(json) => Ok(json),
            other => Err(unexpected("Telemetry", &other)),
        }
    }

    // -----------------------------------------------------------------
    // The bundle admin API.
    // -----------------------------------------------------------------

    /// Stages a policy bundle from source text; returns the handle to
    /// activate or shadow it by, and the base generation it was pinned
    /// to. Compile refusals surface as [`ClientError::Server`] with
    /// [`ErrorCode::InvalidBundle`].
    pub fn load_bundle(&mut self, source: &str) -> Result<(BundleId, Generation), ClientError> {
        let request = Request::LoadBundle {
            source: source.to_string(),
        };
        match self.one(request)? {
            Response::BundleStaged { bundle, base } => Ok((bundle, base)),
            other => Err(unexpected("BundleStaged", &other)),
        }
    }

    /// Activates a staged bundle in one atomic publish; returns the
    /// now-active generation. Safe under the client's automatic retry: a
    /// replayed activation finds its handle consumed and its base stale,
    /// so it fails closed with [`ErrorCode::GenerationConflict`] instead
    /// of double-applying.
    pub fn activate(&mut self, bundle: BundleId) -> Result<Generation, ClientError> {
        match self.one(Request::Activate { bundle })? {
            Response::BundleAck { generation } => Ok(generation),
            other => Err(unexpected("BundleAck", &other)),
        }
    }

    /// Toggles shadow evaluation of a staged bundle; returns the (still
    /// active, unchanged) generation. Idempotent, so retry-safe.
    pub fn shadow(&mut self, bundle: BundleId, on: bool) -> Result<Generation, ClientError> {
        match self.one(Request::Shadow { bundle, on })? {
            Response::BundleAck { generation } => Ok(generation),
            other => Err(unexpected("BundleAck", &other)),
        }
    }

    /// Rolls back to the most recent pre-activation snapshot; returns
    /// the fresh generation. Deliberately a **single attempt** — a
    /// replayed rollback would pop one more ring entry — so a transport
    /// failure here is an unknown outcome: consult
    /// [`bundle_status`](Client::bundle_status) before retrying by hand.
    pub fn rollback(&mut self) -> Result<Generation, ClientError> {
        let mut responses = self.try_pipeline(&[Request::Rollback])?;
        match responses.remove(0) {
            Response::BundleAck { generation } => Ok(generation),
            other => Err(unexpected("BundleAck", &other)),
        }
    }

    /// Fetches and parses the bundle subsystem's status report: the
    /// active generation, staged bundles, shadow flip counts, and the
    /// rollback ring's depth.
    pub fn bundle_status(&mut self) -> Result<BundleStatusReport, ClientError> {
        match self.one(Request::BundleStatus)? {
            Response::BundleStatus(json) => serde_json::from_str(&json)
                .map_err(|e| ClientError::Unexpected(format!("unparseable bundle status: {e}"))),
            other => Err(unexpected("BundleStatus", &other)),
        }
    }

    // -----------------------------------------------------------------
    // The audit admin API.
    // -----------------------------------------------------------------

    /// Runs a filtered, bounded scan over the server's persisted audit
    /// chain. The result is one page: resume a
    /// [`truncated`](QueryResult::truncated) scan by re-issuing the
    /// query with `seq_min = result.next_seq`. A server without an
    /// attached pipeline answers [`ErrorCode::AuditUnavailable`],
    /// surfaced as [`ClientError::Server`]. Retry-safe: a query only
    /// re-observes.
    pub fn audit_query(&mut self, query: &AuditQuery) -> Result<QueryResult, ClientError> {
        let request = Request::AuditQuery {
            query: query.clone(),
        };
        match self.one(request)? {
            Response::AuditEvents(result) => Ok(result),
            other => Err(unexpected("AuditEvents", &other)),
        }
    }

    /// Asks the server to re-derive its persisted audit chain end to end
    /// and parses the per-segment integrity report. Retry-safe: verify
    /// mutates nothing.
    pub fn audit_verify(&mut self) -> Result<VerifyReport, ClientError> {
        match self.one(Request::AuditVerify)? {
            Response::AuditReport(json) => serde_json::from_str(&json)
                .map_err(|e| ClientError::Unexpected(format!("unparseable verify report: {e}"))),
            other => Err(unexpected("AuditReport", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    match got {
        Response::Error { code, message } => ClientError::Server {
            code: *code,
            message: message.clone(),
        },
        other => ClientError::Unexpected(format!(
            "wanted {wanted}, got opcode {:#04x}",
            other.opcode()
        )),
    }
}

/// A jittered exponential backoff: attempt 1 sleeps about `base`, each
/// further attempt doubles it up to `cap`, and the actual delay is drawn
/// uniformly from the upper half of that window (`[delay/2, delay]`), so
/// clients shed at the same instant spread their retries out.
fn backoff_delay(base: Duration, cap: Duration, attempt: u32, salt: u64) -> Duration {
    let exp = base
        .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
        .min(cap);
    let nanos = exp.as_nanos() as u64;
    if nanos == 0 {
        return Duration::ZERO;
    }
    // splitmix64-style scramble; good enough spread for retry jitter
    // without pulling a RNG into the client.
    let mut z = salt.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    Duration::from_nanos(nanos / 2 + z % (nanos / 2 + 1))
}

/// Per-call jitter seed from the standard library's randomized hasher.
fn jitter_salt() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(250);
        for salt in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let mut previous_window = Duration::ZERO;
            for attempt in 1..=10 {
                let delay = backoff_delay(base, cap, attempt, salt);
                let window = base.saturating_mul(1u32 << (attempt - 1).min(16)).min(cap);
                assert!(delay <= window, "attempt {attempt}: {delay:?} > {window:?}");
                assert!(
                    delay >= window / 2,
                    "attempt {attempt}: {delay:?} below half of {window:?}"
                );
                assert!(window >= previous_window, "window must be monotone");
                previous_window = window;
            }
            // Far past the doubling range the cap holds.
            assert!(backoff_delay(base, cap, 1000, salt) <= cap);
        }
    }

    #[test]
    fn zero_base_backoff_is_zero() {
        assert_eq!(
            backoff_delay(Duration::ZERO, Duration::ZERO, 3, 42),
            Duration::ZERO
        );
    }
}
