//! The client: connection reuse, request pipelining, and retry.
//!
//! A [`Client`] owns at most one TCP connection and reuses it across
//! calls. [`Client::pipeline`] writes a whole slice of requests before
//! reading the first response — the server answers each frame with
//! exactly one response frame, in order, so a pipeline of `n` requests
//! costs one round trip instead of `n`.
//!
//! On a *transient* transport error (reset, broken pipe, timeout, a
//! server that closed an idle connection) the client drops the dead
//! connection, reconnects, and retries the whole pipeline. That is safe
//! here because every protocol operation is an idempotent read — checks,
//! listings, explanations, telemetry pulls mutate nothing — so replaying
//! a pipeline whose responses were lost cannot change the outcome, only
//! re-observe it. Server-sent `Error` responses are *answers*, not
//! failures: they are returned (or surfaced as [`ClientError::Server`])
//! and never retried.

use crate::proto::{
    self, BatchItem, ErrorCode, FrameError, ProtoError, Request, Response, MAX_FRAME,
};
use extsec_acl::AccessMode;
use extsec_namespace::NsPath;
use extsec_refmon::{Decision, Explanation, Subject};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Tuning knobs for a [`Client`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-response read timeout.
    pub read_timeout: Duration,
    /// Write timeout for the request side of a pipeline.
    pub write_timeout: Duration,
    /// How many times a pipeline is retried on a fresh connection after
    /// a transient transport error or a `Busy` shed (0 disables retry).
    pub retries: u32,
    /// Largest accepted response frame payload, bytes.
    pub max_frame: u32,
    /// First retry's backoff; each further retry doubles it (jittered).
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff between retries.
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            retries: 2,
            max_frame: MAX_FRAME,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(250),
        }
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed and retries (if any) were exhausted.
    Io(io::Error),
    /// The server sent bytes that violate the protocol.
    Proto(ProtoError),
    /// The server shed the connection (or request) with a `Busy`
    /// response and retries were exhausted.
    Busy {
        /// The server's suggested minimum backoff, in milliseconds.
        retry_after_ms: u64,
    },
    /// The server answered with an `Error` response.
    Server {
        /// The error class.
        code: ErrorCode,
        /// The server's description.
        message: String,
    },
    /// The server answered with a well-formed response of the wrong
    /// kind for the request (a server bug or a confused proxy).
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy (retry after {retry_after_ms}ms)")
            }
            ClientError::Server { code, message } => write!(f, "server [{code}]: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected (or reconnecting) client for one server address.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
}

impl Client {
    /// Resolves `addr` and connects eagerly.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let mut client = Client {
            addr,
            config,
            stream: None,
        };
        client.reconnect()?;
        Ok(client)
    }

    fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        stream.set_nodelay(true)?;
        self.stream = Some(stream);
        Ok(())
    }

    /// Whether an error is worth a reconnect-and-retry.
    fn transient(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::UnexpectedEof
                | io::ErrorKind::TimedOut
                | io::ErrorKind::WouldBlock
        )
    }

    /// Sends every request, then reads one response per request, in
    /// order. Retries the whole pipeline on a fresh connection after a
    /// transient transport error or a server `Busy` shed (safe: all
    /// operations are reads), sleeping a jittered exponential backoff
    /// between attempts so a fleet of shed clients does not return in
    /// lockstep.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        let mut attempt = 0;
        loop {
            let retry_floor = match self.try_pipeline(requests) {
                Ok(responses) => return Ok(responses),
                Err(ClientError::Io(e))
                    if attempt < self.config.retries && Self::transient(e.kind()) =>
                {
                    Duration::ZERO
                }
                Err(ClientError::Busy { retry_after_ms }) if attempt < self.config.retries => {
                    Duration::from_millis(retry_after_ms)
                }
                Err(other) => return Err(other),
            };
            attempt += 1;
            self.stream = None;
            let delay = backoff_delay(
                self.config.backoff_base,
                self.config.backoff_cap,
                attempt,
                jitter_salt(),
            )
            .max(retry_floor);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
    }

    fn try_pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        let Some(stream) = self.stream.as_mut() else {
            // reconnect() above either set the stream or bailed with its
            // own error; this is unreachable, but refuse rather than
            // panic inside a retry loop.
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "reconnect left no stream",
            )));
        };
        for request in requests {
            proto::write_frame(stream, &request.encode())?;
        }
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            let frame = match proto::read_frame(stream, self.config.max_frame) {
                Ok(frame) => frame,
                Err(FrameError::Eof) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed mid-pipeline",
                    )))
                }
                Err(FrameError::Idle) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no response before the read timeout",
                    )))
                }
                Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
                Err(FrameError::Proto(e)) => return Err(ClientError::Proto(e)),
            };
            let response =
                Response::decode(frame.opcode, &frame.payload).map_err(ClientError::Proto)?;
            if let Response::Busy { retry_after_ms } = response {
                // The server shed us and will close; surface it so the
                // retry loop can back off for at least the server's hint.
                return Err(ClientError::Busy { retry_after_ms });
            }
            responses.push(response);
        }
        Ok(responses)
    }

    fn one(&mut self, request: Request) -> Result<Response, ClientError> {
        let mut responses = self.pipeline(std::slice::from_ref(&request))?;
        Ok(responses.remove(0))
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.one(Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Runs one access check on the server.
    pub fn check(
        &mut self,
        subject: &Subject,
        path: &NsPath,
        mode: AccessMode,
    ) -> Result<Decision, ClientError> {
        let request = Request::Check {
            subject: subject.clone(),
            path: path.clone(),
            mode,
        };
        match self.one(request)? {
            Response::Decision(decision) => Ok(decision),
            other => Err(unexpected("Decision", &other)),
        }
    }

    /// Runs a batch of checks against one server-side snapshot; the
    /// decisions come back in item order and are mutually consistent.
    pub fn batch_check(
        &mut self,
        subject: &Subject,
        items: &[(NsPath, AccessMode)],
    ) -> Result<Vec<Decision>, ClientError> {
        let request = Request::BatchCheck {
            subject: subject.clone(),
            items: items
                .iter()
                .map(|(path, mode)| BatchItem {
                    path: path.clone(),
                    mode: *mode,
                })
                .collect(),
        };
        match self.one(request)? {
            Response::Batch(decisions) => Ok(decisions),
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// Lists the children of the container at `path`.
    pub fn list(&mut self, subject: &Subject, path: &NsPath) -> Result<Vec<String>, ClientError> {
        let request = Request::List {
            subject: subject.clone(),
            path: path.clone(),
        };
        match self.one(request)? {
            Response::Listing(names) => Ok(names),
            other => Err(unexpected("Listing", &other)),
        }
    }

    /// Fetches and parses the reasoning trace for one check.
    pub fn explain(
        &mut self,
        subject: &Subject,
        path: &NsPath,
        mode: AccessMode,
    ) -> Result<Explanation, ClientError> {
        let request = Request::Explain {
            subject: subject.clone(),
            path: path.clone(),
            mode,
        };
        match self.one(request)? {
            Response::Explanation(json) => serde_json::from_str(&json)
                .map_err(|e| ClientError::Unexpected(format!("unparseable explanation: {e}"))),
            other => Err(unexpected("Explanation", &other)),
        }
    }

    /// Pulls the combined monitor + server telemetry JSON document.
    pub fn telemetry(&mut self) -> Result<String, ClientError> {
        match self.one(Request::Telemetry)? {
            Response::Telemetry(json) => Ok(json),
            other => Err(unexpected("Telemetry", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    match got {
        Response::Error { code, message } => ClientError::Server {
            code: *code,
            message: message.clone(),
        },
        other => ClientError::Unexpected(format!(
            "wanted {wanted}, got opcode {:#04x}",
            other.opcode()
        )),
    }
}

/// A jittered exponential backoff: attempt 1 sleeps about `base`, each
/// further attempt doubles it up to `cap`, and the actual delay is drawn
/// uniformly from the upper half of that window (`[delay/2, delay]`), so
/// clients shed at the same instant spread their retries out.
fn backoff_delay(base: Duration, cap: Duration, attempt: u32, salt: u64) -> Duration {
    let exp = base
        .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
        .min(cap);
    let nanos = exp.as_nanos() as u64;
    if nanos == 0 {
        return Duration::ZERO;
    }
    // splitmix64-style scramble; good enough spread for retry jitter
    // without pulling a RNG into the client.
    let mut z = salt.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    Duration::from_nanos(nanos / 2 + z % (nanos / 2 + 1))
}

/// Per-call jitter seed from the standard library's randomized hasher.
fn jitter_salt() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(250);
        for salt in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let mut previous_window = Duration::ZERO;
            for attempt in 1..=10 {
                let delay = backoff_delay(base, cap, attempt, salt);
                let window = base.saturating_mul(1u32 << (attempt - 1).min(16)).min(cap);
                assert!(delay <= window, "attempt {attempt}: {delay:?} > {window:?}");
                assert!(
                    delay >= window / 2,
                    "attempt {attempt}: {delay:?} below half of {window:?}"
                );
                assert!(window >= previous_window, "window must be monotone");
                previous_window = window;
            }
            // Far past the doubling range the cap holds.
            assert!(backoff_delay(base, cap, 1000, salt) <= cap);
        }
    }

    #[test]
    fn zero_base_backoff_is_zero() {
        assert_eq!(
            backoff_delay(Duration::ZERO, Duration::ZERO, 3, 42),
            Duration::ZERO
        );
    }
}
