//! Per-connection service loop.
//!
//! One worker thread runs [`serve`] for one connection at a time: read a
//! frame, decode, dispatch against the monitor, answer with exactly one
//! response frame. The loop's error discipline is the protocol's
//! security story in miniature:
//!
//! - malformed bytes (bad version, bad opcode, truncated or oversize
//!   frames, garbage payloads) produce one `Error` response (best
//!   effort) and close the connection — a peer that cannot frame
//!   correctly cannot be trusted to resynchronize;
//! - *semantic* refusals (batch over the operational limit, a subject
//!   class foreign to the lattice, a denied `list`) answer with an
//!   `Error` response and keep the connection open — the frame itself
//!   was well-formed;
//! - every exit path, including panics in decode or dispatch, passes
//!   through a drop guard so the open/closed connection accounting can
//!   never leak a slot.

use crate::proto::{self, ErrorCode, Frame, FrameError, ProtoError, Request, Response, HEADER_LEN};
use crate::server::ServerConfig;
use crate::telemetry::ServerTelemetry;
use extsec_refmon::{JsonSnapshot, MonitorError, MonitorView, ReferenceMonitor, Subject};
use serde::Serialize;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// The combined document answering a `Telemetry` request.
#[derive(Serialize)]
struct WireTelemetry {
    monitor: JsonSnapshot,
    server: crate::telemetry::ServerTelemetrySnapshot,
}

/// Balances [`ServerTelemetry::conn_opened`] on every exit path.
struct CloseGuard<'t>(&'t ServerTelemetry);

impl Drop for CloseGuard<'_> {
    fn drop(&mut self) {
        self.0.conn_closed();
    }
}

/// Serves one connection to completion.
pub(crate) fn serve(
    mut stream: TcpStream,
    monitor: &ReferenceMonitor,
    tele: &ServerTelemetry,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) {
    tele.conn_opened();
    let _guard = CloseGuard(tele);
    let mut served: u64 = 0;
    loop {
        let frame = match proto::read_frame(&mut stream, config.max_frame) {
            Ok(frame) => frame,
            Err(FrameError::Eof) => return,
            Err(FrameError::Idle) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(FrameError::Io(e)) => {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    tele.count_timeout();
                } else {
                    tele.count_io_error();
                }
                return;
            }
            Err(FrameError::Proto(e)) => {
                tele.count_protocol_error();
                let code = match e {
                    ProtoError::BadVersion(_) => ErrorCode::Version,
                    ProtoError::Oversize(_) => {
                        tele.count_oversize();
                        ErrorCode::Oversize
                    }
                    _ => ErrorCode::Protocol,
                };
                close_with_reply(&mut stream, &error(code, e.to_string()), tele);
                return;
            }
        };
        tele.record_frame_bytes((frame.payload.len() + HEADER_LEN) as u64);
        // Graceful degradation: a connection that exhausts its request
        // budget is shed with a typed Busy answer, not starved silently.
        if served >= config.conn_request_budget {
            tele.count_shed_budget();
            let busy = Response::Busy {
                retry_after_ms: config.shed_retry_after.as_millis() as u64,
            };
            close_with_reply(&mut stream, &busy, tele);
            return;
        }
        served += 1;
        // Injected connection faults fail closed: an Error/Trap answer
        // plus a close; a Panic unwinds through the close guard (the
        // slot is still accounted) into the worker's containment.
        if let Some(fault) = extsec_faults::fire_panicky("server.conn") {
            tele.count_io_error();
            close_with_reply(
                &mut stream,
                &error(ErrorCode::Internal, fault.to_string()),
                tele,
            );
            return;
        }
        let response = match handle(&frame, monitor, tele, config) {
            Ok(response) => response,
            Err(e) => {
                // The frame was framed correctly but its payload was not:
                // answer, then drop the peer like any protocol violator.
                tele.count_protocol_error();
                let code = match e {
                    ProtoError::BadOpcode(_) => ErrorCode::Opcode,
                    _ => ErrorCode::Protocol,
                };
                close_with_reply(&mut stream, &error(code, e.to_string()), tele);
                return;
            }
        };
        if send(&mut stream, &response, tele).is_err() {
            return;
        }
        if shutdown.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Decodes and dispatches one well-framed request.
fn handle(
    frame: &Frame,
    monitor: &ReferenceMonitor,
    tele: &ServerTelemetry,
    config: &ServerConfig,
) -> Result<Response, ProtoError> {
    let request = Request::decode(frame.opcode, &frame.payload)?;
    tele.count_request(request.opcode());
    Ok(match request {
        Request::Ping => Response::Pong,
        Request::Check {
            subject,
            path,
            mode,
        } => {
            let view = monitor.view();
            match validate_subject(&view, &subject) {
                Some(refusal) => refusal,
                None => Response::Decision(view.check(&subject, &path, mode)),
            }
        }
        Request::BatchCheck { subject, items } => {
            if items.len() > config.max_batch {
                return Ok(error(
                    ErrorCode::BatchTooLarge,
                    format!(
                        "batch of {} exceeds the server limit of {}",
                        items.len(),
                        config.max_batch
                    ),
                ));
            }
            let started = Instant::now();
            // The point of batching: one snapshot pin, one subject
            // validation, then every item answered from the same
            // immutable policy state.
            let view = monitor.view();
            if let Some(refusal) = validate_subject(&view, &subject) {
                return Ok(refusal);
            }
            let decisions = items
                .iter()
                .map(|item| view.check(&subject, &item.path, item.mode))
                .collect();
            tele.count_batched_checks(items.len() as u64);
            tele.record_batch_latency(started.elapsed());
            Response::Batch(decisions)
        }
        Request::List { subject, path } => {
            let view = monitor.view();
            match validate_subject(&view, &subject) {
                Some(refusal) => refusal,
                None => match view.list(&subject, &path) {
                    Ok(names) => Response::Listing(names),
                    Err(MonitorError::Denied(reason)) => {
                        error(ErrorCode::Denied, format!("denied: {reason}"))
                    }
                    Err(e) => error(ErrorCode::Denied, e.to_string()),
                },
            }
        }
        Request::Explain {
            subject,
            path,
            mode,
        } => {
            let view = monitor.view();
            match validate_subject(&view, &subject) {
                Some(refusal) => refusal,
                None => {
                    let explanation = view.explain(&subject, &path, mode);
                    match serde_json::to_string(&explanation) {
                        Ok(json) => Response::Explanation(json),
                        Err(e) => error(ErrorCode::Internal, e.to_string()),
                    }
                }
            }
        }
        Request::Telemetry => {
            // Feed the registered pull-path sinks, then ship the same
            // shape (plus the server's own block) to the caller.
            monitor.telemetry().publish();
            let document = WireTelemetry {
                monitor: JsonSnapshot::from(&monitor.telemetry_snapshot()),
                server: tele.snapshot(),
            };
            match serde_json::to_string(&document) {
                Ok(json) => Response::Telemetry(json),
                Err(e) => error(ErrorCode::Internal, e.to_string()),
            }
        }
    })
}

/// Refuses subjects whose claimed class is foreign to the lattice.
///
/// The server trusts the client's *identity* claim (authentication is
/// outside the paper's model and this reproduction — see DESIGN.md
/// §6.9), but it never lets a malformed class reach the monitor.
fn validate_subject(view: &MonitorView<'_>, subject: &Subject) -> Option<Response> {
    match view.lattice(|l| l.validate(&subject.class)) {
        Ok(()) => None,
        Err(e) => Some(error(ErrorCode::InvalidSubject, e.to_string())),
    }
}

fn error(code: ErrorCode, message: String) -> Response {
    Response::Error { code, message }
}

/// Sends a final error reply, then closes *gracefully*: half-close the
/// write side and drain (bounded) whatever the peer already sent.
/// Dropping a socket with unread bytes makes the kernel send an RST,
/// which can destroy the error reply still in flight — a refusal should
/// arrive as a readable answer followed by a clean EOF.
fn close_with_reply(stream: &mut TcpStream, response: &Response, tele: &ServerTelemetry) {
    if send(stream, response, tele).is_err() {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(50)));
    let mut sink = [0u8; 4096];
    // Bounded: a peer that keeps streaming gets its RST after all.
    for _ in 0..8 {
        match std::io::Read::read(stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Writes one response, mapping failures into the telemetry counters.
fn send(stream: &mut TcpStream, response: &Response, tele: &ServerTelemetry) -> Result<(), ()> {
    let frame = response.encode();
    match proto::write_frame(stream, &frame) {
        Ok(()) => Ok(()),
        Err(e) => {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                tele.count_timeout();
            } else {
                tele.count_io_error();
            }
            Err(())
        }
    }
}
