//! Per-connection state machine for the reactor server.
//!
//! A connection is no longer a blocking loop owned by one worker thread
//! (the pre-reactor design): it is a small state machine driven by
//! readiness events from its shard's poller (see [`crate::reactor`]).
//! Each turn the shard hands the machine the readiness it observed and
//! the machine makes whatever progress the socket allows without ever
//! blocking: it reassembles frames from a reused read buffer, dispatches
//! every complete request, coalesces all the replies into one write
//! buffer, and flushes them with a single `write` per turn.
//!
//! The error discipline is unchanged from the blocking server — it is
//! the protocol's security story in miniature:
//!
//! - malformed bytes (bad version, bad opcode, truncated or oversize
//!   frames, garbage payloads) produce one `Error` response (best
//!   effort) and close the connection — a peer that cannot frame
//!   correctly cannot be trusted to resynchronize;
//! - *semantic* refusals (batch over the operational limit, a subject
//!   class foreign to the lattice, a denied `list`) answer with an
//!   `Error` response and keep the connection open — the frame itself
//!   was well-formed;
//! - every exit path, including panics in decode or dispatch, funnels
//!   through the shard's single close path, so the open/closed
//!   connection accounting can never leak a slot.
//!
//! Closing after a refusal is still graceful: the final reply is
//! flushed, the write side is half-closed, and a bounded amount of
//! whatever the peer keeps sending is drained so the kernel does not
//! destroy the in-flight reply with an RST.

use crate::proto::{self, ErrorCode, FrameScan, ProtoError, Request, Response, HEADER_LEN};
use crate::server::ServerConfig;
use crate::telemetry::ServerTelemetry;
use extsec_acl::AccessMode;
use extsec_namespace::NsPath;
use extsec_refmon::{
    AuditAccessError, BundleError, JsonSnapshot, MonitorError, MonitorView, ReferenceMonitor,
    Subject,
};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

/// Pending-write backlog at which request parsing pauses (and read
/// interest drops) until the peer drains some of it — the backpressure
/// valve against a client that pipelines faster than it reads.
const WRITE_HIGH_WATER: usize = 256 * 1024;

/// Capacity either per-connection buffer may keep across frames. The
/// buffers are reused from frame to frame (no per-frame allocation);
/// the clamp releases the memory a one-off giant frame or reply
/// inflated, so it is not pinned for the connection's lifetime.
const BUF_CLAMP: usize = 64 * 1024;

/// Bytes read from one connection per readiness turn. Level-triggered
/// polling re-reports whatever remains, so this bounds how long one
/// noisy connection can monopolize its shard — fairness, not a limit.
const READ_BUDGET: usize = 256 * 1024;

/// Read chunk size (the granularity the read buffer grows by).
const READ_CHUNK: usize = 16 * 1024;

/// Hostile bytes drained after a final refusal before the RST is let
/// through after all.
const DRAIN_BUDGET: usize = 32 * 1024;

/// How long a refused connection may linger in the drain state.
const DRAIN_TIMEOUT: Duration = Duration::from_millis(200);

/// The combined document answering a `Telemetry` request.
#[derive(Serialize)]
struct WireTelemetry {
    monitor: JsonSnapshot,
    server: crate::telemetry::ServerTelemetrySnapshot,
}

/// Dispatch context a shard lends the state machine for one turn.
pub(crate) struct Ctx<'a> {
    pub(crate) monitor: &'a ReferenceMonitor,
    pub(crate) tele: &'a ServerTelemetry,
    pub(crate) config: &'a ServerConfig,
}

/// What a connection is currently doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Reading requests and queueing replies.
    Serving,
    /// The peer half-closed cleanly; flush the queued replies, then
    /// close.
    Flushing,
    /// A final reply (error or busy) is queued: flush it, half-close the
    /// write side, drain a bounded amount of input, then close.
    Draining {
        /// Whether the write side has been shut down yet (it is, as soon
        /// as the final reply is fully flushed).
        shut: bool,
        /// Drain budget remaining, bytes.
        remaining: usize,
    },
}

/// Which deadline is armed, so a timer that fires is counted correctly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DeadlineKind {
    /// Mid-frame silence (the peer stalled inside a frame).
    Read,
    /// A pending reply the peer will not drain.
    Write,
    /// The bounded post-refusal drain window.
    Drain,
}

impl DeadlineKind {
    /// Whether a fired deadline of this kind counts as a timeout (the
    /// drain window expiring is the plan, not a failure).
    pub(crate) fn is_timeout(self) -> bool {
        !matches!(self, DeadlineKind::Drain)
    }
}

/// What the shard should do with the connection after a turn.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Turn {
    /// Keep it registered; interest and deadline fields are current.
    Keep,
    /// Close it (the shard's close funnel does the accounting).
    Close,
}

/// How far frame processing got through the buffered bytes.
#[derive(Debug, PartialEq, Eq)]
enum Parsed {
    /// The buffer holds (at most) a frame prefix; more bytes are needed.
    NeedMore,
    /// Paused at the write high-watermark with complete frames still
    /// buffered; resumes when the backlog drains.
    Paused,
    /// The phase changed (refusal or shed); stop reading input.
    Transitioned,
}

/// One connection's entire state: socket, reassembly and reply buffers,
/// request budget, phase, and the posture (interest + deadline) its
/// shard mirrors into the poller and timer wheel.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// Reassembly buffer; unparsed bytes live at `rbuf[rpos..]`.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Coalesced replies; unsent bytes live at `wbuf[wpos..]`.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Replies queued since the last counted flush.
    unflushed: u64,
    served: u64,
    phase: Phase,
    /// The peer's read side is done (clean EOF observed).
    eof: bool,
    /// Desired poller interest, recomputed each turn.
    pub(crate) want_read: bool,
    pub(crate) want_write: bool,
    /// Interest actually registered with the poller (shard-maintained).
    pub(crate) reg_read: bool,
    pub(crate) reg_write: bool,
    /// Armed deadline, if any. `timer_seq` bumps whenever it changes, so
    /// stale wheel entries are recognized and skipped (lazy cancel).
    pub(crate) deadline: Option<(Instant, DeadlineKind)>,
    pub(crate) timer_seq: u64,
    /// The seq the shard last inserted into its wheel.
    pub(crate) armed_seq: u64,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            unflushed: 0,
            served: 0,
            phase: Phase::Serving,
            eof: false,
            want_read: true,
            want_write: false,
            reg_read: true,
            reg_write: false,
            deadline: None,
            timer_seq: 0,
            armed_seq: 0,
        }
    }

    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    fn buffered_input(&self) -> usize {
        self.rbuf.len() - self.rpos
    }

    /// One readiness turn: flush what the socket will take, consume what
    /// it offers, dispatch every complete frame, and recompute the
    /// posture. Never blocks.
    pub(crate) fn drive(&mut self, readable: bool, writable: bool, ctx: &Ctx<'_>) -> Turn {
        let mut wrote = false;
        if writable || self.pending_write() > 0 {
            match self.flush(ctx, &mut wrote) {
                Ok(()) => {}
                Err(()) => return Turn::Close,
            }
        }
        let mut read_any = false;
        let turn = match self.phase {
            Phase::Serving => self.serve_input(readable, ctx, &mut read_any, &mut wrote),
            Phase::Flushing => {
                if self.pending_write() == 0 {
                    Turn::Close
                } else {
                    Turn::Keep
                }
            }
            Phase::Draining { .. } => self.drain_input(readable),
        };
        if turn == Turn::Close {
            return Turn::Close;
        }
        // A refusal mid-parse queued a final reply: push it toward the
        // peer in the same turn (it usually completes here, arming the
        // drain window immediately).
        if matches!(self.phase, Phase::Draining { .. })
            && self.pending_write() > 0
            && self.flush(ctx, &mut wrote).is_err()
        {
            return Turn::Close;
        }
        if matches!(self.phase, Phase::Draining { .. }) && self.eof && self.pending_write() == 0 {
            return Turn::Close;
        }
        self.posture(read_any, wrote);
        Turn::Keep
    }

    /// Parse buffered bytes, read more if the turn offered readability,
    /// and dispatch every complete frame.
    fn serve_input(
        &mut self,
        mut readable: bool,
        ctx: &Ctx<'_>,
        read_any: &mut bool,
        wrote: &mut bool,
    ) -> Turn {
        let mut budget = READ_BUDGET;
        readable = readable && !self.eof;
        loop {
            match self.process_buffered(ctx) {
                Parsed::Transitioned => return Turn::Keep,
                Parsed::Paused => return Turn::Keep,
                Parsed::NeedMore => {}
            }
            if !readable || budget == 0 {
                return Turn::Keep;
            }
            let len = self.rbuf.len();
            self.rbuf.resize(len + READ_CHUNK, 0);
            match self.stream.read(&mut self.rbuf[len..]) {
                Ok(0) => {
                    self.rbuf.truncate(len);
                    self.eof = true;
                    return if self.buffered_input() > 0 {
                        // The peer died mid-frame: a protocol violation,
                        // answered and closed like any other.
                        ctx.tele.count_protocol_error();
                        self.refuse(ErrorCode::Protocol, ProtoError::Truncated.to_string());
                        // Flush happens in `drive`'s epilogue; the drain
                        // window then sees the EOF and closes.
                        Turn::Keep
                    } else if self.pending_write() > 0 {
                        self.phase = Phase::Flushing;
                        Turn::Keep
                    } else {
                        Turn::Close
                    };
                }
                Ok(n) => {
                    self.rbuf.truncate(len + n);
                    budget = budget.saturating_sub(n);
                    *read_any = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.rbuf.truncate(len);
                    readable = false;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.rbuf.truncate(len);
                }
                Err(_) => {
                    self.rbuf.truncate(len);
                    ctx.tele.count_io_error();
                    return Turn::Close;
                }
            }
            // Opportunistic flush between parse rounds keeps the reply
            // pipeline moving for heavily pipelined peers.
            if self.pending_write() >= WRITE_HIGH_WATER && self.flush(ctx, wrote).is_err() {
                return Turn::Close;
            }
        }
    }

    /// Dispatch every complete frame at the front of the read buffer.
    fn process_buffered(&mut self, ctx: &Ctx<'_>) -> Parsed {
        loop {
            if self.pending_write() >= WRITE_HIGH_WATER {
                return Parsed::Paused;
            }
            match proto::scan_frame(&self.rbuf[self.rpos..], ctx.config.max_frame) {
                Ok(FrameScan::Partial) => {
                    self.compact(ctx);
                    return Parsed::NeedMore;
                }
                Ok(FrameScan::Complete {
                    opcode,
                    payload_start,
                    consumed,
                }) => {
                    let payload = self.rpos + payload_start..self.rpos + consumed;
                    self.rpos += consumed;
                    if self.handle_frame(opcode, payload, ctx) {
                        return Parsed::Transitioned;
                    }
                }
                Err(e) => {
                    ctx.tele.count_protocol_error();
                    let code = match e {
                        ProtoError::BadVersion(_) => ErrorCode::Version,
                        ProtoError::BadOpcode(_) => ErrorCode::Opcode,
                        ProtoError::Oversize(_) => {
                            ctx.tele.count_oversize();
                            ErrorCode::Oversize
                        }
                        _ => ErrorCode::Protocol,
                    };
                    self.refuse(code, e.to_string());
                    return Parsed::Transitioned;
                }
            }
        }
    }

    /// One well-framed request: budget, fault injection, dispatch.
    /// Returns true when the connection transitioned out of `Serving`.
    fn handle_frame(&mut self, opcode: u8, payload: std::ops::Range<usize>, ctx: &Ctx<'_>) -> bool {
        ctx.tele
            .record_frame_bytes((payload.len() + HEADER_LEN) as u64);
        // Graceful degradation: a connection that exhausts its request
        // budget is shed with a typed Busy answer, not starved silently.
        if self.served >= ctx.config.conn_request_budget {
            ctx.tele.count_shed_budget();
            let busy = Response::Busy {
                retry_after_ms: ctx.config.shed_retry_after.as_millis() as u64,
            };
            self.enqueue(&busy);
            self.enter_drain();
            return true;
        }
        self.served += 1;
        // Injected connection faults fail closed: an Error/Trap answer
        // plus a close; a Panic unwinds into the shard's containment
        // (the close funnel still accounts the slot).
        if let Some(fault) = extsec_faults::fire_panicky("server.conn") {
            ctx.tele.count_io_error();
            self.enqueue(&error(ErrorCode::Internal, fault.to_string()));
            self.enter_drain();
            return true;
        }
        match handle(opcode, &self.rbuf[payload], ctx) {
            Ok(response) => {
                self.enqueue(&response);
                false
            }
            Err(e) => {
                // The frame was framed correctly but its payload was not:
                // answer, then drop the peer like any protocol violator.
                ctx.tele.count_protocol_error();
                let code = match e {
                    ProtoError::BadOpcode(_) => ErrorCode::Opcode,
                    _ => ErrorCode::Protocol,
                };
                self.refuse(code, e.to_string());
                true
            }
        }
    }

    /// Queue one encoded response behind the ones already pending.
    fn enqueue(&mut self, response: &Response) {
        self.wbuf.extend_from_slice(&response.encode());
        self.unflushed += 1;
    }

    /// Queue a final error reply and enter the graceful-refusal drain.
    fn refuse(&mut self, code: ErrorCode, message: String) {
        self.enqueue(&error(code, message));
        self.enter_drain();
    }

    fn enter_drain(&mut self) {
        self.phase = Phase::Draining {
            shut: false,
            remaining: DRAIN_BUDGET,
        };
        // Whatever the peer already pipelined is not getting answered;
        // it only counts against the drain budget.
        self.discard_input();
    }

    fn discard_input(&mut self) {
        self.rbuf.clear();
        self.rpos = 0;
    }

    /// Read-and-discard during the post-refusal drain window.
    fn drain_input(&mut self, readable: bool) -> Turn {
        let Phase::Draining { remaining, .. } = &mut self.phase else {
            return Turn::Keep;
        };
        if !readable || self.eof {
            return Turn::Keep;
        }
        let mut sink = [0u8; 4096];
        loop {
            match self.stream.read(&mut sink) {
                Ok(0) => {
                    self.eof = true;
                    return if self.pending_write() == 0 {
                        Turn::Close
                    } else {
                        Turn::Keep
                    };
                }
                Ok(n) => {
                    if n >= *remaining {
                        // Budget exhausted: the peer gets its RST after
                        // all.
                        return Turn::Close;
                    }
                    *remaining -= n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Turn::Keep,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Turn::Close,
            }
        }
    }

    /// Write as much of the pending reply bytes as the socket takes —
    /// the single coalesced flush per turn. Completing the flush while
    /// draining half-closes the write side so the final reply arrives as
    /// a readable answer followed by a clean EOF, not an RST.
    fn flush(&mut self, ctx: &Ctx<'_>, wrote: &mut bool) -> Result<(), ()> {
        while self.pending_write() > 0 {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    ctx.tele.count_io_error();
                    return Err(());
                }
                Ok(n) => {
                    self.wpos += n;
                    *wrote = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    ctx.tele.count_io_error();
                    return Err(());
                }
            }
        }
        if *wrote && self.unflushed > 0 {
            ctx.tele.count_flush(self.unflushed);
            self.unflushed = 0;
        }
        if self.pending_write() == 0 {
            self.wpos = 0;
            self.wbuf.clear();
            if self.wbuf.capacity() > BUF_CLAMP {
                self.wbuf.shrink_to(BUF_CLAMP);
                ctx.tele.count_buf_shrink();
            }
            if let Phase::Draining { shut, .. } = &mut self.phase {
                if !*shut {
                    *shut = true;
                    let _ = self.stream.shutdown(Shutdown::Write);
                }
            }
        }
        Ok(())
    }

    /// Reclaim the read buffer: drop the consumed prefix and release
    /// capacity a giant frame pinned once the remainder fits the clamp.
    fn compact(&mut self, ctx: &Ctx<'_>) {
        if self.rpos > 0 {
            if self.rpos == self.rbuf.len() {
                self.rbuf.clear();
            } else {
                self.rbuf.copy_within(self.rpos.., 0);
                self.rbuf.truncate(self.rbuf.len() - self.rpos);
            }
            self.rpos = 0;
        }
        if self.rbuf.capacity() > BUF_CLAMP && self.rbuf.len() <= BUF_CLAMP {
            self.rbuf.shrink_to(BUF_CLAMP);
            ctx.tele.count_buf_shrink();
        }
    }

    /// Recompute the interest set and deadline for the turn that just
    /// ended. The shard mirrors any change into its poller and wheel.
    fn posture(&mut self, read_progress: bool, write_progress: bool) {
        self.want_write = self.pending_write() > 0;
        self.want_read = match self.phase {
            Phase::Serving => !self.eof && self.pending_write() < WRITE_HIGH_WATER,
            Phase::Flushing => false,
            Phase::Draining { .. } => !self.eof,
        };
        let desired: Option<DeadlineKind> = if matches!(self.phase, Phase::Draining { .. }) {
            Some(DeadlineKind::Drain)
        } else if self.pending_write() > 0 {
            Some(DeadlineKind::Write)
        } else if matches!(self.phase, Phase::Serving) && self.buffered_input() > 0 {
            // A partial frame is sitting in the buffer: the peer must
            // finish it within the read timeout.
            Some(DeadlineKind::Read)
        } else {
            None
        };
        let current = self.deadline.map(|(_, kind)| kind);
        let progressed = match desired {
            Some(DeadlineKind::Read) => read_progress,
            Some(DeadlineKind::Write) => write_progress,
            Some(DeadlineKind::Drain) => false,
            None => false,
        };
        if desired != current || progressed {
            self.set_deadline(desired);
        }
    }

    /// The deadline horizon for `kind`, measured from now.
    pub(crate) fn deadline_after(kind: DeadlineKind, config: &ServerConfig) -> Duration {
        match kind {
            DeadlineKind::Read => config.read_timeout,
            DeadlineKind::Write => config.write_timeout,
            DeadlineKind::Drain => DRAIN_TIMEOUT,
        }
    }

    fn set_deadline(&mut self, kind: Option<DeadlineKind>) {
        self.timer_seq += 1;
        // The instant is filled by the shard (it owns "now" for the
        // wheel); store the kind with a placeholder refreshed on arm.
        self.deadline = kind.map(|k| (Instant::now(), k));
    }

    /// Best-effort final flush at server shutdown (never blocks).
    pub(crate) fn final_flush(&mut self) {
        if self.pending_write() > 0 {
            let _ = self.stream.write(&self.wbuf[self.wpos..]);
        }
    }
}

/// Decodes and dispatches one well-framed request.
fn handle(opcode: u8, payload: &[u8], ctx: &Ctx<'_>) -> Result<Response, ProtoError> {
    let monitor = ctx.monitor;
    let request = Request::decode(opcode, payload)?;
    ctx.tele.count_request(request.opcode());
    Ok(match request {
        Request::Ping => Response::Pong,
        Request::Check {
            subject,
            path,
            mode,
        } => {
            let view = monitor.view();
            match validate_subject(&view, &subject) {
                Some(refusal) => refusal,
                None => Response::Decision(view.check(&subject, &path, mode)),
            }
        }
        Request::BatchCheck { subject, items } => {
            if items.len() > ctx.config.max_batch {
                return Ok(error(
                    ErrorCode::BatchTooLarge,
                    format!(
                        "batch of {} exceeds the server limit of {}",
                        items.len(),
                        ctx.config.max_batch
                    ),
                ));
            }
            let started = Instant::now();
            // The point of batching: one snapshot pin, one subject
            // validation, then the whole batch answered from the same
            // immutable policy state by the monitor's vectorized path
            // (sorted shared-prefix resolution, one cache-probe loop).
            let view = monitor.view();
            if let Some(refusal) = validate_subject(&view, &subject) {
                return Ok(refusal);
            }
            let count = items.len() as u64;
            let pairs: Vec<(NsPath, AccessMode)> = items
                .into_iter()
                .map(|item| (item.path, item.mode))
                .collect();
            let decisions = view.check_batch(&subject, &pairs);
            ctx.tele.count_batched_checks(count);
            ctx.tele.record_batch_latency(started.elapsed());
            Response::Batch(decisions)
        }
        Request::List { subject, path } => {
            let view = monitor.view();
            match validate_subject(&view, &subject) {
                Some(refusal) => refusal,
                None => match view.list(&subject, &path) {
                    Ok(names) => Response::Listing(names),
                    Err(MonitorError::Denied(reason)) => {
                        error(ErrorCode::Denied, format!("denied: {reason}"))
                    }
                    Err(e) => error(ErrorCode::Denied, e.to_string()),
                },
            }
        }
        Request::Explain {
            subject,
            path,
            mode,
        } => {
            let view = monitor.view();
            match validate_subject(&view, &subject) {
                Some(refusal) => refusal,
                None => {
                    let explanation = view.explain(&subject, &path, mode);
                    match serde_json::to_string(&explanation) {
                        Ok(json) => Response::Explanation(json),
                        Err(e) => error(ErrorCode::Internal, e.to_string()),
                    }
                }
            }
        }
        Request::Telemetry => {
            // Feed the registered pull-path sinks, then ship the same
            // shape (plus the server's own block) to the caller.
            monitor.telemetry().publish();
            let document = WireTelemetry {
                monitor: JsonSnapshot::from(&monitor.telemetry_snapshot()),
                server: ctx.tele.snapshot(),
            };
            match serde_json::to_string(&document) {
                Ok(json) => Response::Telemetry(json),
                Err(e) => error(ErrorCode::Internal, e.to_string()),
            }
        }
        // The bundle admin set. Refusals are semantic (the frame itself
        // was well-formed), so the connection stays open — an operator
        // fixing a bundle should not have to reconnect per attempt.
        Request::LoadBundle { source } => match monitor.stage_bundle(&source) {
            Ok(staged) => Response::BundleStaged {
                bundle: staged.id,
                base: staged.base,
            },
            Err(e) => bundle_error(&e),
        },
        Request::Activate { bundle } => match monitor.activate_bundle(bundle) {
            Ok(generation) => Response::BundleAck { generation },
            Err(e) => bundle_error(&e),
        },
        Request::Shadow { bundle, on } => match monitor.shadow_bundle(bundle, on) {
            Ok(generation) => Response::BundleAck { generation },
            Err(e) => bundle_error(&e),
        },
        Request::Rollback => match monitor.rollback() {
            Ok(generation) => Response::BundleAck { generation },
            Err(e) => bundle_error(&e),
        },
        Request::BundleStatus => match serde_json::to_string(&monitor.bundle_status()) {
            Ok(json) => Response::BundleStatus(json),
            Err(e) => error(ErrorCode::Internal, e.to_string()),
        },
        // The audit admin pair. Refusals are semantic — a server without
        // an attached pipeline answers with a typed `AuditUnavailable`
        // and the connection stays open. Both calls flush the drainer
        // first (inside the monitor), so an answer covers everything
        // recorded before the request arrived.
        Request::AuditQuery { query } => match monitor.audit_query(&query) {
            Ok(result) => Response::AuditEvents(result),
            Err(e) => audit_error(&e),
        },
        Request::AuditVerify => match monitor.audit_verify() {
            Ok(report) => match serde_json::to_string(&report) {
                Ok(json) => Response::AuditReport(json),
                Err(e) => error(ErrorCode::Internal, e.to_string()),
            },
            Err(e) => audit_error(&e),
        },
    })
}

/// Maps an audit refusal to its typed wire error: a server with no
/// pipeline attached gets its own code so clients can distinguish "not
/// configured" from a failing store.
fn audit_error(e: &AuditAccessError) -> Response {
    let code = match e {
        AuditAccessError::Unattached => ErrorCode::AuditUnavailable,
        AuditAccessError::Io(_) => ErrorCode::Internal,
    };
    error(code, e.to_string())
}

/// Maps a bundle refusal to its typed wire error: base-generation races
/// get their own code so clients can restage-and-retry mechanically;
/// everything else is a bundle the operator must fix.
fn bundle_error(e: &BundleError) -> Response {
    let code = match e {
        BundleError::BaseConflict { .. } => ErrorCode::GenerationConflict,
        _ => ErrorCode::InvalidBundle,
    };
    error(code, e.to_string())
}

/// Refuses subjects whose claimed class is foreign to the lattice.
///
/// The server trusts the client's *identity* claim (authentication is
/// outside the paper's model and this reproduction — see DESIGN.md
/// §6.9), but it never lets a malformed class reach the monitor.
fn validate_subject(view: &MonitorView<'_>, subject: &Subject) -> Option<Response> {
    match view.lattice(|l| l.validate(&subject.class)) {
        Ok(()) => None,
        Err(e) => Some(error(ErrorCode::InvalidSubject, e.to_string())),
    }
}

fn error(code: ErrorCode, message: String) -> Response {
    Response::Error { code, message }
}
