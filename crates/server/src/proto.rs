//! The versioned, length-prefixed binary wire protocol.
//!
//! Every message is one **frame**: a six-byte header — protocol version,
//! opcode, and a little-endian `u32` payload length — followed by the
//! payload. Inside the payload, lengths and integers use the same ULEB128
//! encoding as the module format (`extsec_vm::wire`), and the decoder
//! follows the same discipline: every length is bounded *before* a byte
//! of it is read, every tag is validated, strings must be UTF-8, and a
//! payload must be consumed exactly — trailing bytes are an error. A
//! malformed or hostile frame can produce a [`ProtoError`], never a
//! panic or an attempt to allocate what the length prefix claims.
//!
//! The request set mirrors the monitor's read API: single [`Check`],
//! batched [`BatchCheck`] (the reason this protocol exists — one frame,
//! one snapshot pin, many decisions), [`List`], [`Explain`], and a
//! [`Telemetry`] pull. Version 2 adds the policy-bundle admin set:
//! [`LoadBundle`], [`Activate`], [`Shadow`], [`Rollback`], and
//! [`BundleStatus`]. Version 3 adds the audit admin pair:
//! [`AuditQuery`] (a filtered, bounded scan of the persisted audit
//! chain, answered with a binary page of records and declared gaps) and
//! [`AuditVerify`] (a chain-integrity re-derivation, answered with a
//! JSON report). Structured results (explanations, telemetry, bundle
//! status, verify reports) ride as JSON documents so they stay
//! debuggable with standard tooling; decisions and audit records, the
//! bulk paths, stay binary.
//!
//! Both message enums implement [`WireMessage`]: one `opcode()` /
//! `encode_payload()` / `decode_payload()` surface over a shared set of
//! ULEB128 and bounded-length combinators, so a new frame is a new match
//! arm against the combinators, never a new hand-rolled byte layout.
//!
//! [`Check`]: Request::Check
//! [`BatchCheck`]: Request::BatchCheck
//! [`List`]: Request::List
//! [`Explain`]: Request::Explain
//! [`Telemetry`]: Request::Telemetry
//! [`LoadBundle`]: Request::LoadBundle
//! [`Activate`]: Request::Activate
//! [`Shadow`]: Request::Shadow
//! [`Rollback`]: Request::Rollback
//! [`BundleStatus`]: Request::BundleStatus
//! [`AuditQuery`]: Request::AuditQuery
//! [`AuditVerify`]: Request::AuditVerify

use extsec_acl::{AccessMode, PrincipalId};
use extsec_mac::{CategoryId, CategorySet, SecurityClass, TrustLevel};
use extsec_namespace::NsPath;
use extsec_refmon::{
    AuditQuery, AuditRecord, BundleId, Decision, DenyReason, GapRange, Generation, Outcome,
    QueryResult, Subject, ThreadId,
};
use std::fmt;
use std::io::{self, Read, Write};

/// The protocol version carried in every frame header. Version 2 added
/// the policy-bundle admin frames; version 3 added the audit
/// query/verify pair.
pub const VERSION: u8 = 3;

/// Bytes in a frame header: version, opcode, and a `u32` payload length.
pub const HEADER_LEN: usize = 6;

/// Hard ceiling on a frame's payload length. The reader rejects larger
/// length prefixes before allocating, so a hostile header cannot trigger
/// a large allocation (the length-bomb guard, as in `vm::wire`).
pub const MAX_FRAME: u32 = 1 << 20;

/// Hard protocol ceiling on the number of items in one batch. Servers may
/// (and by default do) enforce a lower operational limit.
pub const MAX_BATCH: usize = 4096;

/// Ceiling on one path component or error message on the wire.
pub const MAX_STR: usize = 4096;

/// Ceiling on the number of components in one path.
pub const MAX_COMPONENTS: usize = 64;

/// Ceiling on the number of categories in one subject's class.
pub const MAX_CATEGORIES: usize = 4096;

/// Ceiling on the number of names in one listing response.
pub const MAX_LIST: usize = 1 << 16;

/// Ceiling on a policy-bundle source document on the wire.
pub const MAX_BUNDLE: usize = 1 << 16;

/// Ceiling on the number of audit records in one query-result frame —
/// the protocol-level mirror of the query API's own page cap
/// (`AuditQuery::MAX_LIMIT`).
pub const MAX_AUDIT_RECORDS: usize = 4096;

/// Ceiling on the number of declared gap ranges in one query-result
/// frame. Gaps are rare (each covers a whole shed burst), so this bound
/// is generous without admitting a length bomb.
pub const MAX_AUDIT_GAPS: usize = 1 << 16;

/// Request opcodes. Values are the wire bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; answered with `Pong`.
    Ping = 0x00,
    /// One access check.
    Check = 0x01,
    /// Many checks against one pinned snapshot.
    BatchCheck = 0x02,
    /// List the children of a container.
    List = 0x03,
    /// Full reasoning trace for one check.
    Explain = 0x04,
    /// Pull a combined monitor + server telemetry snapshot.
    Telemetry = 0x05,
    /// Stage a policy bundle from source text (admin).
    LoadBundle = 0x06,
    /// Activate a staged bundle in one atomic publish (admin).
    Activate = 0x07,
    /// Toggle shadow evaluation of a staged bundle (admin).
    Shadow = 0x08,
    /// Roll back to the most recent pre-activation snapshot (admin).
    Rollback = 0x09,
    /// Pull the bundle subsystem's status report (admin).
    BundleStatus = 0x0A,
    /// Filtered, bounded scan of the persisted audit chain (admin).
    AuditQuery = 0x0B,
    /// Re-derive the audit chain and report per-segment integrity
    /// (admin).
    AuditVerify = 0x0C,
}

impl Opcode {
    /// Every request opcode, in wire order.
    pub const ALL: [Opcode; 13] = [
        Opcode::Ping,
        Opcode::Check,
        Opcode::BatchCheck,
        Opcode::List,
        Opcode::Explain,
        Opcode::Telemetry,
        Opcode::LoadBundle,
        Opcode::Activate,
        Opcode::Shadow,
        Opcode::Rollback,
        Opcode::BundleStatus,
        Opcode::AuditQuery,
        Opcode::AuditVerify,
    ];

    /// Number of request opcodes (for per-opcode counter arrays).
    pub const COUNT: usize = Opcode::ALL.len();

    /// Decodes a wire byte, if it names a request opcode.
    pub fn from_u8(byte: u8) -> Option<Opcode> {
        Opcode::ALL.into_iter().find(|op| *op as u8 == byte)
    }

    /// A short stable name, for telemetry keys and logs.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Ping => "ping",
            Opcode::Check => "check",
            Opcode::BatchCheck => "batch-check",
            Opcode::List => "list",
            Opcode::Explain => "explain",
            Opcode::Telemetry => "telemetry",
            Opcode::LoadBundle => "load-bundle",
            Opcode::Activate => "activate",
            Opcode::Shadow => "shadow",
            Opcode::Rollback => "rollback",
            Opcode::BundleStatus => "bundle-status",
            Opcode::AuditQuery => "audit-query",
            Opcode::AuditVerify => "audit-verify",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// Response opcodes (high bit set, so the two spaces never collide).
const OP_PONG: u8 = 0x80;
const OP_DECISION: u8 = 0x81;
const OP_BATCH: u8 = 0x82;
const OP_LISTING: u8 = 0x83;
const OP_EXPLANATION: u8 = 0x84;
const OP_TELEMETRY: u8 = 0x85;
const OP_BUSY: u8 = 0x86;
const OP_BUNDLE_STAGED: u8 = 0x87;
const OP_GENERATION: u8 = 0x88;
const OP_BUNDLE_STATUS: u8 = 0x89;
const OP_AUDIT_EVENTS: u8 = 0x8A;
const OP_AUDIT_REPORT: u8 = 0x8B;
const OP_ERROR: u8 = 0xBF;

/// Every response opcode, in wire order. The header scanners use this to
/// refuse an unknown opcode byte before a payload byte is read.
const RESPONSE_OPCODES: [u8; 12] = [
    OP_PONG,
    OP_DECISION,
    OP_BATCH,
    OP_LISTING,
    OP_EXPLANATION,
    OP_TELEMETRY,
    OP_BUSY,
    OP_BUNDLE_STAGED,
    OP_GENERATION,
    OP_BUNDLE_STATUS,
    OP_AUDIT_EVENTS,
    OP_AUDIT_REPORT,
];

/// Whether a wire byte names a known request or response opcode.
fn known_opcode(byte: u8) -> bool {
    byte == OP_ERROR || Opcode::from_u8(byte).is_some() || RESPONSE_OPCODES.contains(&byte)
}

/// Error classes a server can answer with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame could not be decoded.
    Protocol = 0,
    /// The frame's version byte is not [`VERSION`].
    Version = 1,
    /// The opcode names no request.
    Opcode = 2,
    /// The payload length exceeds the server's frame limit.
    Oversize = 3,
    /// A batch exceeds the server's batch limit (the frame itself is
    /// well-formed; the connection stays open).
    BatchTooLarge = 4,
    /// The claimed subject's class is not valid in the server's lattice.
    InvalidSubject = 5,
    /// The operation itself was denied or failed (e.g. `list` on a path
    /// the subject may not see).
    Denied = 6,
    /// The server failed internally.
    Internal = 7,
    /// A bundle failed to parse or compile against the live policy (the
    /// frame itself is well-formed; the connection stays open).
    InvalidBundle = 8,
    /// A bundle's base generation no longer matches the active one:
    /// policy moved between staging and activation.
    GenerationConflict = 9,
    /// The server has no persistent audit pipeline attached, so audit
    /// queries and verification cannot be answered (the frame itself is
    /// well-formed; the connection stays open).
    AuditUnavailable = 10,
}

impl ErrorCode {
    /// Decodes a wire byte, if it names an error code.
    pub fn from_u8(byte: u8) -> Option<ErrorCode> {
        const ALL: [ErrorCode; 11] = [
            ErrorCode::Protocol,
            ErrorCode::Version,
            ErrorCode::Opcode,
            ErrorCode::Oversize,
            ErrorCode::BatchTooLarge,
            ErrorCode::InvalidSubject,
            ErrorCode::Denied,
            ErrorCode::Internal,
            ErrorCode::InvalidBundle,
            ErrorCode::GenerationConflict,
            ErrorCode::AuditUnavailable,
        ];
        ALL.into_iter().find(|c| *c as u8 == byte)
    }

    /// A short stable name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::Version => "version",
            ErrorCode::Opcode => "opcode",
            ErrorCode::Oversize => "oversize",
            ErrorCode::BatchTooLarge => "batch-too-large",
            ErrorCode::InvalidSubject => "invalid-subject",
            ErrorCode::Denied => "denied",
            ErrorCode::Internal => "internal",
            ErrorCode::InvalidBundle => "invalid-bundle",
            ErrorCode::GenerationConflict => "generation-conflict",
            ErrorCode::AuditUnavailable => "audit-unavailable",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Decode errors. Every variant is a refusal, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The frame header carries an unknown protocol version.
    BadVersion(u8),
    /// The opcode byte names neither a request nor a response.
    BadOpcode(u8),
    /// The payload ended before the structure it promised.
    Truncated,
    /// A length prefix exceeds its limit; carries the claimed length.
    Oversize(u64),
    /// A string is not valid UTF-8.
    BadUtf8,
    /// An enum tag byte is out of range.
    BadTag(u8),
    /// The payload has bytes left after its structure; carries the count.
    TrailingBytes(usize),
    /// The components do not form a valid path.
    BadPath(String),
    /// A count prefix exceeds its limit; carries the claimed count.
    TooMany(u64),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::Truncated => write!(f, "truncated payload"),
            ProtoError::Oversize(n) => write!(f, "length {n} exceeds limit"),
            ProtoError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            ProtoError::BadTag(t) => write!(f, "tag {t:#04x} out of range"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            ProtoError::BadPath(e) => write!(f, "invalid path: {e}"),
            ProtoError::TooMany(n) => write!(f, "count {n} exceeds limit"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// One item of a batched check.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchItem {
    /// The object path.
    pub path: NsPath,
    /// The requested mode.
    pub mode: AccessMode,
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// One access check.
    Check {
        /// The claimed subject (see the crate docs on the trust model).
        subject: Subject,
        /// The object path.
        path: NsPath,
        /// The requested mode.
        mode: AccessMode,
    },
    /// Many checks answered against one pinned snapshot.
    BatchCheck {
        /// The claimed subject, shared by every item.
        subject: Subject,
        /// The checks to run.
        items: Vec<BatchItem>,
    },
    /// List the children of the container at `path`.
    List {
        /// The claimed subject.
        subject: Subject,
        /// The container path.
        path: NsPath,
    },
    /// Full reasoning trace for one check.
    Explain {
        /// The claimed subject.
        subject: Subject,
        /// The object path.
        path: NsPath,
        /// The requested mode.
        mode: AccessMode,
    },
    /// Pull a combined monitor + server telemetry snapshot.
    Telemetry,
    /// Stage a policy bundle from source text (admin). Answered with
    /// [`Response::BundleStaged`] or a typed error
    /// ([`ErrorCode::InvalidBundle`]).
    LoadBundle {
        /// The bundle document in the `extsec_lang::bundle` dialect.
        source: String,
    },
    /// Activate a staged bundle: one atomic publish (admin). Answered
    /// with [`Response::BundleAck`], or [`ErrorCode::GenerationConflict`]
    /// when the bundle's base generation is stale.
    Activate {
        /// The handle `LoadBundle` returned.
        bundle: BundleId,
    },
    /// Toggle shadow evaluation of a staged bundle (admin). While on,
    /// checks are dual-evaluated and would-be flips counted; enforced
    /// decisions never change.
    Shadow {
        /// The handle `LoadBundle` returned (ignored when turning off).
        bundle: BundleId,
        /// `true` to enter shadow mode, `false` to leave it.
        on: bool,
    },
    /// Roll back to the most recent pre-activation snapshot (admin).
    Rollback,
    /// Pull the bundle subsystem's status report (admin).
    BundleStatus,
    /// Run a filtered, bounded scan over the persisted audit chain
    /// (admin). Answered with [`Response::AuditEvents`], or
    /// [`ErrorCode::AuditUnavailable`] when no pipeline is attached.
    AuditQuery {
        /// The filters and page bounds, verbatim from the query API.
        query: AuditQuery,
    },
    /// Re-derive the persisted audit chain and report per-segment
    /// integrity (admin). Answered with [`Response::AuditReport`], or
    /// [`ErrorCode::AuditUnavailable`] when no pipeline is attached.
    AuditVerify,
}

/// The typed wire codec surface shared by [`Request`] and [`Response`]:
/// an opcode byte plus a payload codec built from the module's shared
/// ULEB128 and bounded-length combinators. `encode()` is provided — it
/// frames the payload under the message's opcode — so a new message kind
/// only ever supplies the three primitives.
pub trait WireMessage: Sized {
    /// The wire opcode byte this message is framed under.
    fn opcode_byte(&self) -> u8;

    /// Appends the payload bytes (no header) to `buf`.
    fn encode_payload(&self, buf: &mut Vec<u8>);

    /// Decodes a payload for `opcode`. Implementations must consume the
    /// payload exactly and refuse unknown opcodes with
    /// [`ProtoError::BadOpcode`] carrying the byte.
    fn decode_payload(opcode: u8, payload: &[u8]) -> Result<Self, ProtoError>;

    /// Encodes the complete frame: header plus payload.
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        self.encode_payload(&mut payload);
        frame(self.opcode_byte(), &payload)
    }
}

impl Request {
    /// This request's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Ping => Opcode::Ping,
            Request::Check { .. } => Opcode::Check,
            Request::BatchCheck { .. } => Opcode::BatchCheck,
            Request::List { .. } => Opcode::List,
            Request::Explain { .. } => Opcode::Explain,
            Request::Telemetry => Opcode::Telemetry,
            Request::LoadBundle { .. } => Opcode::LoadBundle,
            Request::Activate { .. } => Opcode::Activate,
            Request::Shadow { .. } => Opcode::Shadow,
            Request::Rollback => Opcode::Rollback,
            Request::BundleStatus => Opcode::BundleStatus,
            Request::AuditQuery { .. } => Opcode::AuditQuery,
            Request::AuditVerify => Opcode::AuditVerify,
        }
    }

    /// Encodes the complete frame: header plus payload.
    pub fn encode(&self) -> Vec<u8> {
        WireMessage::encode(self)
    }

    /// Decodes a request payload for `opcode`.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Request, ProtoError> {
        Request::decode_payload(opcode, payload)
    }
}

impl WireMessage for Request {
    fn opcode_byte(&self) -> u8 {
        self.opcode() as u8
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        let mut enc = Enc::new(buf);
        match self {
            Request::Ping
            | Request::Telemetry
            | Request::Rollback
            | Request::BundleStatus
            | Request::AuditVerify => {}
            Request::Check {
                subject,
                path,
                mode,
            }
            | Request::Explain {
                subject,
                path,
                mode,
            } => {
                enc.subject(subject);
                enc.path(path);
                enc.mode(*mode);
            }
            Request::BatchCheck { subject, items } => {
                enc.subject(subject);
                enc.uleb(items.len() as u64);
                for item in items {
                    enc.path(&item.path);
                    enc.mode(item.mode);
                }
            }
            Request::List { subject, path } => {
                enc.subject(subject);
                enc.path(path);
            }
            Request::LoadBundle { source } => enc.str(source),
            Request::Activate { bundle } => enc.uleb(bundle.raw()),
            Request::Shadow { bundle, on } => {
                enc.uleb(bundle.raw());
                enc.u8(u8::from(*on));
            }
            Request::AuditQuery { query } => enc.audit_query(query),
        }
    }

    fn decode_payload(opcode: u8, payload: &[u8]) -> Result<Request, ProtoError> {
        let op = Opcode::from_u8(opcode).ok_or(ProtoError::BadOpcode(opcode))?;
        let mut dec = Dec::new(payload);
        let req = match op {
            Opcode::Ping => Request::Ping,
            Opcode::Telemetry => Request::Telemetry,
            Opcode::Rollback => Request::Rollback,
            Opcode::BundleStatus => Request::BundleStatus,
            Opcode::Check => Request::Check {
                subject: dec.subject()?,
                path: dec.path()?,
                mode: dec.mode()?,
            },
            Opcode::Explain => Request::Explain {
                subject: dec.subject()?,
                path: dec.path()?,
                mode: dec.mode()?,
            },
            Opcode::BatchCheck => {
                let subject = dec.subject()?;
                let count = dec.count(MAX_BATCH)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(BatchItem {
                        path: dec.path()?,
                        mode: dec.mode()?,
                    });
                }
                Request::BatchCheck { subject, items }
            }
            Opcode::List => Request::List {
                subject: dec.subject()?,
                path: dec.path()?,
            },
            Opcode::LoadBundle => Request::LoadBundle {
                source: dec.str(MAX_BUNDLE)?,
            },
            Opcode::Activate => Request::Activate {
                bundle: BundleId::from_raw(dec.uleb()?),
            },
            Opcode::Shadow => Request::Shadow {
                bundle: BundleId::from_raw(dec.uleb()?),
                on: dec.flag()?,
            },
            Opcode::AuditQuery => Request::AuditQuery {
                query: dec.audit_query()?,
            },
            Opcode::AuditVerify => Request::AuditVerify,
        };
        dec.finish()?;
        Ok(req)
    }
}

/// A server-to-client message. Each request frame is answered by exactly
/// one response frame, in order.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to `Ping`.
    Pong,
    /// Answer to `Check`.
    Decision(Decision),
    /// Answer to `BatchCheck`; one decision per item, in item order, all
    /// from the same snapshot.
    Batch(Vec<Decision>),
    /// Answer to `List`.
    Listing(Vec<String>),
    /// Answer to `Explain`: a JSON document of the monitor's
    /// `Explanation`.
    Explanation(String),
    /// Answer to `Telemetry`: a JSON document with `monitor` and
    /// `server` members.
    Telemetry(String),
    /// The server is saturated and sheds this connection (or request)
    /// instead of serving it. Unlike an [`Error`](Response::Error), this
    /// is an explicit invitation to retry: the client should back off
    /// for at least `retry_after_ms` and reconnect.
    Busy {
        /// Suggested minimum backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// Answer to `LoadBundle`: the staged bundle's handle and the base
    /// generation it was pinned to.
    BundleStaged {
        /// The handle to activate or shadow the bundle by.
        bundle: BundleId,
        /// The resolved base generation (a `base current` header resolves
        /// at stage time).
        base: Generation,
    },
    /// Answer to `Activate`, `Shadow`, and `Rollback`: the generation
    /// active once the publish landed.
    BundleAck {
        /// The now-active policy generation.
        generation: Generation,
    },
    /// Answer to `BundleStatus`: a JSON document of the monitor's
    /// `BundleStatusReport`.
    BundleStatus(String),
    /// Answer to `AuditQuery`: one binary page of matching records and
    /// the declared shed gaps overlapping the queried window, plus the
    /// pagination cursor.
    AuditEvents(QueryResult),
    /// Answer to `AuditVerify`: a JSON document of the audit pipeline's
    /// `VerifyReport` (per-segment chain-integrity verdicts).
    AuditReport(String),
    /// Any request may be refused with an error instead.
    Error {
        /// The error class.
        code: ErrorCode,
        /// A human-readable description.
        message: String,
    },
}

impl Response {
    /// This response's wire opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            Response::Pong => OP_PONG,
            Response::Decision(_) => OP_DECISION,
            Response::Batch(_) => OP_BATCH,
            Response::Listing(_) => OP_LISTING,
            Response::Explanation(_) => OP_EXPLANATION,
            Response::Telemetry(_) => OP_TELEMETRY,
            Response::Busy { .. } => OP_BUSY,
            Response::BundleStaged { .. } => OP_BUNDLE_STAGED,
            Response::BundleAck { .. } => OP_GENERATION,
            Response::BundleStatus(_) => OP_BUNDLE_STATUS,
            Response::AuditEvents(_) => OP_AUDIT_EVENTS,
            Response::AuditReport(_) => OP_AUDIT_REPORT,
            Response::Error { .. } => OP_ERROR,
        }
    }

    /// Encodes the complete frame: header plus payload.
    pub fn encode(&self) -> Vec<u8> {
        WireMessage::encode(self)
    }

    /// Decodes a response payload for `opcode`.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Response, ProtoError> {
        Response::decode_payload(opcode, payload)
    }
}

impl WireMessage for Response {
    fn opcode_byte(&self) -> u8 {
        self.opcode()
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        let mut enc = Enc::new(buf);
        match self {
            Response::Pong => {}
            Response::Decision(decision) => enc.decision(decision),
            Response::Batch(decisions) => {
                enc.uleb(decisions.len() as u64);
                for decision in decisions {
                    enc.decision(decision);
                }
            }
            Response::Listing(names) => {
                enc.uleb(names.len() as u64);
                for name in names {
                    enc.str(name);
                }
            }
            Response::Explanation(json)
            | Response::Telemetry(json)
            | Response::BundleStatus(json)
            | Response::AuditReport(json) => enc.str(json),
            Response::AuditEvents(result) => enc.audit_result(result),
            Response::Busy { retry_after_ms } => enc.uleb(*retry_after_ms),
            Response::BundleStaged { bundle, base } => {
                enc.uleb(bundle.raw());
                enc.uleb(base.raw());
            }
            Response::BundleAck { generation } => enc.uleb(generation.raw()),
            Response::Error { code, message } => {
                enc.u8(*code as u8);
                enc.str(message);
            }
        }
    }

    fn decode_payload(opcode: u8, payload: &[u8]) -> Result<Response, ProtoError> {
        let mut dec = Dec::new(payload);
        let resp = match opcode {
            OP_PONG => Response::Pong,
            OP_DECISION => Response::Decision(dec.decision()?),
            OP_BATCH => {
                let count = dec.count(MAX_BATCH)?;
                let mut decisions = Vec::with_capacity(count);
                for _ in 0..count {
                    decisions.push(dec.decision()?);
                }
                Response::Batch(decisions)
            }
            OP_LISTING => {
                let count = dec.count(MAX_LIST)?;
                let mut names = Vec::with_capacity(count);
                for _ in 0..count {
                    names.push(dec.str(MAX_STR)?);
                }
                Response::Listing(names)
            }
            OP_EXPLANATION => Response::Explanation(dec.str(MAX_FRAME as usize)?),
            OP_TELEMETRY => Response::Telemetry(dec.str(MAX_FRAME as usize)?),
            OP_BUSY => Response::Busy {
                retry_after_ms: dec.uleb()?,
            },
            OP_BUNDLE_STAGED => Response::BundleStaged {
                bundle: BundleId::from_raw(dec.uleb()?),
                base: Generation::from_raw(dec.uleb()?),
            },
            OP_GENERATION => Response::BundleAck {
                generation: Generation::from_raw(dec.uleb()?),
            },
            OP_BUNDLE_STATUS => Response::BundleStatus(dec.str(MAX_FRAME as usize)?),
            OP_AUDIT_EVENTS => Response::AuditEvents(dec.audit_result()?),
            OP_AUDIT_REPORT => Response::AuditReport(dec.str(MAX_FRAME as usize)?),
            OP_ERROR => {
                let byte = dec.u8()?;
                let code = ErrorCode::from_u8(byte).ok_or(ProtoError::BadTag(byte))?;
                let message = dec.str(MAX_STR)?;
                Response::Error { code, message }
            }
            other => return Err(ProtoError::BadOpcode(other)),
        };
        dec.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Payload codec: the shared combinators behind every WireMessage.

/// Wraps an already-encoded payload in a frame header.
fn frame(opcode: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.push(VERSION);
    frame.push(opcode);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// The encoding combinators, borrowing the caller's buffer so nested
/// structures compose without copies.
struct Enc<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Enc<'a> {
    fn new(buf: &'a mut Vec<u8>) -> Self {
        Enc { buf }
    }

    fn u8(&mut self, byte: u8) {
        self.buf.push(byte);
    }

    fn uleb(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    fn str(&mut self, s: &str) {
        self.uleb(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn mode(&mut self, mode: AccessMode) {
        self.u8(mode as u8);
    }

    fn subject(&mut self, subject: &Subject) {
        self.uleb(u64::from(subject.principal.raw()));
        self.uleb(subject.thread.raw());
        self.uleb(u64::from(subject.class.level().rank()));
        let cats: Vec<CategoryId> = subject.class.categories().iter().collect();
        self.uleb(cats.len() as u64);
        for cat in cats {
            self.uleb(u64::from(cat.index()));
        }
    }

    fn path(&mut self, path: &NsPath) {
        let components = path.components();
        self.uleb(components.len() as u64);
        for component in components {
            self.str(component);
        }
    }

    /// An optional unsigned integer: a presence flag, then the value.
    fn opt_uleb(&mut self, value: Option<u64>) {
        match value {
            Some(v) => {
                self.u8(1);
                self.uleb(v);
            }
            None => self.u8(0),
        }
    }

    fn audit_query(&mut self, query: &AuditQuery) {
        self.opt_uleb(query.principal.map(u64::from));
        match &query.path_prefix {
            Some(prefix) => {
                self.u8(1);
                self.str(prefix);
            }
            None => self.u8(0),
        }
        match query.outcome {
            Some(outcome) => {
                self.u8(1);
                self.u8(outcome as u8);
            }
            None => self.u8(0),
        }
        self.uleb(query.seq_min);
        self.opt_uleb(query.seq_max);
        self.uleb(u64::from(query.limit));
    }

    fn audit_record(&mut self, record: &AuditRecord) {
        self.uleb(record.seq);
        self.uleb(u64::from(record.principal));
        self.uleb(record.generation);
        self.u8(record.mode);
        self.u8(record.outcome as u8);
        self.str(&record.path);
    }

    fn audit_result(&mut self, result: &QueryResult) {
        self.uleb(result.records.len() as u64);
        for record in &result.records {
            self.audit_record(record);
        }
        self.uleb(result.gaps.len() as u64);
        for gap in &result.gaps {
            self.uleb(gap.first);
            self.uleb(gap.last);
        }
        self.u8(u8::from(result.truncated));
        self.uleb(result.next_seq);
    }

    fn decision(&mut self, decision: &Decision) {
        match decision {
            Decision::Allow => self.u8(0x00),
            Decision::Deny(reason) => {
                self.u8(0x01);
                match reason {
                    DenyReason::DacNoEntry => self.u8(0),
                    DenyReason::DacNegativeEntry(index) => {
                        self.u8(1);
                        self.uleb(*index as u64);
                    }
                    DenyReason::MacFlow => self.u8(2),
                    DenyReason::NotVisibleDac(path) => {
                        self.u8(3);
                        self.path(path);
                    }
                    DenyReason::NotVisibleMac(path) => {
                        self.u8(4);
                        self.path(path);
                    }
                    DenyReason::NotFound(path) => {
                        self.u8(5);
                        self.path(path);
                    }
                    DenyReason::Structure(message) => {
                        self.u8(6);
                        self.str(message);
                    }
                }
            }
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        let byte = *self.buf.get(self.pos).ok_or(ProtoError::Truncated)?;
        self.pos += 1;
        Ok(byte)
    }

    fn uleb(&mut self) -> Result<u64, ProtoError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(ProtoError::Oversize(u64::MAX));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(ProtoError::Oversize(u64::MAX));
            }
        }
    }

    /// Reads a count prefix, bounded by `max` before any allocation.
    fn count(&mut self, max: usize) -> Result<usize, ProtoError> {
        let count = self.uleb()?;
        if count > max as u64 {
            return Err(ProtoError::TooMany(count));
        }
        Ok(count as usize)
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(len).ok_or(ProtoError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(ProtoError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn str(&mut self, max: usize) -> Result<String, ProtoError> {
        let len = self.uleb()?;
        if len > max as u64 {
            return Err(ProtoError::Oversize(len));
        }
        let bytes = self.bytes(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn mode(&mut self) -> Result<AccessMode, ProtoError> {
        let byte = self.u8()?;
        AccessMode::ALL
            .get(byte as usize)
            .copied()
            .ok_or(ProtoError::BadTag(byte))
    }

    /// A strict boolean byte: anything but 0 or 1 is a bad tag.
    fn flag(&mut self) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(ProtoError::BadTag(tag)),
        }
    }

    fn subject(&mut self) -> Result<Subject, ProtoError> {
        let principal = self.uleb()?;
        if principal > u64::from(u32::MAX) {
            return Err(ProtoError::Oversize(principal));
        }
        let thread = self.uleb()?;
        let rank = self.uleb()?;
        if rank > u64::from(u16::MAX) {
            return Err(ProtoError::Oversize(rank));
        }
        let count = self.count(MAX_CATEGORIES)?;
        let mut categories = Vec::with_capacity(count);
        for _ in 0..count {
            let index = self.uleb()?;
            if index > u64::from(u16::MAX) {
                return Err(ProtoError::Oversize(index));
            }
            categories.push(CategoryId::from_index(index as u16));
        }
        let class = SecurityClass::new(
            TrustLevel::from_rank(rank as u16),
            CategorySet::from_ids(categories),
        );
        Ok(Subject::on_thread(
            PrincipalId::from_raw(principal as u32),
            class,
            ThreadId::from_raw(thread),
        ))
    }

    fn path(&mut self) -> Result<NsPath, ProtoError> {
        let count = self.count(MAX_COMPONENTS)?;
        let mut components = Vec::with_capacity(count);
        for _ in 0..count {
            components.push(self.str(MAX_STR)?);
        }
        NsPath::from_components(components).map_err(|e| ProtoError::BadPath(e.to_string()))
    }

    /// An optional unsigned integer: a strict presence flag, then the
    /// value.
    fn opt_uleb(&mut self) -> Result<Option<u64>, ProtoError> {
        Ok(if self.flag()? {
            Some(self.uleb()?)
        } else {
            None
        })
    }

    fn audit_query(&mut self) -> Result<AuditQuery, ProtoError> {
        let principal = match self.opt_uleb()? {
            Some(raw) if raw > u64::from(u32::MAX) => return Err(ProtoError::Oversize(raw)),
            Some(raw) => Some(raw as u32),
            None => None,
        };
        let path_prefix = if self.flag()? {
            Some(self.str(MAX_STR)?)
        } else {
            None
        };
        let outcome = if self.flag()? {
            let byte = self.u8()?;
            Some(Outcome::from_u8(byte).ok_or(ProtoError::BadTag(byte))?)
        } else {
            None
        };
        let seq_min = self.uleb()?;
        let seq_max = self.opt_uleb()?;
        let limit = self.uleb()?;
        if limit > u64::from(u32::MAX) {
            return Err(ProtoError::Oversize(limit));
        }
        Ok(AuditQuery {
            principal,
            path_prefix,
            outcome,
            seq_min,
            seq_max,
            limit: limit as u32,
        })
    }

    fn audit_record(&mut self) -> Result<AuditRecord, ProtoError> {
        let seq = self.uleb()?;
        let principal = self.uleb()?;
        if principal > u64::from(u32::MAX) {
            return Err(ProtoError::Oversize(principal));
        }
        let generation = self.uleb()?;
        let mode = self.u8()?;
        let outcome_byte = self.u8()?;
        let outcome = Outcome::from_u8(outcome_byte).ok_or(ProtoError::BadTag(outcome_byte))?;
        let path = self.str(MAX_STR)?;
        Ok(AuditRecord {
            seq,
            principal: principal as u32,
            generation,
            mode,
            outcome,
            path,
        })
    }

    fn audit_result(&mut self) -> Result<QueryResult, ProtoError> {
        let count = self.count(MAX_AUDIT_RECORDS)?;
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            records.push(self.audit_record()?);
        }
        let count = self.count(MAX_AUDIT_GAPS)?;
        let mut gaps = Vec::with_capacity(count);
        for _ in 0..count {
            gaps.push(GapRange {
                first: self.uleb()?,
                last: self.uleb()?,
            });
        }
        let truncated = self.flag()?;
        let next_seq = self.uleb()?;
        Ok(QueryResult {
            records,
            gaps,
            truncated,
            next_seq,
        })
    }

    fn decision(&mut self) -> Result<Decision, ProtoError> {
        match self.u8()? {
            0x00 => Ok(Decision::Allow),
            0x01 => {
                let reason = match self.u8()? {
                    0 => DenyReason::DacNoEntry,
                    1 => {
                        let index = self.uleb()?;
                        let index =
                            usize::try_from(index).map_err(|_| ProtoError::Oversize(index))?;
                        DenyReason::DacNegativeEntry(index)
                    }
                    2 => DenyReason::MacFlow,
                    3 => DenyReason::NotVisibleDac(self.path()?),
                    4 => DenyReason::NotVisibleMac(self.path()?),
                    5 => DenyReason::NotFound(self.path()?),
                    6 => DenyReason::Structure(self.str(MAX_STR)?),
                    tag => return Err(ProtoError::BadTag(tag)),
                };
                Ok(Decision::Deny(reason))
            }
            tag => Err(ProtoError::BadTag(tag)),
        }
    }

    /// Asserts the payload was consumed exactly.
    fn finish(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(self.buf.len() - self.pos))
        }
    }
}

// ---------------------------------------------------------------------
// Framed IO.

/// One frame off the wire: the opcode byte and the raw payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The opcode byte (request or response space).
    pub opcode: u8,
    /// The payload, at most the reader's frame limit.
    pub payload: Vec<u8>,
}

/// What reading a frame can produce besides a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// The read timed out *between* frames — no bytes consumed; the
    /// caller may poll a shutdown flag and try again.
    Idle,
    /// The transport failed (including timeouts mid-frame).
    Io(io::Error),
    /// The bytes violate the protocol.
    Proto(ProtoError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Idle => write!(f, "idle (no frame before the read timeout)"),
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::Proto(e) => write!(f, "protocol: {e}"),
        }
    }
}

fn is_timeout(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Reads one frame.
///
/// The first header byte is read on its own so a clean close ([`Eof`])
/// and an idle timeout ([`Idle`]) are distinguishable from a peer that
/// dies mid-frame (an [`Io`] or [`Proto`] error). The length prefix is
/// validated against `max_frame` before the payload is allocated.
///
/// [`Eof`]: FrameError::Eof
/// [`Idle`]: FrameError::Idle
/// [`Io`]: FrameError::Io
/// [`Proto`]: FrameError::Proto
pub fn read_frame(reader: &mut impl Read, max_frame: u32) -> Result<Frame, FrameError> {
    let mut first = [0u8; 1];
    loop {
        match reader.read(&mut first) {
            Ok(0) => return Err(FrameError::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(e.kind()) => return Err(FrameError::Idle),
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if first[0] != VERSION {
        return Err(FrameError::Proto(ProtoError::BadVersion(first[0])));
    }
    let mut rest = [0u8; 5];
    read_exact_frame(reader, &mut rest)?;
    let opcode = rest[0];
    // An unknown opcode is refused at the header — before the payload is
    // allocated or read — so it cannot silently desynchronize the stream.
    if !known_opcode(opcode) {
        return Err(FrameError::Proto(ProtoError::BadOpcode(opcode)));
    }
    let len = u32::from_le_bytes([rest[1], rest[2], rest[3], rest[4]]);
    if len > max_frame {
        return Err(FrameError::Proto(ProtoError::Oversize(u64::from(len))));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_frame(reader, &mut payload)?;
    Ok(Frame { opcode, payload })
}

/// `read_exact` with mid-frame errors mapped: a peer that stops mid-frame
/// is a protocol violation ([`ProtoError::Truncated`]), not a clean EOF.
fn read_exact_frame(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    match reader.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            Err(FrameError::Proto(ProtoError::Truncated))
        }
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// Writes one already-encoded frame.
pub fn write_frame(writer: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    writer.write_all(frame)?;
    writer.flush()
}

/// What scanning a reassembly buffer for one frame found.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameScan {
    /// A complete frame sits at the front of the buffer: the opcode, the
    /// byte range of the payload within the buffer, and the total bytes
    /// the frame occupies (header included).
    Complete {
        /// The opcode byte (request or response space).
        opcode: u8,
        /// Payload start offset (always [`HEADER_LEN`]).
        payload_start: usize,
        /// Total frame length in bytes: header plus payload.
        consumed: usize,
    },
    /// The buffer holds a prefix of a frame; more bytes are needed.
    Partial,
}

/// Scans the front of `buf` for one complete frame without consuming or
/// copying anything — the non-blocking counterpart of [`read_frame`],
/// with the identical validation order: version byte first (so a bad
/// peer is refused on its first byte), then the opcode byte, then the
/// length prefix against `max_frame` — all *before* the payload is
/// awaited.
pub fn scan_frame(buf: &[u8], max_frame: u32) -> Result<FrameScan, ProtoError> {
    let Some(&version) = buf.first() else {
        return Ok(FrameScan::Partial);
    };
    if version != VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    if buf.len() < HEADER_LEN {
        return Ok(FrameScan::Partial);
    }
    let opcode = buf[1];
    // Same discipline as `read_frame`: an unknown opcode is refused at
    // the header, before any payload byte is awaited.
    if !known_opcode(opcode) {
        return Err(ProtoError::BadOpcode(opcode));
    }
    let len = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]);
    if len > max_frame {
        return Err(ProtoError::Oversize(u64::from(len)));
    }
    let consumed = HEADER_LEN + len as usize;
    if buf.len() < consumed {
        return Ok(FrameScan::Partial);
    }
    Ok(FrameScan::Complete {
        opcode,
        payload_start: HEADER_LEN,
        consumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subject() -> Subject {
        Subject::on_thread(
            PrincipalId::from_raw(7),
            SecurityClass::new(
                TrustLevel::from_rank(2),
                CategorySet::from_ids([CategoryId::from_index(0), CategoryId::from_index(3)]),
            ),
            ThreadId::from_raw(99),
        )
    }

    fn roundtrip_request(req: Request) {
        let frame = req.encode();
        assert_eq!(frame[0], VERSION);
        let parsed = read_frame(&mut &frame[..], MAX_FRAME).unwrap();
        assert_eq!(parsed.opcode, req.opcode() as u8);
        assert_eq!(
            Request::decode(parsed.opcode, &parsed.payload).unwrap(),
            req
        );
    }

    fn roundtrip_response(resp: Response) {
        let frame = resp.encode();
        let parsed = read_frame(&mut &frame[..], MAX_FRAME).unwrap();
        assert_eq!(parsed.opcode, resp.opcode());
        assert_eq!(
            Response::decode(parsed.opcode, &parsed.payload).unwrap(),
            resp
        );
    }

    /// One sample request per opcode, covering all of [`Opcode::ALL`].
    fn sample_requests() -> Vec<Request> {
        let path: NsPath = "/svc/fs/read".parse().unwrap();
        vec![
            Request::Ping,
            Request::Check {
                subject: subject(),
                path: path.clone(),
                mode: AccessMode::Execute,
            },
            Request::BatchCheck {
                subject: subject(),
                items: AccessMode::ALL
                    .into_iter()
                    .map(|mode| BatchItem {
                        path: path.clone(),
                        mode,
                    })
                    .collect(),
            },
            Request::List {
                subject: subject(),
                path: path.clone(),
            },
            Request::Explain {
                subject: subject(),
                path,
                mode: AccessMode::Read,
            },
            Request::Telemetry,
            Request::LoadBundle {
                source: "bundle \"b\" version 1 base current;".into(),
            },
            Request::Activate {
                bundle: BundleId::from_raw(7),
            },
            Request::Shadow {
                bundle: BundleId::from_raw(7),
                on: true,
            },
            Request::Rollback,
            Request::BundleStatus,
            Request::AuditQuery {
                query: AuditQuery {
                    principal: Some(7),
                    path_prefix: Some("/svc/fs".into()),
                    outcome: Some(Outcome::MacFlow),
                    seq_min: 10,
                    seq_max: Some(500),
                    limit: 64,
                },
            },
            Request::AuditVerify,
        ]
    }

    #[test]
    fn requests_round_trip() {
        let samples = sample_requests();
        // Every request opcode is exercised, none twice.
        let mut seen: Vec<Opcode> = samples.iter().map(Request::opcode).collect();
        seen.sort_by_key(|op| *op as u8);
        seen.dedup();
        assert_eq!(seen.len(), Opcode::COUNT);
        for req in samples {
            roundtrip_request(req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let path: NsPath = "/a/b".parse().unwrap();
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Decision(Decision::Allow));
        roundtrip_response(Response::Batch(vec![
            Decision::Allow,
            Decision::Deny(DenyReason::DacNoEntry),
            Decision::Deny(DenyReason::DacNegativeEntry(4)),
            Decision::Deny(DenyReason::MacFlow),
            Decision::Deny(DenyReason::NotVisibleDac(path.clone())),
            Decision::Deny(DenyReason::NotVisibleMac(path.clone())),
            Decision::Deny(DenyReason::NotFound(path.clone())),
            Decision::Deny(DenyReason::Structure("loop".into())),
        ]));
        roundtrip_response(Response::Listing(vec!["read".into(), "write".into()]));
        roundtrip_response(Response::Explanation("{\"steps\":[]}".into()));
        roundtrip_response(Response::Telemetry("{}".into()));
        roundtrip_response(Response::Busy {
            retry_after_ms: 250,
        });
        roundtrip_response(Response::BundleStaged {
            bundle: BundleId::from_raw(3),
            base: Generation::from_raw(17),
        });
        roundtrip_response(Response::BundleAck {
            generation: Generation::from_raw(18),
        });
        roundtrip_response(Response::BundleStatus("{\"staged\":[]}".into()));
        roundtrip_response(Response::AuditEvents(QueryResult {
            records: vec![
                AuditRecord {
                    seq: 0,
                    principal: 7,
                    generation: 1,
                    mode: 0,
                    outcome: Outcome::Allow,
                    path: "/svc/fs/read".into(),
                },
                AuditRecord {
                    seq: 9,
                    principal: u32::MAX,
                    generation: u64::MAX,
                    mode: 3,
                    outcome: Outcome::Structure,
                    path: "/".into(),
                },
            ],
            gaps: vec![GapRange { first: 1, last: 8 }],
            truncated: true,
            next_seq: 10,
        }));
        roundtrip_response(Response::AuditEvents(QueryResult::default()));
        roundtrip_response(Response::AuditReport("{\"ok\":true}".into()));
        for code in [
            ErrorCode::Denied,
            ErrorCode::InvalidBundle,
            ErrorCode::GenerationConflict,
            ErrorCode::AuditUnavailable,
        ] {
            roundtrip_response(Response::Error {
                code,
                message: "refused".into(),
            });
        }
    }

    #[test]
    fn unknown_opcode_is_refused_at_the_header() {
        // 0x3F names no request; 0xA0 names no response. Both scanners
        // must answer with the typed error carrying the byte, before any
        // payload is read.
        for bad in [0x3Fu8, 0xA0] {
            let frame = frame(bad, &[]);
            match read_frame(&mut &frame[..], MAX_FRAME) {
                Err(FrameError::Proto(ProtoError::BadOpcode(byte))) => assert_eq!(byte, bad),
                other => panic!("expected bad opcode, got {other:?}"),
            }
            match scan_frame(&frame, MAX_FRAME) {
                Err(ProtoError::BadOpcode(byte)) => assert_eq!(byte, bad),
                other => panic!("expected bad opcode, got {other:?}"),
            }
        }
        // Decoders refuse the same way even when handed a payload.
        assert_eq!(Request::decode(0x3F, &[]), Err(ProtoError::BadOpcode(0x3F)));
        assert_eq!(
            Response::decode(0xA0, &[]),
            Err(ProtoError::BadOpcode(0xA0))
        );
    }

    #[test]
    fn oversize_length_prefix_is_rejected_before_allocation() {
        // Header claims a 256 MiB payload; the reader must refuse at the
        // header, not try to read (or allocate) the payload.
        let mut frame = vec![VERSION, Opcode::Ping as u8];
        frame.extend_from_slice(&(256u32 << 20).to_le_bytes());
        match read_frame(&mut &frame[..], MAX_FRAME) {
            Err(FrameError::Proto(ProtoError::Oversize(_))) => {}
            other => panic!("expected oversize, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_is_rejected_on_the_first_byte() {
        let frame = [9u8, 0, 0, 0, 0, 0];
        match read_frame(&mut &frame[..], MAX_FRAME) {
            Err(FrameError::Proto(ProtoError::BadVersion(9))) => {}
            other => panic!("expected bad version, got {other:?}"),
        }
    }

    #[test]
    fn audit_result_counts_are_bounded() {
        // A hand-built AuditEvents payload claiming u32::MAX records must
        // be refused on the count prefix, before any allocation.
        let mut payload = Vec::new();
        Enc::new(&mut payload).uleb(u64::from(u32::MAX));
        match Response::decode(OP_AUDIT_EVENTS, &payload) {
            Err(ProtoError::TooMany(_)) => {}
            other => panic!("expected too-many, got {other:?}"),
        }
        // Same for the gap-range count behind an empty record list.
        let mut payload = Vec::new();
        let mut enc = Enc::new(&mut payload);
        enc.uleb(0);
        enc.uleb(u64::from(u32::MAX));
        match Response::decode(OP_AUDIT_EVENTS, &payload) {
            Err(ProtoError::TooMany(_)) => {}
            other => panic!("expected too-many, got {other:?}"),
        }
        // An out-of-range outcome byte is a bad tag, not a panic.
        let mut payload = Vec::new();
        let mut enc = Enc::new(&mut payload);
        enc.uleb(1); // one record
        enc.uleb(0); // seq
        enc.uleb(0); // principal
        enc.uleb(0); // generation
        enc.u8(0); // mode
        enc.u8(0xEE); // outcome: out of range
        match Response::decode(OP_AUDIT_EVENTS, &payload) {
            Err(ProtoError::BadTag(0xEE)) => {}
            other => panic!("expected bad tag, got {other:?}"),
        }
    }

    #[test]
    fn batch_count_is_bounded() {
        // A hand-built BatchCheck payload claiming u32::MAX items.
        let mut payload = Vec::new();
        let mut enc = Enc::new(&mut payload);
        enc.subject(&subject());
        enc.uleb(u64::from(u32::MAX));
        match Request::decode(Opcode::BatchCheck as u8, &payload) {
            Err(ProtoError::TooMany(_)) => {}
            other => panic!("expected too-many, got {other:?}"),
        }
    }

    #[test]
    fn scan_frame_agrees_with_read_frame() {
        // Complete frame at the front: the scan names the same opcode and
        // payload bytes the blocking reader would produce.
        let frame = Request::Ping.encode();
        let mut buf = frame.clone();
        buf.extend_from_slice(&frame); // a second pipelined frame behind it
        match scan_frame(&buf, MAX_FRAME).unwrap() {
            FrameScan::Complete {
                opcode,
                payload_start,
                consumed,
            } => {
                let read = read_frame(&mut &frame[..], MAX_FRAME).unwrap();
                assert_eq!(opcode, read.opcode);
                assert_eq!(&buf[payload_start..consumed], &read.payload[..]);
                assert_eq!(consumed, frame.len());
            }
            other => panic!("expected a complete frame, got {other:?}"),
        }
        // Every strict prefix scans as partial.
        for cut in 0..frame.len() {
            assert_eq!(
                scan_frame(&frame[..cut], MAX_FRAME).unwrap(),
                FrameScan::Partial
            );
        }
        // Bad version refused on the first byte, oversize on the header.
        assert!(matches!(
            scan_frame(&[9u8], MAX_FRAME),
            Err(ProtoError::BadVersion(9))
        ));
        let mut oversize = vec![VERSION, Opcode::Ping as u8];
        oversize.extend_from_slice(&(256u32 << 20).to_le_bytes());
        assert!(matches!(
            scan_frame(&oversize, MAX_FRAME),
            Err(ProtoError::Oversize(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = Request::Ping.encode();
        frame[2..6].copy_from_slice(&1u32.to_le_bytes());
        frame.push(0xEE);
        let parsed = read_frame(&mut &frame[..], MAX_FRAME).unwrap();
        match Request::decode(parsed.opcode, &parsed.payload) {
            Err(ProtoError::TrailingBytes(1)) => {}
            other => panic!("expected trailing bytes, got {other:?}"),
        }
    }
}
