//! The networked name-server front end.
//!
//! The paper's architecture puts one reference monitor behind one name
//! server and routes *every* access through it (§2.3). This crate puts
//! that facility on the wire: a TCP server that exposes the monitor's
//! read API — check, batched check, list, explain, telemetry — through a
//! versioned, length-prefixed binary protocol, plus the client library
//! to drive it.
//!
//! The interesting properties live at the joints:
//!
//! - **Batching meets snapshots.** A `BatchCheck` frame is answered
//!   against exactly one pinned
//!   [`MonitorView`](extsec_refmon::MonitorView): a 64-check batch costs
//!   one snapshot pin and its decisions are mutually consistent — they
//!   all describe the same published policy state, even while an
//!   administrator is revoking permissions concurrently.
//! - **The decoder is a perimeter.** The server parses attacker-supplied
//!   bytes with the same discipline the module verifier applies to
//!   untrusted code (`extsec_vm::wire`): every length bounded before
//!   allocation, every tag validated, malformed input answered with a
//!   typed error frame and never a panic.
//! - **Backpressure is accounted, not improvised.** A bounded accept
//!   queue, per-connection timeouts, frame and batch ceilings — each
//!   refusal increments a counter in [`ServerTelemetry`], surfaced
//!   through the same pull-based sink path as the monitor's own
//!   telemetry.
//!
//! **Trust model.** The server authenticates nothing: the client's
//! claimed principal and class are taken at face value (the class is
//! validated against the lattice, not attributed). The paper leaves
//! distributed authentication to future work, and so does this
//! reproduction — the server is a *policy evaluation* front end for
//! trusted callers (load generators, operators, sidecars), not an
//! authentication boundary. See DESIGN.md §6.9.
//!
//! # Quick start
//!
//! ```
//! use extsec_refmon::{MonitorBuilder, Subject};
//! use extsec_mac::Lattice;
//! use extsec_server::{Client, ClientConfig, Server, ServerConfig};
//!
//! let lattice = Lattice::build(["user", "system"], ["net"]).unwrap();
//! let mut builder = MonitorBuilder::new(lattice);
//! let alice = builder.add_principal("alice").unwrap();
//! let monitor = builder.build();
//!
//! let server = Server::spawn(monitor.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr(), ClientConfig::default()).unwrap();
//!
//! let subject = Subject::new(alice, monitor.lattice(|l| l.parse_class("user").unwrap()));
//! let decision = client
//!     .check(&subject, &"/svc".parse().unwrap(), extsec_acl::AccessMode::Read)
//!     .unwrap();
//! assert!(!decision.allowed()); // nothing granted yet
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.accepted, stats.closed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod proto;
mod reactor;
pub mod server;
pub mod telemetry;

pub use client::{Client, ClientConfig, ClientError, ClientStats};
pub use proto::{
    BatchItem, ErrorCode, Frame, FrameError, Opcode, ProtoError, Request, Response, MAX_AUDIT_GAPS,
    MAX_AUDIT_RECORDS, MAX_BATCH, MAX_FRAME, VERSION,
};
pub use server::{Server, ServerConfig};
pub use telemetry::{HistStat, OpcodeCount, ServerTelemetry, ServerTelemetrySnapshot};
