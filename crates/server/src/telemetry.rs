//! Server-side telemetry, layered on the `extsec-telemetry` primitives.
//!
//! The server reuses the monitor's counter and histogram machinery —
//! [`ShardedCounter`] for contended counts, [`LatencyHistogram`] for
//! distributions — and follows the same pull discipline: nothing here is
//! exported from the hot path; [`ServerTelemetry::snapshot`] reads a
//! consistent-enough view on demand (counters are relaxed, so totals can
//! be one update apart under load, exactly like the monitor's own hub).

use crate::proto::Opcode;
use extsec_telemetry::{HistogramSnapshot, LatencyHistogram, ShardedCounter};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Live server counters and distributions. One instance per [`Server`],
/// shared by the listener and every connection worker.
///
/// [`Server`]: crate::server::Server
#[derive(Default)]
pub struct ServerTelemetry {
    /// Requests handled, per request opcode (in [`Opcode::ALL`] order).
    requests: [ShardedCounter; Opcode::COUNT],
    /// Connections handed to a worker.
    accepted: ShardedCounter,
    /// Connections a worker finished with (whatever the reason).
    closed: ShardedCounter,
    /// Connections shed at accept (queue full): answered `Busy`
    /// (best effort) and closed instead of queued without bound.
    shed_accept: ShardedCounter,
    /// Connections shed mid-stream for exhausting their request budget.
    shed_budget: ShardedCounter,
    /// Panics contained at the worker boundary (the worker survives).
    worker_panics: ShardedCounter,
    /// Frames refused for violating the protocol.
    protocol_errors: ShardedCounter,
    /// Subset of protocol errors: length prefix over the frame limit.
    oversize: ShardedCounter,
    /// Connections closed for timing out mid-frame or mid-write.
    timeouts: ShardedCounter,
    /// Connections closed on other transport errors.
    io_errors: ShardedCounter,
    /// Individual checks served through `BatchCheck` frames.
    checks_in_batches: ShardedCounter,
    /// Reactor poll calls that returned (readiness waits, per shard).
    polls: ShardedCounter,
    /// Readiness events delivered across all poll returns.
    ready_events: ShardedCounter,
    /// Cross-shard wakeups (connection handoffs and shutdown nudges).
    wakeups: ShardedCounter,
    /// Coalesced write flushes issued (one per connection per turn).
    flushes: ShardedCounter,
    /// Responses carried by those flushes — `flushed_responses /
    /// flushes` is the batch-coalescing ratio.
    flushed_responses: ShardedCounter,
    /// Connection buffers shrunk back under the capacity clamp after a
    /// large frame or reply inflated them.
    buf_shrinks: ShardedCounter,
    /// Request frame sizes. The histogram buckets are log₂ *nanosecond*
    /// slots; we record bytes in them, so read the statistics as bytes.
    frame_bytes: LatencyHistogram,
    /// Wall-clock latency of whole `BatchCheck` frames.
    batch_latency: LatencyHistogram,
}

impl ServerTelemetry {
    /// Creates a zeroed telemetry block.
    pub fn new() -> Self {
        ServerTelemetry::default()
    }

    pub(crate) fn count_request(&self, opcode: Opcode) {
        self.requests[opcode as usize].incr();
    }

    pub(crate) fn conn_opened(&self) {
        self.accepted.incr();
    }

    pub(crate) fn conn_closed(&self) {
        self.closed.incr();
    }

    pub(crate) fn count_shed_accept(&self) {
        self.shed_accept.incr();
    }

    pub(crate) fn count_shed_budget(&self) {
        self.shed_budget.incr();
    }

    pub(crate) fn count_worker_panic(&self) {
        self.worker_panics.incr();
    }

    pub(crate) fn count_protocol_error(&self) {
        self.protocol_errors.incr();
    }

    pub(crate) fn count_oversize(&self) {
        self.oversize.incr();
    }

    pub(crate) fn count_timeout(&self) {
        self.timeouts.incr();
    }

    pub(crate) fn count_io_error(&self) {
        self.io_errors.incr();
    }

    pub(crate) fn count_batched_checks(&self, n: u64) {
        self.checks_in_batches.add(n);
    }

    pub(crate) fn count_poll(&self, ready: u64) {
        self.polls.incr();
        self.ready_events.add(ready);
    }

    pub(crate) fn count_wakeup(&self) {
        self.wakeups.incr();
    }

    pub(crate) fn count_flush(&self, responses: u64) {
        self.flushes.incr();
        self.flushed_responses.add(responses);
    }

    pub(crate) fn count_buf_shrink(&self) {
        self.buf_shrinks.incr();
    }

    pub(crate) fn record_frame_bytes(&self, bytes: u64) {
        self.frame_bytes.record(Duration::from_nanos(bytes));
    }

    pub(crate) fn record_batch_latency(&self, elapsed: Duration) {
        self.batch_latency.record(elapsed);
    }

    /// Captures the current totals.
    pub fn snapshot(&self) -> ServerTelemetrySnapshot {
        let accepted = self.accepted.get();
        let closed = self.closed.get();
        ServerTelemetrySnapshot {
            requests: Opcode::ALL
                .into_iter()
                .map(|op| OpcodeCount {
                    opcode: op.name().to_string(),
                    count: self.requests[op as usize].get(),
                })
                .collect(),
            accepted,
            closed,
            active: accepted.saturating_sub(closed),
            shed_accept: self.shed_accept.get(),
            shed_budget: self.shed_budget.get(),
            worker_panics: self.worker_panics.get(),
            protocol_errors: self.protocol_errors.get(),
            oversize: self.oversize.get(),
            timeouts: self.timeouts.get(),
            io_errors: self.io_errors.get(),
            checks_in_batches: self.checks_in_batches.get(),
            polls: self.polls.get(),
            ready_events: self.ready_events.get(),
            wakeups: self.wakeups.get(),
            flushes: self.flushes.get(),
            flushed_responses: self.flushed_responses.get(),
            buf_shrinks: self.buf_shrinks.get(),
            frame_bytes: HistStat::from(&self.frame_bytes.snapshot()),
            batch_latency: HistStat::from(&self.batch_latency.snapshot()),
        }
    }
}

/// Requests served for one opcode.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpcodeCount {
    /// The opcode's name (see [`Opcode::name`]).
    pub opcode: String,
    /// How many requests were handled.
    pub count: u64,
}

/// A histogram flattened to summary statistics (as in the JSON sink).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistStat {
    /// Samples recorded.
    pub count: u64,
    /// Mean value.
    pub mean: u64,
    /// Median (log₂-bucket resolution).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest observed value.
    pub max: u64,
}

impl From<&HistogramSnapshot> for HistStat {
    fn from(hist: &HistogramSnapshot) -> Self {
        HistStat {
            count: hist.count,
            mean: hist.mean_ns(),
            p50: hist.quantile_ns(0.5),
            p99: hist.quantile_ns(0.99),
            max: hist.max_ns,
        }
    }
}

/// A point-in-time copy of [`ServerTelemetry`], shippable as JSON (the
/// `server` member of the telemetry opcode's response document).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerTelemetrySnapshot {
    /// Requests handled, per opcode.
    pub requests: Vec<OpcodeCount>,
    /// Connections handed to a worker.
    pub accepted: u64,
    /// Connections finished.
    pub closed: u64,
    /// Connections currently being served (`accepted - closed`).
    pub active: u64,
    /// Connections shed at accept (queue full, answered `Busy`).
    pub shed_accept: u64,
    /// Connections shed for exhausting their request budget.
    pub shed_budget: u64,
    /// Panics contained at the worker boundary.
    pub worker_panics: u64,
    /// Frames refused as protocol violations.
    pub protocol_errors: u64,
    /// Length prefixes over the frame limit (subset of protocol errors).
    pub oversize: u64,
    /// Connections closed on mid-frame or write timeouts.
    pub timeouts: u64,
    /// Connections closed on other transport errors.
    pub io_errors: u64,
    /// Individual checks served inside batches.
    pub checks_in_batches: u64,
    /// Reactor poll calls that returned.
    pub polls: u64,
    /// Readiness events delivered across all polls.
    pub ready_events: u64,
    /// Cross-shard wakeups (handoffs and shutdown nudges).
    pub wakeups: u64,
    /// Coalesced write flushes issued.
    pub flushes: u64,
    /// Responses carried by those flushes.
    pub flushed_responses: u64,
    /// Connection buffers shrunk back under the capacity clamp.
    pub buf_shrinks: u64,
    /// Request frame sizes, in bytes.
    pub frame_bytes: HistStat,
    /// Whole-batch service latency, in nanoseconds.
    pub batch_latency: HistStat,
}

impl fmt::Display for ServerTelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "connections: accepted={} closed={} active={} shed_accept={} shed_budget={}",
            self.accepted, self.closed, self.active, self.shed_accept, self.shed_budget
        )?;
        writeln!(
            f,
            "errors: protocol={} oversize={} timeouts={} io={} worker_panics={}",
            self.protocol_errors, self.oversize, self.timeouts, self.io_errors, self.worker_panics
        )?;
        write!(f, "requests:")?;
        for entry in &self.requests {
            write!(f, " {}={}", entry.opcode, entry.count)?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "batches: checks={} latency mean={}ns p99={}ns",
            self.checks_in_batches, self.batch_latency.mean, self.batch_latency.p99
        )?;
        writeln!(
            f,
            "reactor: polls={} ready={} wakeups={} flushes={} flushed_responses={} buf_shrinks={}",
            self.polls,
            self.ready_events,
            self.wakeups,
            self.flushes,
            self.flushed_responses,
            self.buf_shrinks
        )?;
        write!(
            f,
            "frames: count={} mean={}B max={}B",
            self.frame_bytes.count, self.frame_bytes.mean, self.frame_bytes.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts_and_round_trips_as_json() {
        let tele = ServerTelemetry::new();
        tele.conn_opened();
        tele.conn_opened();
        tele.conn_closed();
        tele.count_request(Opcode::Check);
        tele.count_request(Opcode::BatchCheck);
        tele.count_batched_checks(64);
        tele.record_frame_bytes(512);
        tele.record_batch_latency(Duration::from_micros(3));
        tele.count_protocol_error();
        tele.count_oversize();
        tele.count_shed_accept();
        tele.count_shed_budget();
        tele.count_worker_panic();
        tele.count_poll(3);
        tele.count_poll(2);
        tele.count_wakeup();
        tele.count_flush(4);
        tele.count_buf_shrink();

        let snap = tele.snapshot();
        assert_eq!(snap.polls, 2);
        assert_eq!(snap.ready_events, 5);
        assert_eq!(snap.wakeups, 1);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.flushed_responses, 4);
        assert_eq!(snap.buf_shrinks, 1);
        assert_eq!(snap.shed_accept, 1);
        assert_eq!(snap.shed_budget, 1);
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.closed, 1);
        assert_eq!(snap.active, 1);
        assert_eq!(snap.checks_in_batches, 64);
        assert_eq!(snap.protocol_errors, 1);
        assert_eq!(snap.oversize, 1);
        let by_name = |name: &str| {
            snap.requests
                .iter()
                .find(|r| r.opcode == name)
                .map(|r| r.count)
        };
        assert_eq!(by_name("check"), Some(1));
        assert_eq!(by_name("batch-check"), Some(1));
        assert_eq!(by_name("ping"), Some(0));
        assert_eq!(snap.frame_bytes.count, 1);
        assert!(snap.batch_latency.mean > 0);

        let json = serde_json::to_string(&snap).unwrap();
        let parsed: ServerTelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, snap);
    }
}
