//! The audit pipeline over the wire: query/verify round trips, typed
//! refusal without a pipeline, tamper detection through the wire API,
//! and a churn regime — sustained checks, concurrent query/verify, and
//! pipeline restarts — with the server's slot accounting intact.

use extsec_acl::{AccessMode, Acl, AclEntry, ModeSet};
use extsec_mac::{Lattice, SecurityClass};
use extsec_namespace::{NodeKind, NsPath, Protection};
use extsec_refmon::{
    AuditPipeline, AuditQuery, MonitorBuilder, Outcome, PipelineConfig, ReferenceMonitor, Subject,
};
use extsec_server::{Client, ClientConfig, ClientError, ErrorCode, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn p(s: &str) -> NsPath {
    s.parse().unwrap()
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "extsec-audit-wire-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// `/svc/x/op` with alice granted execute; bob granted nothing.
fn fixture() -> (Arc<ReferenceMonitor>, Subject, Subject) {
    let lattice = Lattice::build(["low", "high"], ["c0"]).unwrap();
    let mut builder = MonitorBuilder::new(lattice);
    let alice = builder.add_principal("alice").unwrap();
    let bob = builder.add_principal("bob").unwrap();
    let monitor = builder.build();
    monitor
        .bootstrap(|ns| {
            let visible = Protection::new(
                Acl::public(ModeSet::only(AccessMode::List)),
                SecurityClass::bottom(),
            );
            ns.ensure_path(&p("/svc/x"), NodeKind::Domain, &visible)?;
            ns.insert(
                &p("/svc/x"),
                "op",
                NodeKind::Procedure,
                Protection::new(
                    Acl::from_entries([AclEntry::allow_principal(alice, AccessMode::Execute)]),
                    SecurityClass::bottom(),
                ),
            )?;
            Ok(())
        })
        .unwrap();
    let class = monitor.lattice(|l| l.parse_class("low").unwrap());
    let alice = Subject::new(alice, class.clone());
    let bob = Subject::new(bob, class);
    (monitor, alice, bob)
}

/// Drains every page of a query, asserting strictly increasing
/// sequence numbers across pages; returns (event seqs, gap ranges).
fn drain_query(client: &mut Client, base: AuditQuery) -> (Vec<u64>, Vec<(u64, u64)>) {
    let mut seqs = Vec::new();
    let mut gaps = Vec::new();
    let mut query = base;
    loop {
        let page = client.audit_query(&query).unwrap();
        for record in &page.records {
            if let Some(&prev) = seqs.last() {
                assert!(
                    record.seq > prev,
                    "sequence numbers regressed across pages: {} after {prev}",
                    record.seq
                );
            }
            seqs.push(record.seq);
        }
        for gap in &page.gaps {
            gaps.push((gap.first, gap.last));
        }
        if !page.truncated {
            return (seqs, gaps);
        }
        query.seq_min = page.next_seq;
    }
}

/// Without an attached pipeline the audit pair answers the typed
/// `AuditUnavailable` error — and the connection survives the refusal.
#[test]
fn unattached_server_refuses_with_typed_error() {
    let (monitor, alice, _) = fixture();
    let server =
        Server::spawn(Arc::clone(&monitor), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr(), ClientConfig::default()).unwrap();

    for result in [
        client.audit_query(&AuditQuery::default()).err(),
        client.audit_verify().err(),
    ] {
        match result {
            Some(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::AuditUnavailable)
            }
            other => panic!("expected AuditUnavailable, got {other:?}"),
        }
    }
    // Semantic refusal, not a protocol one: the same connection still
    // serves checks.
    let decision = client
        .check(&alice, &p("/svc/x/op"), AccessMode::Execute)
        .unwrap();
    assert!(decision.allowed());
    let stats = server.shutdown();
    assert_eq!(stats.accepted, stats.closed);
}

/// Checks recorded through the server surface in a wire query, filters
/// apply, and the persisted chain verifies end to end — until a single
/// byte of a segment is flipped on disk, which `audit_verify` must
/// report without panicking.
#[test]
fn query_verify_and_tamper_detection_over_the_wire() {
    let dir = scratch_dir("tamper");
    let (monitor, alice, bob) = fixture();
    let pipeline = AuditPipeline::open_dir(
        &dir,
        PipelineConfig {
            // Tiny segments so the run seals several of them.
            segment_max_bytes: 512,
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    monitor.attach_audit_pipeline(Arc::new(pipeline));

    let server =
        Server::spawn(Arc::clone(&monitor), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr(), ClientConfig::default()).unwrap();

    let op = p("/svc/x/op");
    for _ in 0..40 {
        assert!(client
            .check(&alice, &op, AccessMode::Execute)
            .unwrap()
            .allowed());
        assert!(!client
            .check(&bob, &op, AccessMode::Execute)
            .unwrap()
            .allowed());
    }

    // Unfiltered query: every recorded check is there, in order.
    let (seqs, gaps) = drain_query(&mut client, AuditQuery::default());
    assert!(gaps.is_empty(), "nothing was shed, yet gaps: {gaps:?}");
    assert_eq!(seqs.len(), 80);

    // Filters are conjunctive and honored server-side.
    let denied = client
        .audit_query(&AuditQuery {
            outcome: Some(Outcome::DacNoEntry),
            ..AuditQuery::default()
        })
        .unwrap();
    assert_eq!(denied.records.len(), 40);
    assert!(denied
        .records
        .iter()
        .all(|r| r.outcome == Outcome::DacNoEntry && r.path == "/svc/x/op"));

    // The intact chain verifies end to end.
    let report = client.audit_verify().unwrap();
    assert!(report.ok, "intact chain failed verify: {report:?}");
    assert!(
        report.segments.len() > 1,
        "expected several segments, got {}",
        report.segments.len()
    );

    // Flip one byte in the middle of one persisted segment, bypassing
    // the pipeline entirely.
    let victim = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-"))
        })
        .expect("a segment file on disk");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();

    let report = client.audit_verify().unwrap();
    assert!(!report.ok, "verify missed a flipped byte in {victim:?}");
    assert!(report.segments.iter().any(|s| !s.status.is_ok()));

    let stats = server.shutdown();
    assert_eq!(stats.accepted, stats.closed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The churn regime: client threads hammer checks while another client
/// interleaves queries and verifies and the pipeline is repeatedly shut
/// down and re-opened over the same directory (a drainer restart). The
/// persisted log must stay gap-accounted — every sequence number below
/// the final cursor is either persisted or covered by a declared gap —
/// and the server must close every slot it accepted.
#[test]
fn churn_checks_queries_and_pipeline_restarts() {
    const CHECKERS: usize = 3;
    const RESTARTS: usize = 3;
    const CHECKS_PER_PHASE: usize = 150;

    let dir = scratch_dir("churn");
    let (monitor, alice, bob) = fixture();
    let config = PipelineConfig {
        segment_max_bytes: 4096,
        ..PipelineConfig::default()
    };
    monitor.attach_audit_pipeline(Arc::new(
        AuditPipeline::open_dir(&dir, config.clone()).unwrap(),
    ));

    let server = Server::spawn(
        Arc::clone(&monitor),
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    let mut checkers = Vec::new();
    for i in 0..CHECKERS {
        let stop = Arc::clone(&stop);
        let subject = if i % 2 == 0 {
            alice.clone()
        } else {
            bob.clone()
        };
        checkers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr, ClientConfig::default()).unwrap();
            let op = p("/svc/x/op");
            let mut checks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                client.check(&subject, &op, AccessMode::Execute).unwrap();
                checks += 1;
            }
            checks
        }));
    }

    // The admin thread interleaves queries and verifies with pipeline
    // restarts: shutdown (drains and seals state to disk), re-open over
    // the same directory (recovery), re-attach. Checks recorded while
    // no live pipeline is attached are shed at the dead sink and must
    // come back as declared gaps, never as silent holes.
    let mut admin = Client::connect(addr, ClientConfig::default()).unwrap();
    for _ in 0..RESTARTS {
        for _ in 0..CHECKS_PER_PHASE {
            admin
                .check(&alice, &p("/svc/x/op"), AccessMode::Execute)
                .unwrap();
        }
        let report = admin.audit_verify().unwrap();
        assert!(report.ok, "chain failed verify mid-churn: {report:?}");
        let _ = drain_query(&mut admin, AuditQuery::default());

        let old = monitor.audit_pipeline().unwrap();
        old.shutdown();
        monitor.attach_audit_pipeline(Arc::new(
            AuditPipeline::open_dir(&dir, config.clone()).unwrap(),
        ));
    }

    stop.store(true, Ordering::Relaxed);
    let mut total_checks = 0u64;
    for checker in checkers {
        total_checks += checker.join().unwrap();
    }
    assert!(total_checks > 0);

    // Final accounting: the chain verifies, and the persisted events
    // plus the declared gaps tile `0..next_seq` exactly — no sequence
    // number is silently missing and none is double-covered.
    let report = admin.audit_verify().unwrap();
    assert!(report.ok, "chain failed final verify: {report:?}");
    let (seqs, gaps) = drain_query(&mut admin, AuditQuery::default());
    let mut covered: Vec<(u64, u64)> = seqs.iter().map(|&s| (s, s)).collect();
    covered.extend(gaps.iter().copied());
    covered.sort_unstable();
    let mut expect = 0u64;
    for (first, last) in covered {
        assert_eq!(
            first, expect,
            "coverage hole or overlap at seq {expect} (next covered range starts at {first})"
        );
        assert!(last >= first);
        expect = last + 1;
    }
    assert_eq!(
        expect, report.next_seq,
        "coverage stops short of the persisted cursor"
    );

    let stats = server.shutdown();
    assert_eq!(
        stats.accepted, stats.closed,
        "server leaked a connection slot"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
