//! Concurrency over the wire: many pipelining clients against one
//! server while an administrator revokes and regrants permissions.
//!
//! The invariant under test is the batching contract: every `BatchCheck`
//! is answered from **one** pinned snapshot, so identical queries inside
//! one batch must return identical decisions — a batch can land before
//! or after any given revocation, but never straddle it. (This is the
//! wire-path twin of the snapshot-consistency regime in the workspace's
//! `tests/concurrency.rs`.)

use extsec_acl::{AccessMode, Acl, AclEntry, ModeSet};
use extsec_mac::{Lattice, SecurityClass};
use extsec_namespace::{NodeKind, NsPath, Protection};
use extsec_refmon::{MonitorBuilder, ReferenceMonitor, Subject};
use extsec_server::{Client, ClientConfig, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn p(s: &str) -> NsPath {
    s.parse().unwrap()
}

/// `/svc/x/op` with alice granted execute+administrate; bob's execute
/// grant is what the admin thread toggles.
fn fixture() -> (Arc<ReferenceMonitor>, Subject, Subject) {
    let lattice = Lattice::build(["low", "high"], ["c0"]).unwrap();
    let mut builder = MonitorBuilder::new(lattice);
    let alice = builder.add_principal("alice").unwrap();
    let bob = builder.add_principal("bob").unwrap();
    let monitor = builder.build();
    monitor
        .bootstrap(|ns| {
            let visible = Protection::new(
                Acl::public(ModeSet::only(AccessMode::List)),
                SecurityClass::bottom(),
            );
            ns.ensure_path(&p("/svc/x"), NodeKind::Domain, &visible)?;
            ns.insert(
                &p("/svc/x"),
                "op",
                NodeKind::Procedure,
                Protection::new(
                    Acl::from_entries([
                        AclEntry::allow_principal(alice, AccessMode::Execute),
                        AclEntry::allow_principal(alice, AccessMode::Administrate),
                    ]),
                    SecurityClass::bottom(),
                ),
            )?;
            Ok(())
        })
        .unwrap();
    let class = monitor.lattice(|l| l.parse_class("low").unwrap());
    let alice = Subject::new(alice, class.clone());
    let bob = Subject::new(bob, class);
    (monitor, alice, bob)
}

#[test]
fn batches_never_straddle_a_revocation() {
    const CLIENTS: usize = 4;
    const BATCH: usize = 24;

    let (monitor, alice, bob) = fixture();
    let server = Server::spawn(
        Arc::clone(&monitor),
        "127.0.0.1:0",
        ServerConfig {
            workers: CLIENTS,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let op = p("/svc/x/op");

    // Client threads: each pipelines batches of the *same* query for
    // bob, whose grant is being toggled underneath them.
    let mut clients = Vec::new();
    for _ in 0..CLIENTS {
        let stop = Arc::clone(&stop);
        let bob = bob.clone();
        let op = op.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr, ClientConfig::default()).unwrap();
            let items: Vec<_> = (0..BATCH)
                .map(|_| (op.clone(), AccessMode::Execute))
                .collect();
            let mut batches = 0u64;
            let mut allowed_batches = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let decisions = client.batch_check(&bob, &items).unwrap();
                assert_eq!(decisions.len(), BATCH);
                // The whole batch came from one snapshot: identical
                // queries, identical answers.
                let first = &decisions[0];
                for (i, decision) in decisions.iter().enumerate() {
                    assert_eq!(
                        decision, first,
                        "item {i} disagrees with item 0 inside one batch: \
                         the batch straddled a policy change"
                    );
                }
                if first.allowed() {
                    allowed_batches += 1;
                }
                batches += 1;
            }
            (batches, allowed_batches)
        }));
    }

    // Admin thread: revoke and regrant bob's execute, in-process, as
    // fast as it can.
    let admin = {
        let monitor = Arc::clone(&monitor);
        let stop = Arc::clone(&stop);
        let alice = alice.clone();
        let bob_id = bob.principal;
        let op = op.clone();
        std::thread::spawn(move || {
            let mut toggles = 0u64;
            while !stop.load(Ordering::Relaxed) {
                monitor
                    .acl_push(
                        &alice,
                        &op,
                        AclEntry::allow_principal(bob_id, AccessMode::Execute),
                    )
                    .unwrap();
                let len = monitor.protection_of(&op).unwrap().acl.len();
                monitor.acl_remove(&alice, &op, len - 1).unwrap();
                toggles += 1;
            }
            toggles
        })
    };

    std::thread::sleep(Duration::from_millis(600));
    stop.store(true, Ordering::Relaxed);

    let toggles = admin.join().unwrap();
    let mut total_batches = 0u64;
    let mut total_allowed = 0u64;
    for handle in clients {
        let (batches, allowed) = handle.join().unwrap();
        total_batches += batches;
        total_allowed += allowed;
    }

    assert!(toggles > 0, "administration made progress");
    assert!(total_batches > 0, "clients made progress");
    // With the grant toggling, batches should observe both states
    // (statistically certain over hundreds of batches; the consistency
    // assertion above is the real invariant either way).
    assert!(
        total_allowed < total_batches || toggles < 2,
        "every batch saw the grant despite {toggles} revocations"
    );

    let stats = server.shutdown();
    assert_eq!(stats.accepted, stats.closed);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(
        stats.checks_in_batches,
        total_batches * BATCH as u64,
        "every batched check was accounted"
    );
}
