//! Bundle lifecycle over the wire: activation is atomic with respect to
//! concurrent batches, rollback restores the prior decision surface
//! byte-for-byte, and shadow mode never changes an enforced decision.
//!
//! The atomicity regime: the decision surface has exactly two valid
//! renderings — `vec_a` (the seed policy) and `vec_b` (the bundle
//! applied). Pipelined clients stream `BatchCheck` while an admin
//! client cycles stage → activate → rollback as fast as it can. Every
//! batch must render as *exactly* `vec_a` or *exactly* `vec_b`; a batch
//! that mixes the two observed a half-applied bundle.

use extsec_acl::{AccessMode, Acl, AclEntry, ModeSet};
use extsec_mac::{Lattice, SecurityClass};
use extsec_namespace::{NodeKind, NsPath, Protection};
use extsec_refmon::{MonitorBuilder, ReferenceMonitor, Subject};
use extsec_server::{Client, ClientConfig, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn p(s: &str) -> NsPath {
    s.parse().unwrap()
}

/// The bundle under test flips bob in both directions: it drops his
/// read grant on `/svc/x/read` (allow → deny) and grants him write on
/// `/svc/x/write` (deny → allow).
const BUNDLE: &str = r#"
bundle "flip-bob" version 1 base current;
set-acl /svc/x/read "+alice:rx";
acl-add /svc/x/write "+bob:w";
"#;

/// Seed: alice holds rx on `/svc/x/read` and rwx on `/svc/x/write`;
/// bob holds read on `/svc/x/read` only.
fn fixture() -> (Arc<ReferenceMonitor>, Subject) {
    let lattice = Lattice::build(["low", "high"], ["c0"]).unwrap();
    let mut builder = MonitorBuilder::new(lattice);
    let alice = builder.add_principal("alice").unwrap();
    let bob = builder.add_principal("bob").unwrap();
    let monitor = builder.build();
    monitor
        .bootstrap(|ns| {
            let visible = Protection::new(
                Acl::public(ModeSet::only(AccessMode::List)),
                SecurityClass::bottom(),
            );
            ns.ensure_path(&p("/svc/x"), NodeKind::Domain, &visible)?;
            ns.insert(
                &p("/svc/x"),
                "read",
                NodeKind::Procedure,
                Protection::new(
                    Acl::from_entries([
                        AclEntry::allow_principal(alice, AccessMode::Read),
                        AclEntry::allow_principal(alice, AccessMode::Execute),
                        AclEntry::allow_principal(bob, AccessMode::Read),
                    ]),
                    SecurityClass::bottom(),
                ),
            )?;
            ns.insert(
                &p("/svc/x"),
                "write",
                NodeKind::Procedure,
                Protection::new(
                    Acl::from_entries([
                        AclEntry::allow_principal(alice, AccessMode::Read),
                        AclEntry::allow_principal(alice, AccessMode::Write),
                        AclEntry::allow_principal(alice, AccessMode::Execute),
                    ]),
                    SecurityClass::bottom(),
                ),
            )?;
            Ok(())
        })
        .unwrap();
    let class = monitor.lattice(|l| l.parse_class("low").unwrap());
    let bob = Subject::new(bob, class);
    (monitor, bob)
}

/// The probe set whose answers render the decision surface. Both paths
/// alternate through the batch so a half-applied bundle would have to
/// show up as a mixed rendering.
fn probe_items(repeat: usize) -> Vec<(NsPath, AccessMode)> {
    let mut items = Vec::with_capacity(repeat * 2);
    for _ in 0..repeat {
        items.push((p("/svc/x/read"), AccessMode::Read));
        items.push((p("/svc/x/write"), AccessMode::Write));
    }
    items
}

/// Render a batch's decisions into comparable bytes.
fn render(decisions: &[extsec_refmon::Decision]) -> Vec<String> {
    decisions.iter().map(|d| format!("{d:?}")).collect()
}

#[test]
fn activation_is_atomic_and_rollback_is_exact() {
    const CLIENTS: usize = 4;
    const REPEAT: usize = 12;

    let (monitor, bob) = fixture();
    let server = Server::spawn(
        Arc::clone(&monitor),
        "127.0.0.1:0",
        ServerConfig {
            workers: CLIENTS + 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let items = probe_items(REPEAT);

    // Capture the two legal renderings of the decision surface before
    // any concurrency: vec_a under the seed, vec_b under the bundle.
    let mut admin = Client::connect(addr, ClientConfig::default()).unwrap();
    let vec_a = render(&admin.batch_check(&bob, &items).unwrap());
    let (id, _base) = admin.load_bundle(BUNDLE).unwrap();
    admin.activate(id).unwrap();
    let vec_b = render(&admin.batch_check(&bob, &items).unwrap());
    assert_ne!(vec_a, vec_b, "the bundle must change the probe surface");
    admin.rollback().unwrap();
    assert_eq!(
        render(&admin.batch_check(&bob, &items).unwrap()),
        vec_a,
        "rollback must restore the prior decision surface byte-for-byte"
    );

    let stop = Arc::new(AtomicBool::new(false));

    // Client threads: pipeline the probe batch and insist every batch
    // is entirely one surface or entirely the other.
    let mut clients = Vec::new();
    for _ in 0..CLIENTS {
        let stop = Arc::clone(&stop);
        let bob = bob.clone();
        let items = items.clone();
        let vec_a = vec_a.clone();
        let vec_b = vec_b.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr, ClientConfig::default()).unwrap();
            let mut batches = 0u64;
            let mut saw_b = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let rendered = render(&client.batch_check(&bob, &items).unwrap());
                if rendered == vec_b {
                    saw_b += 1;
                } else {
                    assert_eq!(
                        rendered, vec_a,
                        "a batch rendered as neither policy generation: \
                         it observed a half-applied bundle"
                    );
                }
                batches += 1;
            }
            (batches, saw_b)
        }));
    }

    // Admin thread: stage → activate → rollback, over the wire, as fast
    // as it can. Every cycle ends back on the seed surface.
    let admin_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut cycles = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (id, _) = admin.load_bundle(BUNDLE).unwrap();
                admin.activate(id).unwrap();
                admin.rollback().unwrap();
                cycles += 1;
            }
            (admin, cycles)
        })
    };

    std::thread::sleep(Duration::from_millis(600));
    stop.store(true, Ordering::Relaxed);

    let (mut admin, cycles) = admin_thread.join().unwrap();
    let mut total_batches = 0u64;
    let mut total_b = 0u64;
    for handle in clients {
        let (batches, saw_b) = handle.join().unwrap();
        total_batches += batches;
        total_b += saw_b;
    }

    assert!(cycles > 0, "admin churn made progress");
    assert!(total_batches > 0, "clients made progress");
    // Over hundreds of batches against continuous churn, both surfaces
    // should be observed (the per-batch assertion above is the real
    // invariant either way).
    assert!(
        total_b > 0 || cycles < 2,
        "no batch ever observed the bundle despite {cycles} activations"
    );

    // The churn loop ends every cycle with a rollback: the final
    // surface must be the seed, byte-for-byte.
    assert_eq!(
        render(&admin.batch_check(&bob, &items).unwrap()),
        vec_a,
        "after the final rollback the seed surface must be restored exactly"
    );
    let status = admin.bundle_status().unwrap();
    assert!(status.shadow.is_none());
    drop(admin);

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn shadow_mode_never_changes_enforced_decisions() {
    let (monitor, bob) = fixture();
    let server =
        Server::spawn(Arc::clone(&monitor), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let items = probe_items(4);

    let mut admin = Client::connect(addr, ClientConfig::default()).unwrap();
    let vec_a = render(&admin.batch_check(&bob, &items).unwrap());

    // Stage and shadow the bundle: staging alone changes nothing, and
    // shadow mode must keep it that way while counting would-be flips.
    let (id, base) = admin.load_bundle(BUNDLE).unwrap();
    let generation = admin.shadow(id, true).unwrap();
    assert_eq!(
        generation, base,
        "shadow mode must not publish a new policy generation"
    );

    for _ in 0..3 {
        assert_eq!(
            render(&admin.batch_check(&bob, &items).unwrap()),
            vec_a,
            "an enforced decision changed while the bundle was only shadowed"
        );
    }

    let status = admin.bundle_status().unwrap();
    let report = status.shadow.expect("shadow mode is on");
    assert_eq!(report.bundle, id);
    assert!(report.checks >= items.len() as u64 * 3);
    assert!(report.allow_to_deny > 0, "bob's read revocation must show");
    assert!(report.deny_to_allow > 0, "bob's write grant must show");
    assert!(!report.flips.is_empty());
    assert_eq!(
        status.staged.len(),
        1,
        "shadowing must not consume the staged bundle"
    );

    // Turning shadow off clears the report and still enforces the seed.
    admin.shadow(id, false).unwrap();
    let status = admin.bundle_status().unwrap();
    assert!(status.shadow.is_none());
    assert_eq!(render(&admin.batch_check(&bob, &items).unwrap()), vec_a);

    // Only activation changes enforcement.
    admin.activate(id).unwrap();
    assert_ne!(render(&admin.batch_check(&bob, &items).unwrap()), vec_a);
    drop(admin);

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0);
}
