//! End-to-end socket tests: the full request set over real TCP, and an
//! adversarial battery proving malformed input can never panic the
//! server or leak a connection slot.

use extsec_acl::{AccessMode, Acl, AclEntry, ModeSet};
use extsec_mac::{Lattice, SecurityClass};
use extsec_namespace::{NodeKind, NsPath, Protection};
use extsec_refmon::{Decision, DenyReason, JsonSink, MonitorBuilder, ReferenceMonitor, Subject};
use extsec_server::proto;
use extsec_server::{
    Client, ClientConfig, ErrorCode, Opcode, Request, Response, Server, ServerConfig, MAX_FRAME,
    VERSION,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn p(s: &str) -> NsPath {
    s.parse().unwrap()
}

/// Standard fixture: `/svc/fs/read` with alice granted `rx`, bob
/// nothing; interior nodes publicly visible.
fn fixture() -> (Arc<ReferenceMonitor>, Subject, Subject) {
    let lattice = Lattice::build(["low", "high"], ["c0"]).unwrap();
    let mut builder = MonitorBuilder::new(lattice);
    let alice = builder.add_principal("alice").unwrap();
    let bob = builder.add_principal("bob").unwrap();
    let monitor = builder.build();
    monitor
        .bootstrap(|ns| {
            let visible = Protection::new(
                Acl::public(ModeSet::only(AccessMode::List)),
                SecurityClass::bottom(),
            );
            ns.ensure_path(&p("/svc/fs"), NodeKind::Domain, &visible)?;
            let read = ns.insert(
                &p("/svc/fs"),
                "read",
                NodeKind::Procedure,
                Protection::default(),
            )?;
            ns.update_protection(read, |prot| {
                prot.acl.push(AclEntry::allow_principal_modes(
                    alice,
                    ModeSet::parse("rx").unwrap(),
                ));
            })?;
            Ok(())
        })
        .unwrap();
    let class = monitor.lattice(|l| l.parse_class("low").unwrap());
    let alice = Subject::new(alice, class.clone());
    let bob = Subject::new(bob, class);
    (monitor, alice, bob)
}

fn spawn(monitor: &Arc<ReferenceMonitor>, config: ServerConfig) -> Server {
    Server::spawn(Arc::clone(monitor), "127.0.0.1:0", config).unwrap()
}

fn client(server: &Server) -> Client {
    Client::connect(server.local_addr(), ClientConfig::default()).unwrap()
}

/// Polls until the server's accounting shows every connection closed.
fn wait_for_balanced_accounting(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = server.telemetry().snapshot();
        if snap.accepted == snap.closed {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "connection slot leaked: {} accepted, {} closed",
            snap.accepted,
            snap.closed
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn full_request_set_over_tcp() {
    let (monitor, alice, bob) = fixture();
    monitor.telemetry().set_enabled(true);
    let sink = Arc::new(JsonSink::new());
    monitor.telemetry().add_sink(sink.clone());

    let server = spawn(&monitor, ServerConfig::default());
    let mut client = client(&server);

    client.ping().unwrap();

    // Single checks match the in-process monitor exactly.
    let read = p("/svc/fs/read");
    assert_eq!(
        client.check(&alice, &read, AccessMode::Execute).unwrap(),
        monitor.check(&alice, &read, AccessMode::Execute)
    );
    assert!(client
        .check(&alice, &read, AccessMode::Read)
        .unwrap()
        .allowed());
    assert_eq!(
        client.check(&bob, &read, AccessMode::Read).unwrap(),
        Decision::Deny(DenyReason::DacNoEntry)
    );

    // A batch answers every item, in order.
    let decisions = client
        .batch_check(
            &alice,
            &[
                (read.clone(), AccessMode::Read),
                (read.clone(), AccessMode::Write),
                (p("/svc/fs/missing"), AccessMode::Read),
            ],
        )
        .unwrap();
    assert_eq!(decisions.len(), 3);
    assert!(decisions[0].allowed());
    assert!(!decisions[1].allowed());
    assert_eq!(
        decisions[2],
        Decision::Deny(DenyReason::NotFound(p("/svc/fs/missing")))
    );

    // Listing and explanation agree with the in-process API.
    assert_eq!(client.list(&alice, &p("/svc/fs")).unwrap(), vec!["read"]);
    let explanation = client.explain(&bob, &read, AccessMode::Read).unwrap();
    assert_eq!(explanation.decision, Decision::Deny(DenyReason::DacNoEntry));
    assert!(!explanation.steps.is_empty());

    // The telemetry pull feeds the registered sinks (the pull path) and
    // ships a combined document.
    assert_eq!(sink.last_json(), None);
    let document = client.telemetry().unwrap();
    assert!(document.contains("\"monitor\""));
    assert!(document.contains("\"server\""));
    assert!(sink.last_json().is_some(), "publish reached the JSON sink");

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.accepted, stats.closed);
    assert_eq!(stats.protocol_errors, 0);
    let count = |name: &str| {
        stats
            .requests
            .iter()
            .find(|r| r.opcode == name)
            .unwrap()
            .count
    };
    assert_eq!(count("ping"), 1);
    assert_eq!(count("check"), 3);
    assert_eq!(count("batch-check"), 1);
    assert_eq!(count("list"), 1);
    assert_eq!(count("explain"), 1);
    assert_eq!(count("telemetry"), 1);
    assert_eq!(stats.checks_in_batches, 3);
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (monitor, alice, _) = fixture();
    let server = spawn(&monitor, ServerConfig::default());
    let mut client = client(&server);

    let read = p("/svc/fs/read");
    let requests: Vec<Request> = (0..16)
        .map(|i| Request::Check {
            subject: alice.clone(),
            path: read.clone(),
            mode: if i % 2 == 0 {
                AccessMode::Read
            } else {
                AccessMode::Write
            },
        })
        .collect();
    let responses = client.pipeline(&requests).unwrap();
    assert_eq!(responses.len(), 16);
    for (i, response) in responses.iter().enumerate() {
        match response {
            Response::Decision(decision) => {
                assert_eq!(decision.allowed(), i % 2 == 0, "response {i} out of order")
            }
            other => panic!("expected a decision, got {other:?}"),
        }
    }
    drop(client);
    server.shutdown();
}

/// Sends raw bytes, then returns the server's one error reply (if any)
/// and whether the connection was closed afterwards.
fn send_raw(server: &Server, bytes: &[u8]) -> (Option<Response>, bool) {
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(bytes).unwrap();
    let reply = match proto::read_frame(&mut stream, MAX_FRAME) {
        Ok(frame) => Some(Response::decode(frame.opcode, &frame.payload).unwrap()),
        Err(_) => None,
    };
    // After an error reply the server must close: the next read is EOF.
    let mut probe = [0u8; 1];
    let closed = matches!(stream.read(&mut probe), Ok(0));
    (reply, closed)
}

fn error_code(response: &Option<Response>) -> Option<ErrorCode> {
    match response {
        Some(Response::Error { code, .. }) => Some(*code),
        _ => None,
    }
}

#[test]
fn adversarial_frames_get_typed_errors_and_leak_nothing() {
    let (monitor, alice, _) = fixture();
    let server = spawn(&monitor, ServerConfig::default());

    // Wrong version byte: refused on the first byte.
    let (reply, closed) = send_raw(&server, &[9, 0, 0, 0, 0, 0]);
    assert_eq!(error_code(&reply), Some(ErrorCode::Version));
    assert!(closed);

    // Oversize length prefix: refused before any payload allocation.
    let mut oversize = vec![VERSION, Opcode::Ping as u8];
    oversize.extend_from_slice(&(64u32 << 20).to_le_bytes());
    let (reply, closed) = send_raw(&server, &oversize);
    assert_eq!(error_code(&reply), Some(ErrorCode::Oversize));
    assert!(closed);

    // Unknown opcode.
    let mut unknown = vec![VERSION, 0x5E];
    unknown.extend_from_slice(&0u32.to_le_bytes());
    let (reply, closed) = send_raw(&server, &unknown);
    assert_eq!(error_code(&reply), Some(ErrorCode::Opcode));
    assert!(closed);

    // Truncated frame: the header promises 32 bytes, the peer sends 3
    // and half-closes.
    let mut truncated = vec![VERSION, Opcode::Check as u8];
    truncated.extend_from_slice(&32u32.to_le_bytes());
    truncated.extend_from_slice(&[1, 2, 3]);
    {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&truncated).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let frame = proto::read_frame(&mut stream, MAX_FRAME).unwrap();
        match Response::decode(frame.opcode, &frame.payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
            other => panic!("expected error, got {other:?}"),
        }
    }

    // Garbage payload under a valid header: decoded, refused, answered.
    let garbage_payload = [0xFFu8; 24];
    let mut garbage = vec![VERSION, Opcode::Check as u8];
    garbage.extend_from_slice(&(garbage_payload.len() as u32).to_le_bytes());
    garbage.extend_from_slice(&garbage_payload);
    let (reply, closed) = send_raw(&server, &garbage);
    assert_eq!(error_code(&reply), Some(ErrorCode::Protocol));
    assert!(closed);

    // The server survived all of it: a fresh, well-behaved client works.
    let mut ok_client = client(&server);
    ok_client.ping().unwrap();
    assert!(ok_client
        .check(&alice, &p("/svc/fs/read"), AccessMode::Read)
        .unwrap()
        .allowed());
    drop(ok_client);

    // And the accounting balances: every connection slot came back.
    wait_for_balanced_accounting(&server);
    let stats = server.shutdown();
    assert_eq!(stats.accepted, stats.closed);
    assert!(stats.protocol_errors >= 5);
    assert!(stats.oversize >= 1);
}

#[test]
fn semantic_refusals_keep_the_connection_open() {
    let (monitor, alice, _) = fixture();
    let server = spawn(
        &monitor,
        ServerConfig {
            max_batch: 4,
            ..ServerConfig::default()
        },
    );
    let mut client = client(&server);

    // Over the operational batch limit: an error *answer*, not a drop.
    let items: Vec<_> = (0..8)
        .map(|_| (p("/svc/fs/read"), AccessMode::Read))
        .collect();
    match client.batch_check(&alice, &items) {
        Err(extsec_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::BatchTooLarge)
        }
        other => panic!("expected batch-too-large, got {other:?}"),
    }

    // A subject whose class is foreign to the lattice: same story.
    let foreign = alice.with_class(SecurityClass::new(
        extsec_mac::TrustLevel::from_rank(999),
        Default::default(),
    ));
    match client.check(&foreign, &p("/svc/fs/read"), AccessMode::Read) {
        Err(extsec_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::InvalidSubject)
        }
        other => panic!("expected invalid-subject, got {other:?}"),
    }

    // Still the same connection, still serving.
    client.ping().unwrap();
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 1, "refusals did not cost the connection");
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn shutdown_is_graceful_and_idempotent_accounting_holds() {
    let (monitor, alice, _) = fixture();
    let server = spawn(&monitor, ServerConfig::default());
    let mut open = client(&server);
    open.check(&alice, &p("/svc/fs/read"), AccessMode::Read)
        .unwrap();

    // Shut down while a client connection is still open: the worker
    // notices at the next idle tick and the join completes.
    let stats = server.shutdown();
    assert_eq!(stats.accepted, stats.closed);
    assert_eq!(stats.accepted, 1);
}
