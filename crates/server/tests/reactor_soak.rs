//! Reactor soak: thousands of concurrent connections on a fixed,
//! small number of shard threads.
//!
//! The pre-reactor server held one thread per active connection, so "4k
//! concurrent peers" meant 4k threads or a 4k-deep accept queue. The
//! reactor multiplexes them all onto `workers` event loops; this suite
//! holds it to that:
//!
//! - ≥4k connections, mostly idle with an active minority, all live at
//!   once on two shards — and every one of them accounted:
//!   `accepted == closed`, `active == 0`, zero slot leaks, zero panics;
//! - idle connections are *not* timed out (only mid-frame stalls and
//!   unread replies are) and still answer after sitting idle;
//! - past `max_connections` the server sheds at the door with a typed
//!   `Busy` frame naming a backoff — never a silent RST — and shed
//!   connections stay out of the accepted/closed accounting.
//!
//! The default shape (4,096 idle + every 16th pinged) keeps CI fast;
//! `EXTSEC_SOAK_FULL=1` raises the load for the release leg. The chosen
//! configuration is logged so the release-leg output records what was
//! actually soaked.

use extsec_mac::Lattice;
use extsec_refmon::MonitorBuilder;
use extsec_server::proto::{self, Request, Response, MAX_FRAME};
use extsec_server::{Server, ServerConfig};
use std::io::Read;
use std::net::TcpStream;
use std::time::Duration;

fn spawn_server(config: ServerConfig) -> Server {
    let lattice = Lattice::build(["user", "system"], ["net"]).unwrap();
    let builder = MonitorBuilder::new(lattice);
    let monitor = builder.build();
    Server::spawn(monitor, "127.0.0.1:0", config).unwrap()
}

fn ping(stream: &mut TcpStream) {
    proto::write_frame(stream, &Request::Ping.encode()).unwrap();
    let frame = proto::read_frame(stream, MAX_FRAME).unwrap();
    match Response::decode(frame.opcode, &frame.payload).unwrap() {
        Response::Pong => {}
        other => panic!("wanted Pong, got {other:?}"),
    }
}

#[test]
fn thousands_of_connections_on_fixed_shards() {
    let full = std::env::var("EXTSEC_SOAK_FULL").is_ok();
    let connections: usize = if full { 6000 } else { 4096 };
    let active_every = 16;
    let config = ServerConfig {
        workers: 2,
        accept_queue: 8192,
        max_connections: 8192,
        read_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    println!(
        "soak config: connections={connections} active_every={active_every} \
         workers={} accept_queue={} max_connections={} full={full}",
        config.workers, config.accept_queue, config.max_connections
    );
    let server = spawn_server(config);
    let addr = server.local_addr();

    let mut conns: Vec<TcpStream> = Vec::with_capacity(connections);
    for i in 0..connections {
        let stream = TcpStream::connect(addr)
            .unwrap_or_else(|e| panic!("connect {i} of {connections} failed: {e}"));
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        conns.push(stream);
    }

    // With every connection live, the active minority must still get
    // answers — the idle majority costs readiness registrations, not
    // threads or queue slots.
    for stream in conns.iter_mut().step_by(active_every) {
        ping(stream);
    }

    // Idle connections are not reaped: sit past several read timeouts,
    // then every probed connection must still answer.
    std::thread::sleep(Duration::from_millis(50));
    for stream in conns.iter_mut().step_by(active_every * 8) {
        ping(stream);
    }

    // Registration is asynchronous (accept → shard inbox → slab); give
    // the shards a moment to drain the tail before taking the census.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let snapshot = loop {
        let snapshot = server.telemetry().snapshot();
        if snapshot.active as usize == connections || std::time::Instant::now() > deadline {
            break snapshot;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(
        snapshot.active as usize, connections,
        "every connection should be live and registered"
    );
    assert_eq!(snapshot.accepted as usize, connections);
    assert_eq!(snapshot.worker_panics, 0);
    assert_eq!(snapshot.timeouts, 0, "idle connections must not time out");
    assert_eq!(snapshot.shed_accept, 0, "under the cap nothing is shed");

    drop(conns);
    let stats = server.shutdown();
    println!(
        "soak result: accepted={} closed={} polls={} ready={} wakeups={} flushes={}",
        stats.accepted, stats.closed, stats.polls, stats.ready_events, stats.wakeups, stats.flushes
    );
    assert_eq!(stats.accepted as usize, connections);
    assert_eq!(stats.accepted, stats.closed, "no slot may leak");
    assert_eq!(stats.active, 0);
    assert_eq!(stats.worker_panics, 0);
}

#[test]
fn overload_sheds_with_typed_busy_and_leaks_nothing() {
    let cap = 64;
    let server = spawn_server(ServerConfig {
        workers: 2,
        max_connections: cap,
        shed_retry_after: Duration::from_millis(35),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut held: Vec<TcpStream> = (0..cap)
        .map(|i| {
            let stream = TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("connect {i} of {cap} failed: {e}"));
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            stream
        })
        .collect();
    // Prove the cap-filling connections are real, served connections.
    ping(&mut held[0]);
    ping(&mut held[cap - 1]);

    // One past the cap: a typed Busy frame naming the backoff, then a
    // clean EOF — the refusal is legible, not a silent RST.
    let mut over = TcpStream::connect(addr).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let frame = proto::read_frame(&mut over, MAX_FRAME).unwrap();
    match Response::decode(frame.opcode, &frame.payload).unwrap() {
        Response::Busy { retry_after_ms } => assert_eq!(retry_after_ms, 35),
        other => panic!("wanted Busy, got {other:?}"),
    }
    let mut sink = [0u8; 16];
    assert_eq!(over.read(&mut sink).unwrap(), 0, "after Busy: clean EOF");

    // Free a slot and the door opens again.
    drop(held.remove(0));
    let mut retry = loop {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // The freed slot is reclaimed asynchronously; a Busy here just
        // means the close has not landed yet.
        match proto::write_frame(&mut stream, &Request::Ping.encode()) {
            Ok(()) => {}
            Err(_) => continue,
        }
        let frame = match proto::read_frame(&mut stream, MAX_FRAME) {
            Ok(frame) => frame,
            Err(_) => continue,
        };
        match Response::decode(frame.opcode, &frame.payload).unwrap() {
            Response::Pong => break stream,
            Response::Busy { .. } => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            other => panic!("wanted Pong or Busy, got {other:?}"),
        }
    };
    ping(&mut retry);

    drop(retry);
    drop(held);
    let stats = server.shutdown();
    assert!(stats.shed_accept >= 1, "the over-cap connect must be shed");
    assert_eq!(
        stats.accepted, stats.closed,
        "shed connections never enter the accounting; served ones balance"
    );
    assert_eq!(stats.active, 0);
    assert_eq!(stats.worker_panics, 0);
}
