//! Property tests for the wire protocol: encode → decode is the
//! identity on every frame type, truncation at any point is a refusal
//! (never a panic), and the decoder is total on garbage and corruption.

use extsec_acl::{AccessMode, PrincipalId};
use extsec_mac::{CategoryId, CategorySet, SecurityClass, TrustLevel};
use extsec_namespace::NsPath;
use extsec_refmon::{
    AuditQuery, AuditRecord, BundleId, Decision, DenyReason, GapRange, Generation, Outcome,
    QueryResult, Subject, ThreadId,
};
use extsec_server::proto::{read_frame, FrameError, ProtoError};
use extsec_server::{BatchItem, ErrorCode, Request, Response, MAX_FRAME};
use proptest::prelude::*;

fn arb_mode() -> impl Strategy<Value = AccessMode> {
    (0usize..AccessMode::ALL.len()).prop_map(|i| AccessMode::ALL[i])
}

fn arb_subject() -> impl Strategy<Value = Subject> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u16>(),
        proptest::collection::vec(0u16..512, 0..8),
    )
        .prop_map(|(principal, thread, rank, cats)| {
            Subject::on_thread(
                PrincipalId::from_raw(principal),
                SecurityClass::new(
                    TrustLevel::from_rank(rank),
                    CategorySet::from_ids(cats.into_iter().map(CategoryId::from_index)),
                ),
                ThreadId::from_raw(thread),
            )
        })
}

fn arb_path() -> impl Strategy<Value = NsPath> {
    proptest::collection::vec("[a-z][a-z0-9._-]{0,12}", 0..6)
        .prop_map(|components| NsPath::from_components(components).expect("valid components"))
}

fn arb_outcome() -> impl Strategy<Value = Outcome> {
    (0usize..Outcome::ALL.len()).prop_map(|i| Outcome::ALL[i])
}

fn arb_audit_query() -> impl Strategy<Value = AuditQuery> {
    (
        proptest::option::of(any::<u32>()),
        proptest::option::of("(/[a-z]{1,8}){0,4}"),
        proptest::option::of(arb_outcome()),
        any::<u64>(),
        proptest::option::of(any::<u64>()),
        any::<u32>(),
    )
        .prop_map(
            |(principal, path_prefix, outcome, seq_min, seq_max, limit)| AuditQuery {
                principal,
                path_prefix,
                outcome,
                seq_min,
                seq_max,
                limit,
            },
        )
}

fn arb_audit_record() -> impl Strategy<Value = AuditRecord> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
        any::<u8>(),
        arb_outcome(),
        "(/[a-z]{1,8}){0,4}",
    )
        .prop_map(
            |(seq, principal, generation, mode, outcome, path)| AuditRecord {
                seq,
                principal,
                generation,
                mode,
                outcome,
                path,
            },
        )
}

fn arb_query_result() -> impl Strategy<Value = QueryResult> {
    (
        proptest::collection::vec(arb_audit_record(), 0..8),
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..4),
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(|(records, gaps, truncated, next_seq)| QueryResult {
            records,
            gaps: gaps
                .into_iter()
                .map(|(first, last)| GapRange { first, last })
                .collect(),
            truncated,
            next_seq,
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Telemetry),
        (arb_subject(), arb_path(), arb_mode()).prop_map(|(subject, path, mode)| {
            Request::Check {
                subject,
                path,
                mode,
            }
        }),
        (arb_subject(), arb_path(), arb_mode()).prop_map(|(subject, path, mode)| {
            Request::Explain {
                subject,
                path,
                mode,
            }
        }),
        (arb_subject(), arb_path()).prop_map(|(subject, path)| Request::List { subject, path }),
        (
            arb_subject(),
            proptest::collection::vec((arb_path(), arb_mode()), 0..16)
        )
            .prop_map(|(subject, items)| Request::BatchCheck {
                subject,
                items: items
                    .into_iter()
                    .map(|(path, mode)| BatchItem { path, mode })
                    .collect(),
            }),
        ".{0,128}".prop_map(|source| Request::LoadBundle { source }),
        any::<u64>().prop_map(|raw| Request::Activate {
            bundle: BundleId::from_raw(raw),
        }),
        (any::<u64>(), any::<bool>()).prop_map(|(raw, on)| Request::Shadow {
            bundle: BundleId::from_raw(raw),
            on,
        }),
        Just(Request::Rollback),
        Just(Request::BundleStatus),
        arb_audit_query().prop_map(|query| Request::AuditQuery { query }),
        Just(Request::AuditVerify),
    ]
}

fn arb_decision() -> impl Strategy<Value = Decision> {
    prop_oneof![
        Just(Decision::Allow),
        Just(Decision::Deny(DenyReason::DacNoEntry)),
        (0usize..64).prop_map(|i| Decision::Deny(DenyReason::DacNegativeEntry(i))),
        Just(Decision::Deny(DenyReason::MacFlow)),
        arb_path().prop_map(|p| Decision::Deny(DenyReason::NotVisibleDac(p))),
        arb_path().prop_map(|p| Decision::Deny(DenyReason::NotVisibleMac(p))),
        arb_path().prop_map(|p| Decision::Deny(DenyReason::NotFound(p))),
        ".{0,24}".prop_map(|s| Decision::Deny(DenyReason::Structure(s))),
    ]
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::Protocol),
        Just(ErrorCode::Version),
        Just(ErrorCode::Opcode),
        Just(ErrorCode::Oversize),
        Just(ErrorCode::BatchTooLarge),
        Just(ErrorCode::InvalidSubject),
        Just(ErrorCode::Denied),
        Just(ErrorCode::Internal),
        Just(ErrorCode::InvalidBundle),
        Just(ErrorCode::GenerationConflict),
        Just(ErrorCode::AuditUnavailable),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        arb_decision().prop_map(Response::Decision),
        proptest::collection::vec(arb_decision(), 0..16).prop_map(Response::Batch),
        proptest::collection::vec("[a-z]{1,10}", 0..12).prop_map(Response::Listing),
        ".{0,64}".prop_map(Response::Explanation),
        ".{0,64}".prop_map(Response::Telemetry),
        (arb_error_code(), ".{0,32}").prop_map(|(code, message)| Response::Error { code, message }),
        (any::<u64>(), any::<u64>()).prop_map(|(bundle, base)| Response::BundleStaged {
            bundle: BundleId::from_raw(bundle),
            base: Generation::from_raw(base),
        }),
        any::<u64>().prop_map(|raw| Response::BundleAck {
            generation: Generation::from_raw(raw),
        }),
        ".{0,96}".prop_map(Response::BundleStatus),
        arb_query_result().prop_map(Response::AuditEvents),
        ".{0,96}".prop_map(Response::AuditReport),
    ]
}

proptest! {
    /// encode → decode is the identity on every request frame type.
    #[test]
    fn requests_round_trip(request in arb_request()) {
        let bytes = request.encode();
        let frame = read_frame(&mut &bytes[..], MAX_FRAME).expect("own frames parse");
        prop_assert_eq!(frame.opcode, request.opcode() as u8);
        prop_assert_eq!(Request::decode(frame.opcode, &frame.payload), Ok(request));
    }

    /// encode → decode is the identity on every response frame type.
    #[test]
    fn responses_round_trip(response in arb_response()) {
        let bytes = response.encode();
        let frame = read_frame(&mut &bytes[..], MAX_FRAME).expect("own frames parse");
        prop_assert_eq!(frame.opcode, response.opcode());
        prop_assert_eq!(Response::decode(frame.opcode, &frame.payload), Ok(response));
    }

    /// Truncating a valid frame at *any* prefix length is a refusal —
    /// EOF, truncation, or idle for a zero-length read — never a panic
    /// and never a successful parse of a shorter structure.
    #[test]
    fn truncation_at_every_prefix_is_refused(request in arb_request()) {
        let bytes = request.encode();
        for len in 0..bytes.len() {
            match read_frame(&mut &bytes[..len], MAX_FRAME) {
                Ok(frame) => {
                    // The header parsed because the payload length fit
                    // the prefix; the payload itself must then refuse.
                    prop_assert!(
                        Request::decode(frame.opcode, &frame.payload) != Ok(request.clone()),
                        "prefix of {len} bytes decoded as the full request"
                    );
                }
                Err(FrameError::Eof | FrameError::Proto(_)) => {}
                Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
            }
        }
    }

    /// The frame reader and payload decoders are total on garbage.
    #[test]
    fn decode_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(frame) = read_frame(&mut &bytes[..], MAX_FRAME) {
            let _ = Request::decode(frame.opcode, &frame.payload);
            let _ = Response::decode(frame.opcode, &frame.payload);
        }
    }

    /// Decoders are total on corrupted encodings of real frames.
    #[test]
    fn decode_total_on_corruption(
        request in arb_request(),
        flips in proptest::collection::vec((0usize..4096, any::<u8>()), 1..8),
    ) {
        let mut bytes = request.encode();
        for (pos, value) in flips {
            let n = bytes.len();
            bytes[pos % n] = value;
        }
        if let Ok(frame) = read_frame(&mut &bytes[..], MAX_FRAME) {
            let _ = Request::decode(frame.opcode, &frame.payload);
        }
    }

    /// Any opcode byte outside the protocol's request and response
    /// tables is refused at the frame header with `BadOpcode`, and a
    /// byte refused there also decodes to neither frame family.
    #[test]
    fn unknown_opcode_bytes_are_refused(opcode in any::<u8>()) {
        let bytes = [extsec_server::VERSION, opcode, 0, 0, 0, 0];
        match read_frame(&mut &bytes[..], MAX_FRAME) {
            Ok(frame) => prop_assert_eq!(frame.opcode, opcode),
            Err(FrameError::Proto(ProtoError::BadOpcode(byte))) => {
                prop_assert_eq!(byte, opcode);
                prop_assert!(Request::decode(opcode, &[]).is_err());
                prop_assert!(Response::decode(opcode, &[]).is_err());
            }
            other => prop_assert!(false, "expected accept or BadOpcode, got {other:?}"),
        }
    }

    /// A length prefix larger than the reader's limit is refused before
    /// any payload is read, whatever the claimed size.
    #[test]
    fn oversize_length_prefix_is_refused(len in (MAX_FRAME + 1)..=u32::MAX) {
        let mut bytes = vec![extsec_server::VERSION, 0x00];
        bytes.extend_from_slice(&len.to_le_bytes());
        match read_frame(&mut &bytes[..], MAX_FRAME) {
            Err(FrameError::Proto(ProtoError::Oversize(claimed))) => {
                prop_assert_eq!(claimed, u64::from(len));
            }
            other => prop_assert!(false, "expected oversize refusal, got {other:?}"),
        }
    }
}
