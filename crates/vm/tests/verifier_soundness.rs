//! The verifier-soundness property: any module the verifier accepts runs
//! without internal faults — every abnormal stop is a *defined* trap
//! (fuel, host, arithmetic, explicit), never a machine-integrity
//! violation. This is the executable version of the safety claim the
//! paper borrows from type-safe languages.

use extsec_vm::{
    verify, Export, Function, Instr, Machine, MachineLimits, Module, NullHost, Signature, Trap, Ty,
    Value,
};
use proptest::prelude::*;

fn arb_ty() -> impl Strategy<Value = Ty> {
    prop_oneof![Just(Ty::Int), Just(Ty::Bool), Just(Ty::Str)]
}

/// Instructions biased toward *plausible* code so a useful fraction
/// passes the verifier (purely random code almost never verifies).
fn arb_instr(n_strings: u32, n_locals: u16, code_len: u32) -> impl Strategy<Value = Instr> {
    prop_oneof![
        8 => (-8i64..8).prop_map(Instr::PushInt),
        4 => any::<bool>().prop_map(Instr::PushBool),
        3 => (0..n_strings.max(1)).prop_map(Instr::PushStr),
        2 => Just(Instr::Dup),
        2 => Just(Instr::Pop),
        1 => Just(Instr::Swap),
        6 => (0..n_locals.max(1)).prop_map(Instr::LoadLocal),
        4 => (0..n_locals.max(1)).prop_map(Instr::StoreLocal),
        4 => prop_oneof![
            Just(Instr::Add), Just(Instr::Sub), Just(Instr::Mul),
            Just(Instr::Div), Just(Instr::Rem), Just(Instr::Neg)
        ],
        3 => prop_oneof![
            Just(Instr::Eq), Just(Instr::Ne), Just(Instr::Lt),
            Just(Instr::Le), Just(Instr::Gt), Just(Instr::Ge)
        ],
        2 => prop_oneof![Just(Instr::Not), Just(Instr::And), Just(Instr::Or)],
        2 => prop_oneof![Just(Instr::Concat), Just(Instr::StrLen), Just(Instr::IntToStr), Just(Instr::StrToInt)],
        2 => (0..code_len).prop_map(Instr::Jump),
        2 => (0..code_len).prop_map(Instr::JumpIf),
        2 => (0..code_len).prop_map(Instr::JumpIfNot),
        3 => Just(Instr::Return),
        1 => Just(Instr::Trap),
        1 => Just(Instr::Nop),
    ]
}

fn arb_module() -> impl Strategy<Value = Module> {
    let code_len = 24u32;
    (
        proptest::collection::vec(arb_ty(), 0..3), // params
        proptest::option::of(arb_ty()),
        proptest::collection::vec(arb_ty(), 0..3), // extra locals
        proptest::collection::vec(arb_instr(2, 6, code_len), 1..code_len as usize),
    )
        .prop_map(|(params, ret, extra_locals, code)| {
            let sig = Signature::new(params, ret);
            Module {
                name: "fuzz".into(),
                strings: vec!["12".into(), "abc".into()],
                imports: vec![],
                functions: vec![Function {
                    name: "f".into(),
                    sig,
                    extra_locals,
                    code,
                }],
                exports: vec![Export {
                    name: "f".into(),
                    func: 0,
                }],
            }
        })
}

fn args_for(sig: &Signature) -> Vec<Value> {
    sig.params
        .iter()
        .map(|ty| match ty {
            Ty::Int => Value::Int(3),
            Ty::Bool => Value::Bool(true),
            Ty::Str => Value::Str("7".into()),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Verification is total (never panics) and every verified module
    /// executes to a value or a defined trap — `Trap::Internal` is
    /// unreachable.
    #[test]
    fn verified_modules_never_fault_internally(module in arb_module()) {
        let sig = module.functions[0].sig.clone();
        let Ok(verified) = verify(module) else {
            // Rejected code never runs; nothing more to check.
            return Ok(());
        };
        let mut machine = Machine::with_limits(
            &verified,
            MachineLimits { fuel: 10_000, ..MachineLimits::default() },
        );
        match machine.run("f", &args_for(&sig), &mut NullHost) {
            Ok(value) => {
                // The returned value's type matches the signature.
                match (sig.ret, value) {
                    (None, None) => {}
                    (Some(ty), Some(v)) => prop_assert_eq!(v.ty(), ty),
                    (expected, got) => {
                        return Err(TestCaseError::fail(format!(
                            "signature {expected:?} but returned {got:?}"
                        )))
                    }
                }
            }
            Err(Trap::Internal(what)) => {
                return Err(TestCaseError::fail(format!(
                    "verified module faulted internally: {what}"
                )))
            }
            Err(_defined_trap) => {}
        }
    }
}
