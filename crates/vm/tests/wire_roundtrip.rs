//! Property tests: the binary wire format round-trips arbitrary module
//! structure, and the decoder never panics on corrupted input.

use extsec_vm::{decode, encode, Export, Function, ImportDecl, Instr, Module, Signature, Ty};
use proptest::prelude::*;

fn arb_ty() -> impl Strategy<Value = Ty> {
    prop_oneof![Just(Ty::Int), Just(Ty::Bool), Just(Ty::Str)]
}

fn arb_sig() -> impl Strategy<Value = Signature> {
    (
        proptest::collection::vec(arb_ty(), 0..4),
        proptest::option::of(arb_ty()),
    )
        .prop_map(|(params, ret)| Signature::new(params, ret))
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        any::<i64>().prop_map(Instr::PushInt),
        any::<bool>().prop_map(Instr::PushBool),
        (0u32..8).prop_map(Instr::PushStr),
        Just(Instr::Dup),
        Just(Instr::Pop),
        Just(Instr::Swap),
        (0u16..8).prop_map(Instr::LoadLocal),
        (0u16..8).prop_map(Instr::StoreLocal),
        Just(Instr::Add),
        Just(Instr::Sub),
        Just(Instr::Mul),
        Just(Instr::Div),
        Just(Instr::Rem),
        Just(Instr::Neg),
        Just(Instr::Eq),
        Just(Instr::Ne),
        Just(Instr::Lt),
        Just(Instr::Le),
        Just(Instr::Gt),
        Just(Instr::Ge),
        Just(Instr::Not),
        Just(Instr::And),
        Just(Instr::Or),
        Just(Instr::Concat),
        Just(Instr::StrLen),
        Just(Instr::IntToStr),
        Just(Instr::StrToInt),
        (0u32..64).prop_map(Instr::Jump),
        (0u32..64).prop_map(Instr::JumpIf),
        (0u32..64).prop_map(Instr::JumpIfNot),
        (0u32..8).prop_map(Instr::Call),
        (0u32..8).prop_map(Instr::SysCall),
        Just(Instr::Return),
        Just(Instr::Trap),
        Just(Instr::Nop),
    ]
}

fn arb_function() -> impl Strategy<Value = Function> {
    (
        "[a-z][a-z0-9_]{0,8}",
        arb_sig(),
        proptest::collection::vec(arb_ty(), 0..4),
        proptest::collection::vec(arb_instr(), 0..32),
    )
        .prop_map(|(name, sig, extra_locals, code)| Function {
            name,
            sig,
            extra_locals,
            code,
        })
}

fn arb_module() -> impl Strategy<Value = Module> {
    (
        "[a-z][a-z0-9_]{0,8}",
        proptest::collection::vec(".{0,16}", 0..4),
        proptest::collection::vec(("[a-z]{1,6}", "/[a-z/]{1,12}", arb_sig()), 0..3),
        proptest::collection::vec(arb_function(), 0..4),
        proptest::collection::vec(("[a-z]{1,6}", 0u32..4), 0..3),
    )
        .prop_map(|(name, strings, imports, functions, exports)| Module {
            name,
            strings,
            imports: imports
                .into_iter()
                .map(|(alias, path, sig)| ImportDecl { alias, path, sig })
                .collect(),
            functions,
            exports: exports
                .into_iter()
                .map(|(name, func)| Export { name, func })
                .collect(),
        })
}

proptest! {
    /// encode → decode is the identity on arbitrary module structure
    /// (verifiability is irrelevant at the wire layer).
    #[test]
    fn round_trip(module in arb_module()) {
        let bytes = encode(&module);
        let decoded = decode(&bytes);
        prop_assert_eq!(decoded, Ok(module));
    }

    /// Decoding never panics on random bytes (fuzz-lite).
    #[test]
    fn decode_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes);
    }

    /// Decoding never panics on corrupted encodings of real modules.
    #[test]
    fn decode_total_on_corruption(
        module in arb_module(),
        flips in proptest::collection::vec((0usize..4096, any::<u8>()), 1..8),
    ) {
        let mut bytes = encode(&module);
        if bytes.is_empty() {
            return Ok(());
        }
        for (pos, value) in flips {
            let n = bytes.len();
            bytes[pos % n] = value;
        }
        let _ = decode(&bytes);
    }
}
