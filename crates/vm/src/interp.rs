//! The fuel-limited, memory-bounded, preemptible interpreter.
//!
//! Execution is bounded along three independent axes, in the wasmtime
//! spirit of fuel + epoch interruption + a resource limiter:
//!
//! * **Fuel** prices every instruction and bounds total work even when
//!   no wall clock exists (deterministic, replayable).
//! * **Memory accounting** prices every stack slot, local, call frame,
//!   and string byte against [`MachineLimits::memory_bytes`], so a
//!   heap-hungry extension traps with [`Trap::OutOfMemory`] instead of
//!   growing the host's heap.
//! * **Epoch preemption** checks a shared relaxed [`EpochClock`] every
//!   [`MachineLimits::epoch_check_interval`] instructions and traps
//!   with [`Trap::Preempted`] once the deadline passes — the wall-clock
//!   backstop for a miscalibrated fuel price.

use crate::instr::Instr;
use crate::module::ImportDecl;
use crate::types::Value;
use crate::verify::VerifiedModule;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Resource limits for one execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineLimits {
    /// Total instruction budget. Every instruction costs one unit; a
    /// syscall additionally costs [`MachineLimits::syscall_cost`].
    pub fuel: u64,
    /// Maximum call-frame depth.
    pub max_call_depth: usize,
    /// Extra fuel charged per syscall (gates are not free).
    pub syscall_cost: u64,
    /// Per-execution memory budget in accounted bytes: operand-stack
    /// slots, locals, call frames, and string heap bytes all count.
    /// Exceeding it traps with [`Trap::OutOfMemory`].
    pub memory_bytes: u64,
    /// How many instructions may retire between epoch-deadline checks.
    /// Smaller is more responsive, larger is cheaper; the check itself
    /// is one relaxed atomic load. Zero behaves as one.
    pub epoch_check_interval: u32,
}

impl Default for MachineLimits {
    fn default() -> Self {
        MachineLimits {
            fuel: 1_000_000,
            max_call_depth: 256,
            syscall_cost: 16,
            memory_bytes: 1 << 20,
            epoch_check_interval: 128,
        }
    }
}

/// A shared, monotonically increasing epoch counter.
///
/// Clones share the same underlying counter. The interpreter samples it
/// with one relaxed load (amortized over
/// [`MachineLimits::epoch_check_interval`] instructions); a ticker —
/// [`EpochTicker`] or any external driver calling [`EpochClock::tick`] —
/// advances it. Because the counter only moves forward, a deadline
/// comparison never needs stronger ordering than `Relaxed`.
#[derive(Clone, Debug, Default)]
pub struct EpochClock {
    ticks: Arc<AtomicU64>,
}

impl EpochClock {
    /// A fresh clock at epoch zero.
    pub fn new() -> Self {
        EpochClock::default()
    }

    /// The current epoch.
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Advances the epoch by one and returns the new value.
    pub fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// A background thread advancing an [`EpochClock`] at a fixed period.
///
/// Dropping the ticker stops and joins the thread. One ticker can serve
/// any number of machines sharing the clock — the wasmtime idiom of a
/// single `increment_epoch` driver per engine.
pub struct EpochTicker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl EpochTicker {
    /// Spawns a ticker advancing `clock` every `period`.
    pub fn spawn(clock: EpochClock, period: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("extsec-epoch".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    clock.tick();
                }
            })
            .expect("spawn epoch ticker");
        EpochTicker {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for EpochTicker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Accounted size of one operand-stack slot or local (the discriminant
/// plus inline payload; strings add their byte length on top).
const SLOT_COST: u64 = 16;
/// Accounted overhead of one call frame (bookkeeping besides its
/// locals and stack slots, which are priced individually).
const FRAME_COST: u64 = 64;

/// Heap bytes owned by a value beyond its slot (string payloads).
fn heap_cost(v: &Value) -> u64 {
    match v {
        Value::Str(s) => s.len() as u64,
        _ => 0,
    }
}

/// Full accounted cost of a value: its slot plus owned heap bytes.
fn value_cost(v: &Value) -> u64 {
    SLOT_COST + heap_cost(v)
}

/// A runtime trap: why execution stopped abnormally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trap {
    /// The fuel budget was exhausted (the denial-of-service backstop).
    OutOfFuel,
    /// The per-execution memory budget was exhausted (the heap-growth
    /// backstop; see [`MachineLimits::memory_bytes`]).
    OutOfMemory,
    /// The epoch deadline passed (the wall-clock backstop, independent
    /// of fuel; see [`EpochClock`]).
    Preempted,
    /// Integer division or remainder by zero.
    DivideByZero,
    /// `i64::MIN / -1` style overflow in division.
    IntegerOverflow,
    /// The code executed an explicit `trap` instruction.
    Explicit,
    /// The call stack exceeded the configured depth.
    CallDepthExceeded,
    /// The host rejected or failed a syscall (e.g. access denied by the
    /// reference monitor). Carries the host's message.
    Host(String),
    /// The requested export does not exist.
    NoSuchExport(String),
    /// The entry arguments did not match the export's signature.
    BadEntryArgs,
    /// `str_to_int` was applied to a non-numeric string.
    BadParse,
    /// Internal invariant violation — unreachable on verified code.
    Internal(&'static str),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfFuel => write!(f, "out of fuel"),
            Trap::OutOfMemory => write!(f, "out of memory"),
            Trap::Preempted => write!(f, "preempted by epoch deadline"),
            Trap::DivideByZero => write!(f, "division by zero"),
            Trap::IntegerOverflow => write!(f, "integer overflow"),
            Trap::Explicit => write!(f, "explicit trap"),
            Trap::CallDepthExceeded => write!(f, "call depth exceeded"),
            Trap::Host(msg) => write!(f, "host: {msg}"),
            Trap::NoSuchExport(name) => write!(f, "no such export {name:?}"),
            Trap::BadEntryArgs => write!(f, "entry arguments do not match signature"),
            Trap::BadParse => write!(f, "string does not parse as an integer"),
            Trap::Internal(msg) => write!(f, "internal: {msg}"),
        }
    }
}

impl std::error::Error for Trap {}

/// The host side of a syscall gate.
///
/// The extension runtime implements this to route each declared import
/// through the reference monitor and into the target system service. A
/// host error becomes a [`Trap::Host`] in the extension.
pub trait SyscallHost {
    /// Performs the syscall named by `import` with the given arguments.
    ///
    /// On success the return value must match `import.sig.ret` (`None`
    /// for `()` imports); the machine validates this and traps otherwise.
    fn syscall(&mut self, import: &ImportDecl, args: &[Value]) -> Result<Option<Value>, String>;
}

/// A host that rejects every syscall. Useful for pure computations and
/// for testing that verification confines an extension to its imports.
pub struct NullHost;

impl SyscallHost for NullHost {
    fn syscall(&mut self, import: &ImportDecl, _args: &[Value]) -> Result<Option<Value>, String> {
        Err(format!("no host service bound for {:?}", import.path))
    }
}

struct Frame {
    func: usize,
    pc: usize,
    locals: Vec<Value>,
    stack: Vec<Value>,
}

/// An interpreter instance over one verified module.
///
/// See the crate docs for an end-to-end example.
pub struct Machine<'m> {
    verified: &'m VerifiedModule,
    limits: MachineLimits,
    fuel_used: u64,
    mem_used: u64,
    mem_peak: u64,
    epoch: Option<(EpochClock, u64)>,
    epoch_countdown: u32,
}

impl<'m> Machine<'m> {
    /// Creates a machine with default limits.
    pub fn new(verified: &'m VerifiedModule) -> Self {
        Machine::with_limits(verified, MachineLimits::default())
    }

    /// Creates a machine with explicit limits.
    pub fn with_limits(verified: &'m VerifiedModule, limits: MachineLimits) -> Self {
        Machine {
            verified,
            limits,
            fuel_used: 0,
            mem_used: 0,
            mem_peak: 0,
            epoch: None,
            epoch_countdown: 0,
        }
    }

    /// Arms epoch preemption: execution traps with [`Trap::Preempted`]
    /// once `clock` reaches `deadline`. The check is amortized over
    /// [`MachineLimits::epoch_check_interval`] instructions.
    pub fn set_epoch(&mut self, clock: EpochClock, deadline: u64) {
        self.epoch = Some((clock, deadline));
    }

    /// Builder-style [`Machine::set_epoch`].
    pub fn with_epoch(mut self, clock: EpochClock, deadline: u64) -> Self {
        self.set_epoch(clock, deadline);
        self
    }

    /// Disarms epoch preemption.
    pub fn clear_epoch(&mut self) {
        self.epoch = None;
    }

    /// Returns the fuel consumed so far (cumulative across runs).
    pub fn fuel_used(&self) -> u64 {
        self.fuel_used
    }

    /// Accounted bytes currently live (exactly zero after a clean run;
    /// nonzero after a trap, reflecting the state abandoned mid-flight).
    pub fn mem_used(&self) -> u64 {
        self.mem_used
    }

    /// High-water mark of accounted bytes during the most recent run.
    pub fn mem_peak(&self) -> u64 {
        self.mem_peak
    }

    /// Charges `bytes` against the memory budget.
    fn charge(&mut self, bytes: u64) -> Result<(), Trap> {
        let next = self.mem_used.saturating_add(bytes);
        if next > self.limits.memory_bytes {
            // Planted mutant for campaign self-tests: skips the limit
            // check (fail-open). Compiled out unless `fault-injection`
            // is armed AND a scripted mutant names this tag.
            if extsec_faults::fire_mutant("vm.mem.limit_skip").is_none() {
                return Err(Trap::OutOfMemory);
            }
        }
        self.mem_used = next;
        if next > self.mem_peak {
            self.mem_peak = next;
        }
        Ok(())
    }

    /// Releases `bytes` back to the budget.
    fn credit(&mut self, bytes: u64) {
        self.mem_used = self.mem_used.saturating_sub(bytes);
    }

    /// Runs the exported function `name` with `args`.
    pub fn run(
        &mut self,
        name: &str,
        args: &[Value],
        host: &mut dyn SyscallHost,
    ) -> Result<Option<Value>, Trap> {
        let module = self.verified.module();
        let export = module
            .export(name)
            .ok_or_else(|| Trap::NoSuchExport(name.to_string()))?;
        let func_idx = export.func as usize;
        let function = &module.functions[func_idx];
        // Validate entry arguments against the signature.
        if args.len() != function.sig.params.len()
            || args
                .iter()
                .zip(function.sig.params.iter())
                .any(|(v, ty)| v.ty() != *ty)
        {
            return Err(Trap::BadEntryArgs);
        }
        let mut locals: Vec<Value> = args.to_vec();
        locals.extend(function.extra_locals.iter().map(|ty| Value::zero_of(*ty)));
        // Memory accounting is per-execution (fuel stays cumulative):
        // reset, then price the entry frame and its locals.
        self.mem_used = 0;
        self.mem_peak = 0;
        self.epoch_countdown = self.limits.epoch_check_interval.max(1);
        let entry_cost = FRAME_COST + locals.iter().map(value_cost).sum::<u64>();
        self.charge(entry_cost)?;
        let mut frames = vec![Frame {
            func: func_idx,
            pc: 0,
            locals,
            stack: Vec::new(),
        }];

        loop {
            // Charge fuel.
            self.fuel_used += 1;
            if self.fuel_used > self.limits.fuel {
                return Err(Trap::OutOfFuel);
            }
            // Amortized epoch-deadline check: one decrement per
            // instruction, one relaxed load every `epoch_check_interval`.
            self.epoch_countdown -= 1;
            if self.epoch_countdown == 0 {
                self.epoch_countdown = self.limits.epoch_check_interval.max(1);
                if let Some((clock, deadline)) = &self.epoch {
                    if clock.now() >= *deadline {
                        return Err(Trap::Preempted);
                    }
                }
            }
            let frame = frames.last_mut().expect("at least one frame");
            let function = &module.functions[frame.func];
            let instr = function.code[frame.pc];
            frame.pc += 1;
            match instr {
                Instr::PushInt(v) => {
                    self.charge(SLOT_COST)?;
                    frame.stack.push(Value::Int(v));
                }
                Instr::PushBool(v) => {
                    self.charge(SLOT_COST)?;
                    frame.stack.push(Value::Bool(v));
                }
                Instr::PushStr(i) => {
                    let s = &module.strings[i as usize];
                    self.charge(SLOT_COST + s.len() as u64)?;
                    frame.stack.push(Value::Str(s.clone()));
                }
                Instr::Dup => {
                    let top = frame.stack.last().cloned().ok_or(Trap::Internal("dup"))?;
                    self.charge(value_cost(&top))?;
                    frame.stack.push(top);
                }
                Instr::Pop => {
                    let v = frame.stack.pop().ok_or(Trap::Internal("pop"))?;
                    self.credit(value_cost(&v));
                }
                Instr::Swap => {
                    let n = frame.stack.len();
                    if n < 2 {
                        return Err(Trap::Internal("swap"));
                    }
                    frame.stack.swap(n - 1, n - 2);
                }
                Instr::LoadLocal(i) => {
                    let v = frame.locals[i as usize].clone();
                    self.charge(value_cost(&v))?;
                    frame.stack.push(v);
                }
                Instr::StoreLocal(i) => {
                    let v = frame.stack.pop().ok_or(Trap::Internal("store"))?;
                    // The value's heap bytes move from stack to local;
                    // the slot is freed and the old local's heap dies.
                    self.credit(SLOT_COST + heap_cost(&frame.locals[i as usize]));
                    frame.locals[i as usize] = v;
                }
                Instr::Add | Instr::Sub | Instr::Mul => {
                    let b = pop_int(frame)?;
                    let a = pop_int(frame)?;
                    let r = match instr {
                        Instr::Add => a.wrapping_add(b),
                        Instr::Sub => a.wrapping_sub(b),
                        _ => a.wrapping_mul(b),
                    };
                    self.credit(SLOT_COST);
                    frame.stack.push(Value::Int(r));
                }
                Instr::Div | Instr::Rem => {
                    let b = pop_int(frame)?;
                    let a = pop_int(frame)?;
                    if b == 0 {
                        return Err(Trap::DivideByZero);
                    }
                    let r = if matches!(instr, Instr::Div) {
                        a.checked_div(b).ok_or(Trap::IntegerOverflow)?
                    } else {
                        a.checked_rem(b).ok_or(Trap::IntegerOverflow)?
                    };
                    self.credit(SLOT_COST);
                    frame.stack.push(Value::Int(r));
                }
                Instr::Neg => {
                    let a = pop_int(frame)?;
                    frame.stack.push(Value::Int(a.wrapping_neg()));
                }
                Instr::Eq | Instr::Ne => {
                    let b = frame.stack.pop().ok_or(Trap::Internal("eq"))?;
                    let a = frame.stack.pop().ok_or(Trap::Internal("eq"))?;
                    self.credit(SLOT_COST + heap_cost(&a) + heap_cost(&b));
                    let eq = a == b;
                    frame.stack.push(Value::Bool(if matches!(instr, Instr::Eq) {
                        eq
                    } else {
                        !eq
                    }));
                }
                Instr::Lt | Instr::Le | Instr::Gt | Instr::Ge => {
                    let b = pop_int(frame)?;
                    let a = pop_int(frame)?;
                    let r = match instr {
                        Instr::Lt => a < b,
                        Instr::Le => a <= b,
                        Instr::Gt => a > b,
                        _ => a >= b,
                    };
                    self.credit(SLOT_COST);
                    frame.stack.push(Value::Bool(r));
                }
                Instr::Not => {
                    let a = pop_bool(frame)?;
                    frame.stack.push(Value::Bool(!a));
                }
                Instr::And | Instr::Or => {
                    let b = pop_bool(frame)?;
                    let a = pop_bool(frame)?;
                    let r = if matches!(instr, Instr::And) {
                        a && b
                    } else {
                        a || b
                    };
                    self.credit(SLOT_COST);
                    frame.stack.push(Value::Bool(r));
                }
                Instr::Concat => {
                    // Heap bytes are conserved (len a + len b) and one
                    // slot is freed; the growth was priced when the
                    // operands were pushed/loaded.
                    let b = pop_str(frame)?;
                    let mut a = pop_str(frame)?;
                    a.push_str(&b);
                    self.credit(SLOT_COST);
                    frame.stack.push(Value::Str(a));
                }
                Instr::StrLen => {
                    let s = pop_str(frame)?;
                    self.credit(s.len() as u64);
                    frame.stack.push(Value::Int(s.len() as i64));
                }
                Instr::IntToStr => {
                    let a = pop_int(frame)?;
                    let s = a.to_string();
                    self.charge(s.len() as u64)?;
                    frame.stack.push(Value::Str(s));
                }
                Instr::StrToInt => {
                    let s = pop_str(frame)?;
                    let v: i64 = s.trim().parse().map_err(|_| Trap::BadParse)?;
                    self.credit(s.len() as u64);
                    frame.stack.push(Value::Int(v));
                }
                Instr::Jump(target) => frame.pc = target as usize,
                Instr::JumpIf(target) => {
                    self.credit(SLOT_COST);
                    if pop_bool(frame)? {
                        frame.pc = target as usize;
                    }
                }
                Instr::JumpIfNot(target) => {
                    self.credit(SLOT_COST);
                    if !pop_bool(frame)? {
                        frame.pc = target as usize;
                    }
                }
                Instr::Call(i) => {
                    if frames.len() >= self.limits.max_call_depth {
                        return Err(Trap::CallDepthExceeded);
                    }
                    let callee = &module.functions[i as usize];
                    // Argument slots move from the caller's stack into
                    // the callee's locals; only the frame and the
                    // zero-initialized extra locals are new.
                    self.charge(FRAME_COST + callee.extra_locals.len() as u64 * SLOT_COST)?;
                    let n = callee.sig.params.len();
                    let frame = frames.last_mut().expect("frame");
                    let split = frame.stack.len() - n;
                    let mut locals: Vec<Value> = frame.stack.split_off(split);
                    locals.extend(callee.extra_locals.iter().map(|ty| Value::zero_of(*ty)));
                    frames.push(Frame {
                        func: i as usize,
                        pc: 0,
                        locals,
                        stack: Vec::new(),
                    });
                }
                Instr::SysCall(i) => {
                    self.fuel_used += self.limits.syscall_cost;
                    if self.fuel_used > self.limits.fuel {
                        return Err(Trap::OutOfFuel);
                    }
                    let import = &module.imports[i as usize];
                    let n = import.sig.params.len();
                    let frame = frames.last_mut().expect("frame");
                    let split = frame.stack.len() - n;
                    let args: Vec<Value> = frame.stack.split_off(split);
                    let args_cost: u64 = args.iter().map(value_cost).sum();
                    self.credit(args_cost);
                    let result = host.syscall(import, &args).map_err(Trap::Host)?;
                    match (import.sig.ret, result) {
                        (Some(ty), Some(v)) if v.ty() == ty => {
                            let frame = frames.last_mut().expect("frame");
                            self.charge(value_cost(&v))?;
                            frame.stack.push(v);
                        }
                        (None, None) => {}
                        _ => {
                            return Err(Trap::Host(format!(
                                "host returned a value not matching {} for {}",
                                import.sig, import.path
                            )))
                        }
                    }
                }
                Instr::Return => {
                    let finished = frames.pop().expect("frame");
                    let function = &module.functions[finished.func];
                    let mut stack = finished.stack;
                    let ret = match function.sig.ret {
                        Some(_) => Some(stack.pop().ok_or(Trap::Internal("ret"))?),
                        None => None,
                    };
                    // The frame, its locals, and any unconsumed stack
                    // values die; the return value keeps its slot (it
                    // moves to the caller's stack).
                    let freed = FRAME_COST
                        + finished
                            .locals
                            .iter()
                            .chain(stack.iter())
                            .map(value_cost)
                            .sum::<u64>();
                    self.credit(freed);
                    match frames.last_mut() {
                        Some(caller) => {
                            if let Some(v) = ret {
                                caller.stack.push(v);
                            }
                        }
                        None => {
                            if let Some(v) = &ret {
                                self.credit(value_cost(v));
                            }
                            return Ok(ret);
                        }
                    }
                }
                Instr::Trap => return Err(Trap::Explicit),
                Instr::Nop => {}
            }
        }
    }
}

fn pop_int(frame: &mut Frame) -> Result<i64, Trap> {
    match frame.stack.pop() {
        Some(Value::Int(i)) => Ok(i),
        _ => Err(Trap::Internal("expected int")),
    }
}

fn pop_bool(frame: &mut Frame) -> Result<bool, Trap> {
    match frame.stack.pop() {
        Some(Value::Bool(b)) => Ok(b),
        _ => Err(Trap::Internal("expected bool")),
    }
}

fn pop_str(frame: &mut Frame) -> Result<String, Trap> {
    match frame.stack.pop() {
        Some(Value::Str(s)) => Ok(s),
        _ => Err(Trap::Internal("expected str")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Export, Function, Module, Signature};
    use crate::types::Ty;
    use crate::verify::verify;

    fn run_expr(code: Vec<Instr>, ret: Ty) -> Result<Option<Value>, Trap> {
        let module = Module {
            name: "t".into(),
            strings: vec!["ab".into(), "cd".into()],
            imports: vec![],
            functions: vec![Function {
                name: "main".into(),
                sig: Signature::new(vec![], Some(ret)),
                extra_locals: vec![],
                code,
            }],
            exports: vec![Export {
                name: "main".into(),
                func: 0,
            }],
        };
        let verified = verify(module).expect("test module must verify");
        Machine::new(&verified).run("main", &[], &mut NullHost)
    }

    #[test]
    fn arithmetic() {
        let r = run_expr(
            vec![
                Instr::PushInt(6),
                Instr::PushInt(7),
                Instr::Mul,
                Instr::Return,
            ],
            Ty::Int,
        );
        assert_eq!(r, Ok(Some(Value::Int(42))));
    }

    #[test]
    fn division_traps() {
        let r = run_expr(
            vec![
                Instr::PushInt(1),
                Instr::PushInt(0),
                Instr::Div,
                Instr::Return,
            ],
            Ty::Int,
        );
        assert_eq!(r, Err(Trap::DivideByZero));
        let r = run_expr(
            vec![
                Instr::PushInt(i64::MIN),
                Instr::PushInt(-1),
                Instr::Div,
                Instr::Return,
            ],
            Ty::Int,
        );
        assert_eq!(r, Err(Trap::IntegerOverflow));
    }

    #[test]
    fn subtraction_order() {
        let r = run_expr(
            vec![
                Instr::PushInt(10),
                Instr::PushInt(3),
                Instr::Sub,
                Instr::Return,
            ],
            Ty::Int,
        );
        assert_eq!(r, Ok(Some(Value::Int(7))));
    }

    #[test]
    fn comparisons_and_logic() {
        let r = run_expr(
            vec![
                Instr::PushInt(3),
                Instr::PushInt(4),
                Instr::Lt, // true
                Instr::PushBool(false),
                Instr::Or,  // true
                Instr::Not, // false
                Instr::Return,
            ],
            Ty::Bool,
        );
        assert_eq!(r, Ok(Some(Value::Bool(false))));
    }

    #[test]
    fn strings() {
        let r = run_expr(
            vec![
                Instr::PushStr(0),
                Instr::PushStr(1),
                Instr::Concat,
                Instr::Return,
            ],
            Ty::Str,
        );
        assert_eq!(r, Ok(Some(Value::Str("abcd".into()))));
        let r = run_expr(
            vec![
                Instr::PushInt(-42),
                Instr::IntToStr,
                Instr::StrLen,
                Instr::Return,
            ],
            Ty::Int,
        );
        assert_eq!(r, Ok(Some(Value::Int(3))));
    }

    #[test]
    fn loop_terminates_with_fuel() {
        // sum = 0; for i in 0..100 { sum += i }; return sum
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "main".into(),
                sig: Signature::new(vec![], Some(Ty::Int)),
                extra_locals: vec![Ty::Int, Ty::Int],
                code: vec![
                    Instr::PushInt(0),
                    Instr::StoreLocal(0), // i = 0
                    Instr::PushInt(0),
                    Instr::StoreLocal(1), // sum = 0
                    Instr::LoadLocal(0),  // 4: loop head
                    Instr::PushInt(100),
                    Instr::Lt,
                    Instr::JumpIfNot(16),
                    Instr::LoadLocal(1),
                    Instr::LoadLocal(0),
                    Instr::Add,
                    Instr::StoreLocal(1),
                    Instr::LoadLocal(0),
                    Instr::PushInt(1),
                    Instr::Add,
                    Instr::StoreLocal(0),
                    // Oops: offset 16 must be exit; the jump back sits here.
                ],
            }],
            exports: vec![Export {
                name: "main".into(),
                func: 0,
            }],
        };
        let mut module = module;
        module.functions[0].code = vec![
            Instr::PushInt(0),
            Instr::StoreLocal(0),
            Instr::PushInt(0),
            Instr::StoreLocal(1),
            Instr::LoadLocal(0), // 4: loop head
            Instr::PushInt(100),
            Instr::Lt,
            Instr::JumpIfNot(17),
            Instr::LoadLocal(1),
            Instr::LoadLocal(0),
            Instr::Add,
            Instr::StoreLocal(1),
            Instr::LoadLocal(0),
            Instr::PushInt(1),
            Instr::Add,
            Instr::StoreLocal(0),
            Instr::Jump(4),
            Instr::LoadLocal(1), // 17: exit
            Instr::Return,
        ];
        let verified = verify(module).unwrap();
        let mut machine = Machine::new(&verified);
        let r = machine.run("main", &[], &mut NullHost).unwrap();
        assert_eq!(r, Some(Value::Int(4950)));
        assert!(machine.fuel_used() > 100);
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "spin".into(),
                sig: Signature::new(vec![], None),
                extra_locals: vec![],
                code: vec![Instr::Jump(0)],
            }],
            exports: vec![Export {
                name: "spin".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        let mut machine = Machine::with_limits(
            &verified,
            MachineLimits {
                fuel: 1000,
                ..MachineLimits::default()
            },
        );
        assert_eq!(
            machine.run("spin", &[], &mut NullHost),
            Err(Trap::OutOfFuel)
        );
        assert_eq!(machine.fuel_used(), 1001);
    }

    #[test]
    fn calls_and_recursion_depth() {
        // f(n) = n == 0 ? 0 : f(n - 1)
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "f".into(),
                sig: Signature::new(vec![Ty::Int], Some(Ty::Int)),
                extra_locals: vec![],
                code: vec![
                    Instr::LoadLocal(0),
                    Instr::PushInt(0),
                    Instr::Eq,
                    Instr::JumpIfNot(6),
                    Instr::PushInt(0),
                    Instr::Return,
                    Instr::LoadLocal(0), // 6
                    Instr::PushInt(1),
                    Instr::Sub,
                    Instr::Call(0),
                    Instr::Return,
                ],
            }],
            exports: vec![Export {
                name: "f".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        let mut machine = Machine::new(&verified);
        assert_eq!(
            machine.run("f", &[Value::Int(10)], &mut NullHost),
            Ok(Some(Value::Int(0)))
        );
        // Recursion deeper than the limit traps.
        let mut machine = Machine::with_limits(
            &verified,
            MachineLimits {
                max_call_depth: 8,
                ..MachineLimits::default()
            },
        );
        assert_eq!(
            machine.run("f", &[Value::Int(100)], &mut NullHost),
            Err(Trap::CallDepthExceeded)
        );
    }

    #[test]
    fn syscalls_reach_the_host() {
        struct Recorder(Vec<(String, Vec<Value>)>);
        impl SyscallHost for Recorder {
            fn syscall(
                &mut self,
                import: &ImportDecl,
                args: &[Value],
            ) -> Result<Option<Value>, String> {
                self.0.push((import.path.clone(), args.to_vec()));
                Ok(Some(Value::Int(7)))
            }
        }
        let module = Module {
            name: "t".into(),
            strings: vec!["x".into()],
            imports: vec![crate::module::ImportDecl {
                alias: "probe".into(),
                path: "/svc/probe".into(),
                sig: Signature::new(vec![Ty::Str, Ty::Int], Some(Ty::Int)),
            }],
            functions: vec![Function {
                name: "main".into(),
                sig: Signature::new(vec![], Some(Ty::Int)),
                extra_locals: vec![],
                code: vec![
                    Instr::PushStr(0),
                    Instr::PushInt(5),
                    Instr::SysCall(0),
                    Instr::Return,
                ],
            }],
            exports: vec![Export {
                name: "main".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        let mut host = Recorder(Vec::new());
        let mut machine = Machine::new(&verified);
        let r = machine.run("main", &[], &mut host).unwrap();
        assert_eq!(r, Some(Value::Int(7)));
        assert_eq!(host.0.len(), 1);
        assert_eq!(host.0[0].0, "/svc/probe");
        assert_eq!(host.0[0].1, vec![Value::Str("x".into()), Value::Int(5)]);
    }

    #[test]
    fn host_denial_becomes_trap() {
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![crate::module::ImportDecl {
                alias: "deny".into(),
                path: "/svc/deny".into(),
                sig: Signature::new(vec![], None),
            }],
            functions: vec![Function {
                name: "main".into(),
                sig: Signature::new(vec![], None),
                extra_locals: vec![],
                code: vec![Instr::SysCall(0), Instr::Return],
            }],
            exports: vec![Export {
                name: "main".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        let r = Machine::new(&verified).run("main", &[], &mut NullHost);
        assert!(matches!(r, Err(Trap::Host(_))));
    }

    #[test]
    fn host_return_type_is_validated() {
        struct LyingHost;
        impl SyscallHost for LyingHost {
            fn syscall(&mut self, _: &ImportDecl, _: &[Value]) -> Result<Option<Value>, String> {
                Ok(Some(Value::Bool(true))) // import promises int
            }
        }
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![crate::module::ImportDecl {
                alias: "lie".into(),
                path: "/svc/lie".into(),
                sig: Signature::new(vec![], Some(Ty::Int)),
            }],
            functions: vec![Function {
                name: "main".into(),
                sig: Signature::new(vec![], Some(Ty::Int)),
                extra_locals: vec![],
                code: vec![Instr::SysCall(0), Instr::Return],
            }],
            exports: vec![Export {
                name: "main".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        let r = Machine::new(&verified).run("main", &[], &mut LyingHost);
        assert!(matches!(r, Err(Trap::Host(_))));
    }

    #[test]
    fn entry_argument_validation() {
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "f".into(),
                sig: Signature::new(vec![Ty::Int], Some(Ty::Int)),
                extra_locals: vec![],
                code: vec![Instr::LoadLocal(0), Instr::Return],
            }],
            exports: vec![Export {
                name: "f".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        let mut machine = Machine::new(&verified);
        assert_eq!(
            machine.run("f", &[Value::Bool(true)], &mut NullHost),
            Err(Trap::BadEntryArgs)
        );
        assert_eq!(
            machine.run("f", &[], &mut NullHost),
            Err(Trap::BadEntryArgs)
        );
        assert_eq!(
            machine.run("missing", &[], &mut NullHost),
            Err(Trap::NoSuchExport("missing".into()))
        );
    }

    #[test]
    fn explicit_trap() {
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "boom".into(),
                sig: Signature::new(vec![], None),
                extra_locals: vec![],
                code: vec![Instr::Trap],
            }],
            exports: vec![Export {
                name: "boom".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        assert_eq!(
            Machine::new(&verified).run("boom", &[], &mut NullHost),
            Err(Trap::Explicit)
        );
    }

    /// `hog = s; loop { hog = hog + hog }` — doubles its heap footprint
    /// every iteration.
    fn hog_module() -> Module {
        Module {
            name: "hog".into(),
            strings: vec!["abcdefgh".into()],
            imports: vec![],
            functions: vec![Function {
                name: "main".into(),
                sig: Signature::new(vec![], None),
                extra_locals: vec![Ty::Str],
                code: vec![
                    Instr::PushStr(0),
                    Instr::StoreLocal(0),
                    Instr::LoadLocal(0), // 2: loop head
                    Instr::LoadLocal(0),
                    Instr::Concat,
                    Instr::StoreLocal(0),
                    Instr::Jump(2),
                ],
            }],
            exports: vec![Export {
                name: "main".into(),
                func: 0,
            }],
        }
    }

    fn spin_module() -> Module {
        Module {
            name: "spin".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "spin".into(),
                sig: Signature::new(vec![], None),
                extra_locals: vec![],
                code: vec![Instr::Jump(0)],
            }],
            exports: vec![Export {
                name: "spin".into(),
                func: 0,
            }],
        }
    }

    #[test]
    fn memory_hog_traps_out_of_memory() {
        let verified = verify(hog_module()).unwrap();
        let mut machine = Machine::with_limits(
            &verified,
            MachineLimits {
                fuel: u64::MAX / 2,
                memory_bytes: 64 * 1024,
                ..MachineLimits::default()
            },
        );
        assert_eq!(
            machine.run("main", &[], &mut NullHost),
            Err(Trap::OutOfMemory)
        );
        // Doubling from 8 bytes reaches 64 KiB in ~13 iterations: the
        // budget cut it off long before fuel would have.
        assert!(machine.fuel_used() < 1000, "fuel {}", machine.fuel_used());
        assert!(machine.mem_peak() <= 3 * 64 * 1024);
    }

    #[test]
    fn clean_run_accounts_back_to_zero() {
        // Strings, arithmetic, a call, and conversions: every accounted
        // byte must be credited back by the time the entry returns.
        let module = Module {
            name: "t".into(),
            strings: vec!["x".into()],
            imports: vec![],
            functions: vec![
                Function {
                    name: "main".into(),
                    sig: Signature::new(vec![], Some(Ty::Int)),
                    extra_locals: vec![Ty::Str],
                    code: vec![
                        Instr::PushStr(0),
                        Instr::PushInt(1234),
                        Instr::IntToStr,
                        Instr::Concat,
                        Instr::StoreLocal(0),
                        Instr::LoadLocal(0),
                        Instr::Call(1),
                        Instr::Return,
                    ],
                },
                Function {
                    name: "len".into(),
                    sig: Signature::new(vec![Ty::Str], Some(Ty::Int)),
                    extra_locals: vec![],
                    code: vec![Instr::LoadLocal(0), Instr::StrLen, Instr::Return],
                },
            ],
            exports: vec![Export {
                name: "main".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        let mut machine = Machine::new(&verified);
        let r = machine.run("main", &[], &mut NullHost).unwrap();
        assert_eq!(r, Some(Value::Int(5)));
        assert_eq!(machine.mem_used(), 0, "accounting must balance");
        assert!(machine.mem_peak() > 0);
    }

    #[test]
    fn infinite_loop_preempted_by_epoch() {
        let verified = verify(spin_module()).unwrap();
        // Arbitrarily large fuel: only the epoch can stop this loop.
        let clock = EpochClock::new();
        let mut machine = Machine::with_limits(
            &verified,
            MachineLimits {
                fuel: u64::MAX / 2,
                epoch_check_interval: 16,
                ..MachineLimits::default()
            },
        );
        machine.set_epoch(clock.clone(), clock.now() + 1);
        clock.tick();
        assert_eq!(
            machine.run("spin", &[], &mut NullHost),
            Err(Trap::Preempted)
        );
        // The check is amortized: it fired at the first interval.
        assert!(machine.fuel_used() <= 16);
    }

    #[test]
    fn epoch_ticker_preempts_on_wall_clock() {
        let verified = verify(spin_module()).unwrap();
        let clock = EpochClock::new();
        let _ticker = EpochTicker::spawn(clock.clone(), Duration::from_millis(1));
        let mut machine = Machine::with_limits(
            &verified,
            MachineLimits {
                fuel: u64::MAX / 2,
                ..MachineLimits::default()
            },
        )
        .with_epoch(clock.clone(), clock.now() + 2);
        assert_eq!(
            machine.run("spin", &[], &mut NullHost),
            Err(Trap::Preempted)
        );
    }

    #[test]
    fn epoch_unarmed_still_bounded_by_fuel() {
        let verified = verify(spin_module()).unwrap();
        let mut machine = Machine::with_limits(
            &verified,
            MachineLimits {
                fuel: 1000,
                ..MachineLimits::default()
            },
        );
        assert_eq!(
            machine.run("spin", &[], &mut NullHost),
            Err(Trap::OutOfFuel)
        );
    }

    #[test]
    fn extra_locals_zero_initialized() {
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "f".into(),
                sig: Signature::new(vec![], Some(Ty::Int)),
                extra_locals: vec![Ty::Int],
                code: vec![Instr::LoadLocal(0), Instr::Return],
            }],
            exports: vec![Export {
                name: "f".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        assert_eq!(
            Machine::new(&verified).run("f", &[], &mut NullHost),
            Ok(Some(Value::Int(0)))
        );
    }
}
