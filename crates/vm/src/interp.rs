//! The fuel-limited interpreter.

use crate::instr::Instr;
use crate::module::ImportDecl;
use crate::types::Value;
use crate::verify::VerifiedModule;
use std::fmt;

/// Resource limits for one execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineLimits {
    /// Total instruction budget. Every instruction costs one unit; a
    /// syscall additionally costs [`MachineLimits::syscall_cost`].
    pub fuel: u64,
    /// Maximum call-frame depth.
    pub max_call_depth: usize,
    /// Extra fuel charged per syscall (gates are not free).
    pub syscall_cost: u64,
}

impl Default for MachineLimits {
    fn default() -> Self {
        MachineLimits {
            fuel: 1_000_000,
            max_call_depth: 256,
            syscall_cost: 16,
        }
    }
}

/// A runtime trap: why execution stopped abnormally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trap {
    /// The fuel budget was exhausted (the denial-of-service backstop).
    OutOfFuel,
    /// Integer division or remainder by zero.
    DivideByZero,
    /// `i64::MIN / -1` style overflow in division.
    IntegerOverflow,
    /// The code executed an explicit `trap` instruction.
    Explicit,
    /// The call stack exceeded the configured depth.
    CallDepthExceeded,
    /// The host rejected or failed a syscall (e.g. access denied by the
    /// reference monitor). Carries the host's message.
    Host(String),
    /// The requested export does not exist.
    NoSuchExport(String),
    /// The entry arguments did not match the export's signature.
    BadEntryArgs,
    /// `str_to_int` was applied to a non-numeric string.
    BadParse,
    /// Internal invariant violation — unreachable on verified code.
    Internal(&'static str),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfFuel => write!(f, "out of fuel"),
            Trap::DivideByZero => write!(f, "division by zero"),
            Trap::IntegerOverflow => write!(f, "integer overflow"),
            Trap::Explicit => write!(f, "explicit trap"),
            Trap::CallDepthExceeded => write!(f, "call depth exceeded"),
            Trap::Host(msg) => write!(f, "host: {msg}"),
            Trap::NoSuchExport(name) => write!(f, "no such export {name:?}"),
            Trap::BadEntryArgs => write!(f, "entry arguments do not match signature"),
            Trap::BadParse => write!(f, "string does not parse as an integer"),
            Trap::Internal(msg) => write!(f, "internal: {msg}"),
        }
    }
}

impl std::error::Error for Trap {}

/// The host side of a syscall gate.
///
/// The extension runtime implements this to route each declared import
/// through the reference monitor and into the target system service. A
/// host error becomes a [`Trap::Host`] in the extension.
pub trait SyscallHost {
    /// Performs the syscall named by `import` with the given arguments.
    ///
    /// On success the return value must match `import.sig.ret` (`None`
    /// for `()` imports); the machine validates this and traps otherwise.
    fn syscall(&mut self, import: &ImportDecl, args: &[Value]) -> Result<Option<Value>, String>;
}

/// A host that rejects every syscall. Useful for pure computations and
/// for testing that verification confines an extension to its imports.
pub struct NullHost;

impl SyscallHost for NullHost {
    fn syscall(&mut self, import: &ImportDecl, _args: &[Value]) -> Result<Option<Value>, String> {
        Err(format!("no host service bound for {:?}", import.path))
    }
}

struct Frame {
    func: usize,
    pc: usize,
    locals: Vec<Value>,
    stack: Vec<Value>,
}

/// An interpreter instance over one verified module.
///
/// See the crate docs for an end-to-end example.
pub struct Machine<'m> {
    verified: &'m VerifiedModule,
    limits: MachineLimits,
    fuel_used: u64,
}

impl<'m> Machine<'m> {
    /// Creates a machine with default limits.
    pub fn new(verified: &'m VerifiedModule) -> Self {
        Machine::with_limits(verified, MachineLimits::default())
    }

    /// Creates a machine with explicit limits.
    pub fn with_limits(verified: &'m VerifiedModule, limits: MachineLimits) -> Self {
        Machine {
            verified,
            limits,
            fuel_used: 0,
        }
    }

    /// Returns the fuel consumed so far (cumulative across runs).
    pub fn fuel_used(&self) -> u64 {
        self.fuel_used
    }

    /// Runs the exported function `name` with `args`.
    pub fn run(
        &mut self,
        name: &str,
        args: &[Value],
        host: &mut dyn SyscallHost,
    ) -> Result<Option<Value>, Trap> {
        let module = self.verified.module();
        let export = module
            .export(name)
            .ok_or_else(|| Trap::NoSuchExport(name.to_string()))?;
        let func_idx = export.func as usize;
        let function = &module.functions[func_idx];
        // Validate entry arguments against the signature.
        if args.len() != function.sig.params.len()
            || args
                .iter()
                .zip(function.sig.params.iter())
                .any(|(v, ty)| v.ty() != *ty)
        {
            return Err(Trap::BadEntryArgs);
        }
        let mut locals: Vec<Value> = args.to_vec();
        locals.extend(function.extra_locals.iter().map(|ty| Value::zero_of(*ty)));
        let mut frames = vec![Frame {
            func: func_idx,
            pc: 0,
            locals,
            stack: Vec::new(),
        }];

        loop {
            // Charge fuel.
            self.fuel_used += 1;
            if self.fuel_used > self.limits.fuel {
                return Err(Trap::OutOfFuel);
            }
            let frame = frames.last_mut().expect("at least one frame");
            let function = &module.functions[frame.func];
            let instr = function.code[frame.pc];
            frame.pc += 1;
            match instr {
                Instr::PushInt(v) => frame.stack.push(Value::Int(v)),
                Instr::PushBool(v) => frame.stack.push(Value::Bool(v)),
                Instr::PushStr(i) => frame
                    .stack
                    .push(Value::Str(module.strings[i as usize].clone())),
                Instr::Dup => {
                    let top = frame.stack.last().cloned().ok_or(Trap::Internal("dup"))?;
                    frame.stack.push(top);
                }
                Instr::Pop => {
                    frame.stack.pop().ok_or(Trap::Internal("pop"))?;
                }
                Instr::Swap => {
                    let n = frame.stack.len();
                    if n < 2 {
                        return Err(Trap::Internal("swap"));
                    }
                    frame.stack.swap(n - 1, n - 2);
                }
                Instr::LoadLocal(i) => {
                    let v = frame.locals[i as usize].clone();
                    frame.stack.push(v);
                }
                Instr::StoreLocal(i) => {
                    let v = frame.stack.pop().ok_or(Trap::Internal("store"))?;
                    frame.locals[i as usize] = v;
                }
                Instr::Add | Instr::Sub | Instr::Mul => {
                    let b = pop_int(frame)?;
                    let a = pop_int(frame)?;
                    let r = match instr {
                        Instr::Add => a.wrapping_add(b),
                        Instr::Sub => a.wrapping_sub(b),
                        _ => a.wrapping_mul(b),
                    };
                    frame.stack.push(Value::Int(r));
                }
                Instr::Div | Instr::Rem => {
                    let b = pop_int(frame)?;
                    let a = pop_int(frame)?;
                    if b == 0 {
                        return Err(Trap::DivideByZero);
                    }
                    let r = if matches!(instr, Instr::Div) {
                        a.checked_div(b).ok_or(Trap::IntegerOverflow)?
                    } else {
                        a.checked_rem(b).ok_or(Trap::IntegerOverflow)?
                    };
                    frame.stack.push(Value::Int(r));
                }
                Instr::Neg => {
                    let a = pop_int(frame)?;
                    frame.stack.push(Value::Int(a.wrapping_neg()));
                }
                Instr::Eq | Instr::Ne => {
                    let b = frame.stack.pop().ok_or(Trap::Internal("eq"))?;
                    let a = frame.stack.pop().ok_or(Trap::Internal("eq"))?;
                    let eq = a == b;
                    frame.stack.push(Value::Bool(if matches!(instr, Instr::Eq) {
                        eq
                    } else {
                        !eq
                    }));
                }
                Instr::Lt | Instr::Le | Instr::Gt | Instr::Ge => {
                    let b = pop_int(frame)?;
                    let a = pop_int(frame)?;
                    let r = match instr {
                        Instr::Lt => a < b,
                        Instr::Le => a <= b,
                        Instr::Gt => a > b,
                        _ => a >= b,
                    };
                    frame.stack.push(Value::Bool(r));
                }
                Instr::Not => {
                    let a = pop_bool(frame)?;
                    frame.stack.push(Value::Bool(!a));
                }
                Instr::And | Instr::Or => {
                    let b = pop_bool(frame)?;
                    let a = pop_bool(frame)?;
                    let r = if matches!(instr, Instr::And) {
                        a && b
                    } else {
                        a || b
                    };
                    frame.stack.push(Value::Bool(r));
                }
                Instr::Concat => {
                    let b = pop_str(frame)?;
                    let mut a = pop_str(frame)?;
                    a.push_str(&b);
                    frame.stack.push(Value::Str(a));
                }
                Instr::StrLen => {
                    let s = pop_str(frame)?;
                    frame.stack.push(Value::Int(s.len() as i64));
                }
                Instr::IntToStr => {
                    let a = pop_int(frame)?;
                    frame.stack.push(Value::Str(a.to_string()));
                }
                Instr::StrToInt => {
                    let s = pop_str(frame)?;
                    let v: i64 = s.trim().parse().map_err(|_| Trap::BadParse)?;
                    frame.stack.push(Value::Int(v));
                }
                Instr::Jump(target) => frame.pc = target as usize,
                Instr::JumpIf(target) => {
                    if pop_bool(frame)? {
                        frame.pc = target as usize;
                    }
                }
                Instr::JumpIfNot(target) => {
                    if !pop_bool(frame)? {
                        frame.pc = target as usize;
                    }
                }
                Instr::Call(i) => {
                    if frames.len() >= self.limits.max_call_depth {
                        return Err(Trap::CallDepthExceeded);
                    }
                    let callee = &module.functions[i as usize];
                    let n = callee.sig.params.len();
                    let frame = frames.last_mut().expect("frame");
                    let split = frame.stack.len() - n;
                    let mut locals: Vec<Value> = frame.stack.split_off(split);
                    locals.extend(callee.extra_locals.iter().map(|ty| Value::zero_of(*ty)));
                    frames.push(Frame {
                        func: i as usize,
                        pc: 0,
                        locals,
                        stack: Vec::new(),
                    });
                }
                Instr::SysCall(i) => {
                    self.fuel_used += self.limits.syscall_cost;
                    if self.fuel_used > self.limits.fuel {
                        return Err(Trap::OutOfFuel);
                    }
                    let import = &module.imports[i as usize];
                    let n = import.sig.params.len();
                    let frame = frames.last_mut().expect("frame");
                    let split = frame.stack.len() - n;
                    let args: Vec<Value> = frame.stack.split_off(split);
                    let result = host.syscall(import, &args).map_err(Trap::Host)?;
                    match (import.sig.ret, result) {
                        (Some(ty), Some(v)) if v.ty() == ty => frame.stack.push(v),
                        (None, None) => {}
                        _ => {
                            return Err(Trap::Host(format!(
                                "host returned a value not matching {} for {}",
                                import.sig, import.path
                            )))
                        }
                    }
                }
                Instr::Return => {
                    let finished = frames.pop().expect("frame");
                    let function = &module.functions[finished.func];
                    let ret = match function.sig.ret {
                        Some(_) => Some(
                            finished
                                .stack
                                .into_iter()
                                .next_back()
                                .ok_or(Trap::Internal("ret"))?,
                        ),
                        None => None,
                    };
                    match frames.last_mut() {
                        Some(caller) => {
                            if let Some(v) = ret {
                                caller.stack.push(v);
                            }
                        }
                        None => return Ok(ret),
                    }
                }
                Instr::Trap => return Err(Trap::Explicit),
                Instr::Nop => {}
            }
        }
    }
}

fn pop_int(frame: &mut Frame) -> Result<i64, Trap> {
    match frame.stack.pop() {
        Some(Value::Int(i)) => Ok(i),
        _ => Err(Trap::Internal("expected int")),
    }
}

fn pop_bool(frame: &mut Frame) -> Result<bool, Trap> {
    match frame.stack.pop() {
        Some(Value::Bool(b)) => Ok(b),
        _ => Err(Trap::Internal("expected bool")),
    }
}

fn pop_str(frame: &mut Frame) -> Result<String, Trap> {
    match frame.stack.pop() {
        Some(Value::Str(s)) => Ok(s),
        _ => Err(Trap::Internal("expected str")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Export, Function, Module, Signature};
    use crate::types::Ty;
    use crate::verify::verify;

    fn run_expr(code: Vec<Instr>, ret: Ty) -> Result<Option<Value>, Trap> {
        let module = Module {
            name: "t".into(),
            strings: vec!["ab".into(), "cd".into()],
            imports: vec![],
            functions: vec![Function {
                name: "main".into(),
                sig: Signature::new(vec![], Some(ret)),
                extra_locals: vec![],
                code,
            }],
            exports: vec![Export {
                name: "main".into(),
                func: 0,
            }],
        };
        let verified = verify(module).expect("test module must verify");
        Machine::new(&verified).run("main", &[], &mut NullHost)
    }

    #[test]
    fn arithmetic() {
        let r = run_expr(
            vec![
                Instr::PushInt(6),
                Instr::PushInt(7),
                Instr::Mul,
                Instr::Return,
            ],
            Ty::Int,
        );
        assert_eq!(r, Ok(Some(Value::Int(42))));
    }

    #[test]
    fn division_traps() {
        let r = run_expr(
            vec![
                Instr::PushInt(1),
                Instr::PushInt(0),
                Instr::Div,
                Instr::Return,
            ],
            Ty::Int,
        );
        assert_eq!(r, Err(Trap::DivideByZero));
        let r = run_expr(
            vec![
                Instr::PushInt(i64::MIN),
                Instr::PushInt(-1),
                Instr::Div,
                Instr::Return,
            ],
            Ty::Int,
        );
        assert_eq!(r, Err(Trap::IntegerOverflow));
    }

    #[test]
    fn subtraction_order() {
        let r = run_expr(
            vec![
                Instr::PushInt(10),
                Instr::PushInt(3),
                Instr::Sub,
                Instr::Return,
            ],
            Ty::Int,
        );
        assert_eq!(r, Ok(Some(Value::Int(7))));
    }

    #[test]
    fn comparisons_and_logic() {
        let r = run_expr(
            vec![
                Instr::PushInt(3),
                Instr::PushInt(4),
                Instr::Lt, // true
                Instr::PushBool(false),
                Instr::Or,  // true
                Instr::Not, // false
                Instr::Return,
            ],
            Ty::Bool,
        );
        assert_eq!(r, Ok(Some(Value::Bool(false))));
    }

    #[test]
    fn strings() {
        let r = run_expr(
            vec![
                Instr::PushStr(0),
                Instr::PushStr(1),
                Instr::Concat,
                Instr::Return,
            ],
            Ty::Str,
        );
        assert_eq!(r, Ok(Some(Value::Str("abcd".into()))));
        let r = run_expr(
            vec![
                Instr::PushInt(-42),
                Instr::IntToStr,
                Instr::StrLen,
                Instr::Return,
            ],
            Ty::Int,
        );
        assert_eq!(r, Ok(Some(Value::Int(3))));
    }

    #[test]
    fn loop_terminates_with_fuel() {
        // sum = 0; for i in 0..100 { sum += i }; return sum
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "main".into(),
                sig: Signature::new(vec![], Some(Ty::Int)),
                extra_locals: vec![Ty::Int, Ty::Int],
                code: vec![
                    Instr::PushInt(0),
                    Instr::StoreLocal(0), // i = 0
                    Instr::PushInt(0),
                    Instr::StoreLocal(1), // sum = 0
                    Instr::LoadLocal(0),  // 4: loop head
                    Instr::PushInt(100),
                    Instr::Lt,
                    Instr::JumpIfNot(16),
                    Instr::LoadLocal(1),
                    Instr::LoadLocal(0),
                    Instr::Add,
                    Instr::StoreLocal(1),
                    Instr::LoadLocal(0),
                    Instr::PushInt(1),
                    Instr::Add,
                    Instr::StoreLocal(0),
                    // Oops: offset 16 must be exit; the jump back sits here.
                ],
            }],
            exports: vec![Export {
                name: "main".into(),
                func: 0,
            }],
        };
        let mut module = module;
        module.functions[0].code = vec![
            Instr::PushInt(0),
            Instr::StoreLocal(0),
            Instr::PushInt(0),
            Instr::StoreLocal(1),
            Instr::LoadLocal(0), // 4: loop head
            Instr::PushInt(100),
            Instr::Lt,
            Instr::JumpIfNot(17),
            Instr::LoadLocal(1),
            Instr::LoadLocal(0),
            Instr::Add,
            Instr::StoreLocal(1),
            Instr::LoadLocal(0),
            Instr::PushInt(1),
            Instr::Add,
            Instr::StoreLocal(0),
            Instr::Jump(4),
            Instr::LoadLocal(1), // 17: exit
            Instr::Return,
        ];
        let verified = verify(module).unwrap();
        let mut machine = Machine::new(&verified);
        let r = machine.run("main", &[], &mut NullHost).unwrap();
        assert_eq!(r, Some(Value::Int(4950)));
        assert!(machine.fuel_used() > 100);
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "spin".into(),
                sig: Signature::new(vec![], None),
                extra_locals: vec![],
                code: vec![Instr::Jump(0)],
            }],
            exports: vec![Export {
                name: "spin".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        let mut machine = Machine::with_limits(
            &verified,
            MachineLimits {
                fuel: 1000,
                ..MachineLimits::default()
            },
        );
        assert_eq!(
            machine.run("spin", &[], &mut NullHost),
            Err(Trap::OutOfFuel)
        );
        assert_eq!(machine.fuel_used(), 1001);
    }

    #[test]
    fn calls_and_recursion_depth() {
        // f(n) = n == 0 ? 0 : f(n - 1)
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "f".into(),
                sig: Signature::new(vec![Ty::Int], Some(Ty::Int)),
                extra_locals: vec![],
                code: vec![
                    Instr::LoadLocal(0),
                    Instr::PushInt(0),
                    Instr::Eq,
                    Instr::JumpIfNot(6),
                    Instr::PushInt(0),
                    Instr::Return,
                    Instr::LoadLocal(0), // 6
                    Instr::PushInt(1),
                    Instr::Sub,
                    Instr::Call(0),
                    Instr::Return,
                ],
            }],
            exports: vec![Export {
                name: "f".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        let mut machine = Machine::new(&verified);
        assert_eq!(
            machine.run("f", &[Value::Int(10)], &mut NullHost),
            Ok(Some(Value::Int(0)))
        );
        // Recursion deeper than the limit traps.
        let mut machine = Machine::with_limits(
            &verified,
            MachineLimits {
                max_call_depth: 8,
                ..MachineLimits::default()
            },
        );
        assert_eq!(
            machine.run("f", &[Value::Int(100)], &mut NullHost),
            Err(Trap::CallDepthExceeded)
        );
    }

    #[test]
    fn syscalls_reach_the_host() {
        struct Recorder(Vec<(String, Vec<Value>)>);
        impl SyscallHost for Recorder {
            fn syscall(
                &mut self,
                import: &ImportDecl,
                args: &[Value],
            ) -> Result<Option<Value>, String> {
                self.0.push((import.path.clone(), args.to_vec()));
                Ok(Some(Value::Int(7)))
            }
        }
        let module = Module {
            name: "t".into(),
            strings: vec!["x".into()],
            imports: vec![crate::module::ImportDecl {
                alias: "probe".into(),
                path: "/svc/probe".into(),
                sig: Signature::new(vec![Ty::Str, Ty::Int], Some(Ty::Int)),
            }],
            functions: vec![Function {
                name: "main".into(),
                sig: Signature::new(vec![], Some(Ty::Int)),
                extra_locals: vec![],
                code: vec![
                    Instr::PushStr(0),
                    Instr::PushInt(5),
                    Instr::SysCall(0),
                    Instr::Return,
                ],
            }],
            exports: vec![Export {
                name: "main".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        let mut host = Recorder(Vec::new());
        let mut machine = Machine::new(&verified);
        let r = machine.run("main", &[], &mut host).unwrap();
        assert_eq!(r, Some(Value::Int(7)));
        assert_eq!(host.0.len(), 1);
        assert_eq!(host.0[0].0, "/svc/probe");
        assert_eq!(host.0[0].1, vec![Value::Str("x".into()), Value::Int(5)]);
    }

    #[test]
    fn host_denial_becomes_trap() {
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![crate::module::ImportDecl {
                alias: "deny".into(),
                path: "/svc/deny".into(),
                sig: Signature::new(vec![], None),
            }],
            functions: vec![Function {
                name: "main".into(),
                sig: Signature::new(vec![], None),
                extra_locals: vec![],
                code: vec![Instr::SysCall(0), Instr::Return],
            }],
            exports: vec![Export {
                name: "main".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        let r = Machine::new(&verified).run("main", &[], &mut NullHost);
        assert!(matches!(r, Err(Trap::Host(_))));
    }

    #[test]
    fn host_return_type_is_validated() {
        struct LyingHost;
        impl SyscallHost for LyingHost {
            fn syscall(&mut self, _: &ImportDecl, _: &[Value]) -> Result<Option<Value>, String> {
                Ok(Some(Value::Bool(true))) // import promises int
            }
        }
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![crate::module::ImportDecl {
                alias: "lie".into(),
                path: "/svc/lie".into(),
                sig: Signature::new(vec![], Some(Ty::Int)),
            }],
            functions: vec![Function {
                name: "main".into(),
                sig: Signature::new(vec![], Some(Ty::Int)),
                extra_locals: vec![],
                code: vec![Instr::SysCall(0), Instr::Return],
            }],
            exports: vec![Export {
                name: "main".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        let r = Machine::new(&verified).run("main", &[], &mut LyingHost);
        assert!(matches!(r, Err(Trap::Host(_))));
    }

    #[test]
    fn entry_argument_validation() {
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "f".into(),
                sig: Signature::new(vec![Ty::Int], Some(Ty::Int)),
                extra_locals: vec![],
                code: vec![Instr::LoadLocal(0), Instr::Return],
            }],
            exports: vec![Export {
                name: "f".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        let mut machine = Machine::new(&verified);
        assert_eq!(
            machine.run("f", &[Value::Bool(true)], &mut NullHost),
            Err(Trap::BadEntryArgs)
        );
        assert_eq!(
            machine.run("f", &[], &mut NullHost),
            Err(Trap::BadEntryArgs)
        );
        assert_eq!(
            machine.run("missing", &[], &mut NullHost),
            Err(Trap::NoSuchExport("missing".into()))
        );
    }

    #[test]
    fn explicit_trap() {
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "boom".into(),
                sig: Signature::new(vec![], None),
                extra_locals: vec![],
                code: vec![Instr::Trap],
            }],
            exports: vec![Export {
                name: "boom".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        assert_eq!(
            Machine::new(&verified).run("boom", &[], &mut NullHost),
            Err(Trap::Explicit)
        );
    }

    #[test]
    fn extra_locals_zero_initialized() {
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "f".into(),
                sig: Signature::new(vec![], Some(Ty::Int)),
                extra_locals: vec![Ty::Int],
                code: vec![Instr::LoadLocal(0), Instr::Return],
            }],
            exports: vec![Export {
                name: "f".into(),
                func: 0,
            }],
        };
        let verified = verify(module).unwrap();
        assert_eq!(
            Machine::new(&verified).run("f", &[], &mut NullHost),
            Ok(Some(Value::Int(0)))
        );
    }
}
