//! Value and type domains of the extension bytecode.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The static type of a stack slot or local.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// Immutable string.
    Str,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Int => "int",
            Ty::Bool => "bool",
            Ty::Str => "str",
        };
        f.write_str(s)
    }
}

/// A runtime value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Immutable string.
    Str(String),
}

impl Value {
    /// Returns the value's type.
    pub fn ty(&self) -> Ty {
        match self {
            Value::Int(_) => Ty::Int,
            Value::Bool(_) => Ty::Bool,
            Value::Str(_) => Ty::Str,
        }
    }

    /// Returns the default (zero) value of a type.
    pub fn zero_of(ty: Ty) -> Value {
        match ty {
            Ty::Int => Value::Int(0),
            Ty::Bool => Value::Bool(false),
            Ty::Str => Value::Str(String::new()),
        }
    }

    /// Extracts an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts a boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts a string slice, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types() {
        assert_eq!(Value::Int(1).ty(), Ty::Int);
        assert_eq!(Value::Bool(true).ty(), Ty::Bool);
        assert_eq!(Value::Str("x".into()).ty(), Ty::Str);
    }

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero_of(Ty::Int), Value::Int(0));
        assert_eq!(Value::zero_of(Ty::Bool), Value::Bool(false));
        assert_eq!(Value::zero_of(Ty::Str), Value::Str(String::new()));
    }

    #[test]
    fn extractors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_bool(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Str("a".into()).as_int(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::Str("hi".into()).to_string(), "\"hi\"");
        assert_eq!(Ty::Int.to_string(), "int");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }
}
