//! The binary module format.
//!
//! Extensions travel between machines (the paper's motivating setting is
//! applets fetched over the web), so modules need a compact, versioned
//! wire encoding — the role slim binaries play for Juice in the paper's
//! survey. The format is deliberately simple:
//!
//! ```text
//! magic "XSEC" | version u16 | name | strings | imports | functions | exports
//! ```
//!
//! Integers are little-endian with varint (LEB128) lengths; strings are
//! UTF-8 length-prefixed. Decoding is fully validating (no trust in the
//! producer: truncation, bad tags, over-long lengths and non-UTF-8 all
//! yield typed errors) — and decoding is *not* verification: a decoded
//! [`Module`] still has to pass [`crate::verify()`] before it can run.

use crate::instr::Instr;
use crate::module::{Export, Function, ImportDecl, Module, Signature};
use crate::types::Ty;
use std::fmt;

/// The four magic bytes opening every encoded module.
pub const MAGIC: &[u8; 4] = b"XSEC";
/// The current format version.
pub const VERSION: u16 = 1;
/// Upper bound on any single collection length in the wire format,
/// guarding length-bomb inputs.
pub const MAX_LEN: usize = 1 << 20;

/// Errors from decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input does not start with [`MAGIC`].
    BadMagic,
    /// The version is unsupported.
    BadVersion(u16),
    /// The input ended prematurely.
    Truncated,
    /// A length field exceeds [`MAX_LEN`].
    LengthBomb(u64),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// An unknown type or instruction tag.
    BadTag(u8),
    /// Trailing bytes after the module.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad magic (not an extsec module)"),
            WireError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            WireError::Truncated => write!(f, "truncated module"),
            WireError::LengthBomb(n) => write!(f, "length {n} exceeds limit"),
            WireError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            WireError::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------

struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Unsigned LEB128.
    fn uleb(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.out.push(byte);
                return;
            }
            self.out.push(byte | 0x80);
        }
    }

    /// Signed LEB128 (zigzag).
    fn sleb(&mut self, v: i64) {
        self.uleb(((v << 1) ^ (v >> 63)) as u64);
    }

    fn str(&mut self, s: &str) {
        self.uleb(s.len() as u64);
        self.out.extend_from_slice(s.as_bytes());
    }

    fn ty(&mut self, ty: Ty) {
        self.u8(match ty {
            Ty::Int => 0,
            Ty::Bool => 1,
            Ty::Str => 2,
        });
    }

    fn sig(&mut self, sig: &Signature) {
        self.uleb(sig.params.len() as u64);
        for &p in &sig.params {
            self.ty(p);
        }
        match sig.ret {
            None => self.u8(0xff),
            Some(ty) => self.ty(ty),
        }
    }

    fn instr(&mut self, instr: Instr) {
        match instr {
            Instr::PushInt(v) => {
                self.u8(0x01);
                self.sleb(v);
            }
            Instr::PushBool(v) => {
                self.u8(0x02);
                self.u8(v as u8);
            }
            Instr::PushStr(i) => {
                self.u8(0x03);
                self.uleb(i as u64);
            }
            Instr::Dup => self.u8(0x04),
            Instr::Pop => self.u8(0x05),
            Instr::Swap => self.u8(0x06),
            Instr::LoadLocal(i) => {
                self.u8(0x07);
                self.uleb(i as u64);
            }
            Instr::StoreLocal(i) => {
                self.u8(0x08);
                self.uleb(i as u64);
            }
            Instr::Add => self.u8(0x10),
            Instr::Sub => self.u8(0x11),
            Instr::Mul => self.u8(0x12),
            Instr::Div => self.u8(0x13),
            Instr::Rem => self.u8(0x14),
            Instr::Neg => self.u8(0x15),
            Instr::Eq => self.u8(0x16),
            Instr::Ne => self.u8(0x17),
            Instr::Lt => self.u8(0x18),
            Instr::Le => self.u8(0x19),
            Instr::Gt => self.u8(0x1a),
            Instr::Ge => self.u8(0x1b),
            Instr::Not => self.u8(0x1c),
            Instr::And => self.u8(0x1d),
            Instr::Or => self.u8(0x1e),
            Instr::Concat => self.u8(0x20),
            Instr::StrLen => self.u8(0x21),
            Instr::IntToStr => self.u8(0x22),
            Instr::StrToInt => self.u8(0x23),
            Instr::Jump(t) => {
                self.u8(0x30);
                self.uleb(t as u64);
            }
            Instr::JumpIf(t) => {
                self.u8(0x31);
                self.uleb(t as u64);
            }
            Instr::JumpIfNot(t) => {
                self.u8(0x32);
                self.uleb(t as u64);
            }
            Instr::Call(i) => {
                self.u8(0x33);
                self.uleb(i as u64);
            }
            Instr::SysCall(i) => {
                self.u8(0x34);
                self.uleb(i as u64);
            }
            Instr::Return => self.u8(0x35),
            Instr::Trap => self.u8(0x36),
            Instr::Nop => self.u8(0x37),
        }
    }
}

/// Encodes a module to its binary form.
pub fn encode(module: &Module) -> Vec<u8> {
    let mut enc = Encoder { out: Vec::new() };
    enc.out.extend_from_slice(MAGIC);
    enc.u16(VERSION);
    enc.str(&module.name);
    enc.uleb(module.strings.len() as u64);
    for s in &module.strings {
        enc.str(s);
    }
    enc.uleb(module.imports.len() as u64);
    for import in &module.imports {
        enc.str(&import.alias);
        enc.str(&import.path);
        enc.sig(&import.sig);
    }
    enc.uleb(module.functions.len() as u64);
    for function in &module.functions {
        enc.str(&function.name);
        enc.sig(&function.sig);
        enc.uleb(function.extra_locals.len() as u64);
        for &ty in &function.extra_locals {
            enc.ty(ty);
        }
        enc.uleb(function.code.len() as u64);
        for &instr in &function.code {
            enc.instr(instr);
        }
    }
    enc.uleb(module.exports.len() as u64);
    for export in &module.exports {
        enc.str(&export.name);
        enc.uleb(export.func as u64);
    }
    enc.out
}

// ---------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------

struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.input.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let lo = self.u8()? as u16;
        let hi = self.u8()? as u16;
        Ok(lo | (hi << 8))
    }

    fn uleb(&mut self) -> Result<u64, WireError> {
        let mut result = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(WireError::LengthBomb(u64::MAX));
            }
            result |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    fn sleb(&mut self) -> Result<i64, WireError> {
        let z = self.uleb()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn len(&mut self) -> Result<usize, WireError> {
        let n = self.uleb()?;
        if n as usize > MAX_LEN {
            return Err(WireError::LengthBomb(n));
        }
        Ok(n as usize)
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.len()?;
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let bytes = self.input.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn ty(&mut self) -> Result<Ty, WireError> {
        match self.u8()? {
            0 => Ok(Ty::Int),
            1 => Ok(Ty::Bool),
            2 => Ok(Ty::Str),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn sig(&mut self) -> Result<Signature, WireError> {
        let n = self.len()?;
        let mut params = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            params.push(self.ty()?);
        }
        let ret = match self.u8()? {
            0xff => None,
            0 => Some(Ty::Int),
            1 => Some(Ty::Bool),
            2 => Some(Ty::Str),
            t => return Err(WireError::BadTag(t)),
        };
        Ok(Signature::new(params, ret))
    }

    fn instr(&mut self) -> Result<Instr, WireError> {
        let tag = self.u8()?;
        Ok(match tag {
            0x01 => Instr::PushInt(self.sleb()?),
            0x02 => Instr::PushBool(self.u8()? != 0),
            0x03 => Instr::PushStr(self.uleb()? as u32),
            0x04 => Instr::Dup,
            0x05 => Instr::Pop,
            0x06 => Instr::Swap,
            0x07 => Instr::LoadLocal(self.uleb()? as u16),
            0x08 => Instr::StoreLocal(self.uleb()? as u16),
            0x10 => Instr::Add,
            0x11 => Instr::Sub,
            0x12 => Instr::Mul,
            0x13 => Instr::Div,
            0x14 => Instr::Rem,
            0x15 => Instr::Neg,
            0x16 => Instr::Eq,
            0x17 => Instr::Ne,
            0x18 => Instr::Lt,
            0x19 => Instr::Le,
            0x1a => Instr::Gt,
            0x1b => Instr::Ge,
            0x1c => Instr::Not,
            0x1d => Instr::And,
            0x1e => Instr::Or,
            0x20 => Instr::Concat,
            0x21 => Instr::StrLen,
            0x22 => Instr::IntToStr,
            0x23 => Instr::StrToInt,
            0x30 => Instr::Jump(self.uleb()? as u32),
            0x31 => Instr::JumpIf(self.uleb()? as u32),
            0x32 => Instr::JumpIfNot(self.uleb()? as u32),
            0x33 => Instr::Call(self.uleb()? as u32),
            0x34 => Instr::SysCall(self.uleb()? as u32),
            0x35 => Instr::Return,
            0x36 => Instr::Trap,
            0x37 => Instr::Nop,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// Decodes a module from its binary form.
///
/// Decoding validates structure only; run the result through
/// [`crate::verify()`] before executing it.
pub fn decode(input: &[u8]) -> Result<Module, WireError> {
    let mut dec = Decoder { input, pos: 0 };
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = dec.u8().map_err(|_| WireError::BadMagic)?;
    }
    if &magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = dec.u16()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let name = dec.str()?;
    let n = dec.len()?;
    let mut strings = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        strings.push(dec.str()?);
    }
    let n = dec.len()?;
    let mut imports = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let alias = dec.str()?;
        let path = dec.str()?;
        let sig = dec.sig()?;
        imports.push(ImportDecl { alias, path, sig });
    }
    let n = dec.len()?;
    let mut functions = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = dec.str()?;
        let sig = dec.sig()?;
        let ln = dec.len()?;
        let mut extra_locals = Vec::with_capacity(ln.min(1024));
        for _ in 0..ln {
            extra_locals.push(dec.ty()?);
        }
        let cn = dec.len()?;
        let mut code = Vec::with_capacity(cn.min(4096));
        for _ in 0..cn {
            code.push(dec.instr()?);
        }
        functions.push(Function {
            name,
            sig,
            extra_locals,
            code,
        });
    }
    let n = dec.len()?;
    let mut exports = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = dec.str()?;
        let func = dec.uleb()? as u32;
        exports.push(Export { name, func });
    }
    if dec.pos != input.len() {
        return Err(WireError::TrailingBytes(input.len() - dec.pos));
    }
    Ok(Module {
        name,
        strings,
        imports,
        functions,
        exports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    fn sample() -> Module {
        asm::assemble(
            r#"
            module sample
            import print = "/svc/console/print" (str)
            import add = "/svc/echo/add" (int, int) -> int
            func main(n: int) -> int
              locals acc: int, flag: bool
              push_str "hi \"there\""
              syscall print
              load_local n
              push_int -42
              syscall add
              store_local acc
              load_local flag
              jump_if done
              load_local acc
              ret
            label done
              push_int 0
              ret
            end
            func aux()
              ret
            end
            export main = main
            export helper = aux
            "#,
        )
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let module = sample();
        let bytes = encode(&module);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(module, decoded);
    }

    #[test]
    fn decoded_module_verifies_and_runs() {
        let module = sample();
        let decoded = decode(&encode(&module)).unwrap();
        crate::verify(decoded).unwrap();
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert_eq!(decode(b"nope"), Err(WireError::BadMagic));
        assert_eq!(decode(b""), Err(WireError::BadMagic));
        let mut bytes = encode(&sample());
        bytes[4] = 0xff; // version low byte
        assert!(matches!(decode(&bytes), Err(WireError::BadVersion(_))));
    }

    #[test]
    fn rejects_truncation_at_every_point() {
        let bytes = encode(&sample());
        // Chop the module at every prefix length: must never panic, and
        // must always error (except the full length).
        for n in 0..bytes.len() {
            let result = decode(&bytes[..n]);
            assert!(result.is_err(), "prefix of {n} bytes decoded successfully");
        }
        assert!(decode(&bytes).is_ok());
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = encode(&sample());
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn rejects_bad_tags() {
        let module = Module {
            name: "t".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "f".into(),
                sig: Signature::new(vec![], None),
                extra_locals: vec![],
                code: vec![Instr::Return],
            }],
            exports: vec![],
        };
        let bytes = encode(&module);
        // The last-but-N bytes include the Return tag (0x35); find and
        // corrupt it.
        let mut corrupted = bytes.clone();
        let pos = corrupted.iter().rposition(|&b| b == 0x35).unwrap();
        corrupted[pos] = 0xee;
        assert!(matches!(decode(&corrupted), Err(WireError::BadTag(_))));
    }

    #[test]
    fn rejects_length_bombs() {
        // magic + version + name-length claiming 2^40 bytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        // ULEB for 2^40.
        bytes.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x20]);
        assert!(matches!(decode(&bytes), Err(WireError::LengthBomb(_))));
    }

    #[test]
    fn negative_ints_survive() {
        let module = Module {
            name: "neg".into(),
            strings: vec![],
            imports: vec![],
            functions: vec![Function {
                name: "f".into(),
                sig: Signature::new(vec![], Some(Ty::Int)),
                extra_locals: vec![],
                code: vec![Instr::PushInt(i64::MIN), Instr::Return],
            }],
            exports: vec![],
        };
        let decoded = decode(&encode(&module)).unwrap();
        assert_eq!(decoded.functions[0].code[0], Instr::PushInt(i64::MIN));
    }
}
