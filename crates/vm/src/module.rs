//! The extension module format.

use crate::instr::Instr;
use crate::types::Ty;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A function signature: parameter types and an optional return type.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// Parameter types, in order.
    pub params: Vec<Ty>,
    /// Return type; `None` means the function returns no value.
    pub ret: Option<Ty>,
}

impl Signature {
    /// Creates a signature.
    pub fn new(params: Vec<Ty>, ret: Option<Ty>) -> Self {
        Signature { params, ret }
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")?;
        if let Some(ret) = self.ret {
            write!(f, " -> {ret}")?;
        }
        Ok(())
    }
}

/// A declared import: a named gate into a system-service procedure.
///
/// The `path` is a name in the universal name space (e.g.
/// `/svc/fs/read`); the host resolves it at link time and checks
/// `execute` access through the reference monitor on every invocation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImportDecl {
    /// A module-local alias for the import.
    pub alias: String,
    /// The name-space path of the service procedure.
    pub path: String,
    /// The expected signature of the gate.
    pub sig: Signature,
}

/// One bytecode function.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// The function's name (for diagnostics and exports).
    pub name: String,
    /// The signature. Parameters occupy locals `0..params.len()`.
    pub sig: Signature,
    /// Types of additional locals beyond the parameters.
    pub extra_locals: Vec<Ty>,
    /// The code.
    pub code: Vec<Instr>,
}

impl Function {
    /// Returns the type of local `index`, spanning parameters and extra
    /// locals.
    pub fn local_ty(&self, index: u16) -> Option<Ty> {
        let index = index as usize;
        let n_params = self.sig.params.len();
        if index < n_params {
            Some(self.sig.params[index])
        } else {
            self.extra_locals.get(index - n_params).copied()
        }
    }

    /// Returns the total number of locals (parameters + extras).
    pub fn local_count(&self) -> usize {
        self.sig.params.len() + self.extra_locals.len()
    }
}

/// An exported entry point: an external name bound to a function index.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Export {
    /// The external name.
    pub name: String,
    /// The index into [`Module::functions`].
    pub func: u32,
}

/// An unverified extension module.
///
/// Produced by the assembler (or constructed programmatically) and turned
/// into a [`crate::VerifiedModule`] by [`crate::verify()`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// The module's name.
    pub name: String,
    /// The string constant pool.
    pub strings: Vec<String>,
    /// Declared imports (syscall gates).
    pub imports: Vec<ImportDecl>,
    /// The functions.
    pub functions: Vec<Function>,
    /// Exported entry points.
    pub exports: Vec<Export>,
}

impl Module {
    /// Looks an export up by name.
    pub fn export(&self, name: &str) -> Option<&Export> {
        self.exports.iter().find(|e| e.name == name)
    }

    /// Looks an import up by alias.
    pub fn import_by_alias(&self, alias: &str) -> Option<(u32, &ImportDecl)> {
        self.imports
            .iter()
            .enumerate()
            .find(|(_, i)| i.alias == alias)
            .map(|(i, d)| (i as u32, d))
    }

    /// Returns the total instruction count across all functions.
    pub fn code_len(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_ty_spans_params_and_extras() {
        let f = Function {
            name: "f".into(),
            sig: Signature::new(vec![Ty::Int, Ty::Str], Some(Ty::Int)),
            extra_locals: vec![Ty::Bool],
            code: vec![],
        };
        assert_eq!(f.local_ty(0), Some(Ty::Int));
        assert_eq!(f.local_ty(1), Some(Ty::Str));
        assert_eq!(f.local_ty(2), Some(Ty::Bool));
        assert_eq!(f.local_ty(3), None);
        assert_eq!(f.local_count(), 3);
    }

    #[test]
    fn signature_display() {
        let sig = Signature::new(vec![Ty::Int, Ty::Bool], Some(Ty::Str));
        assert_eq!(sig.to_string(), "(int, bool) -> str");
        let void = Signature::new(vec![], None);
        assert_eq!(void.to_string(), "()");
    }

    #[test]
    fn export_and_import_lookup() {
        let module = Module {
            name: "m".into(),
            strings: vec![],
            imports: vec![ImportDecl {
                alias: "read".into(),
                path: "/svc/fs/read".into(),
                sig: Signature::new(vec![Ty::Str], Some(Ty::Str)),
            }],
            functions: vec![],
            exports: vec![Export {
                name: "main".into(),
                func: 0,
            }],
        };
        assert!(module.export("main").is_some());
        assert!(module.export("other").is_none());
        let (idx, decl) = module.import_by_alias("read").unwrap();
        assert_eq!(idx, 0);
        assert_eq!(decl.path, "/svc/fs/read");
    }
}
