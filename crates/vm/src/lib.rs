//! A safe extension bytecode: the language-safety substrate.
//!
//! Extensible systems "rely on programming language support (using
//! type-safe programming languages ...) and software fault isolation" for
//! basic safety (paper §1.1). This crate provides the equivalent substrate
//! for the reproduction: extensions are small bytecode modules that are
//! **statically verified** before linking and then run in a fuel-limited
//! interpreter. Verification guarantees that an extension
//!
//! * can never underflow or type-confuse the operand stack,
//! * can never jump outside its own code or read unset locals,
//! * can only leave its sandbox through declared **imports** — named
//!   system-service procedures that the host resolves through the
//!   reference monitor (the syscall *gates*), and
//! * cannot run forever or grow without bound — every instruction costs
//!   fuel, every stack slot / local / frame / string byte is accounted
//!   against a per-execution memory budget, and an amortized epoch check
//!   preempts on wall clock even when the fuel price is miscalibrated
//!   (aspects the paper explicitly defers; see DESIGN.md §6.15).
//!
//! The [`mod@verify`] module implements the abstract-interpretation verifier;
//! [`interp`] the interpreter; [`asm`] a small text assembler so that
//! example extensions remain readable. The verifier hands back a
//! [`VerifiedModule`] — the interpreter only accepts that type, so
//! unverified code cannot run by construction.
//!
//! # Examples
//!
//! ```
//! use extsec_vm::{asm, interp::{Machine, NullHost}, verify, Value};
//!
//! let module = asm::assemble(
//!     r#"
//!     module adder
//!     func add(a: int, b: int) -> int
//!       load_local 0
//!       load_local 1
//!       add
//!       ret
//!     end
//!     export add = add
//!     "#,
//! )
//! .unwrap();
//! let verified = verify::verify(module).unwrap();
//! let mut machine = Machine::new(&verified);
//! let result = machine
//!     .run("add", &[Value::Int(2), Value::Int(40)], &mut NullHost)
//!     .unwrap();
//! assert_eq!(result, Some(Value::Int(42)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod disasm;
pub mod instr;
pub mod interp;
pub mod module;
pub mod types;
pub mod verify;
pub mod wire;

pub use disasm::disassemble;
pub use instr::Instr;
pub use interp::{EpochClock, EpochTicker, Machine, MachineLimits, NullHost, SyscallHost, Trap};
pub use module::{Export, Function, ImportDecl, Module, Signature};
pub use types::{Ty, Value};
pub use verify::{verify, VerifiedModule, VerifyError};
pub use wire::{decode, encode, WireError};
