//! The disassembler: renders a [`Module`] back into assembler syntax.
//!
//! The output is accepted by [`crate::asm::assemble`], so
//! `assemble ∘ disassemble` is the identity on module structure — which
//! the round-trip tests (and a proptest over generated modules) pin
//! down. Jump targets become synthetic `L<offset>` labels.

use crate::instr::Instr;
use crate::module::{Function, Module, Signature};
use crate::types::Ty;
use std::collections::BTreeSet;
use std::fmt::Write;

fn ty_name(ty: Ty) -> &'static str {
    match ty {
        Ty::Int => "int",
        Ty::Bool => "bool",
        Ty::Str => "str",
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

fn write_sig(out: &mut String, sig: &Signature, named: bool) {
    out.push('(');
    for (i, p) in sig.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if named {
            let _ = write!(out, "a{i}: {}", ty_name(*p));
        } else {
            out.push_str(ty_name(*p));
        }
    }
    out.push(')');
    if let Some(ret) = sig.ret {
        let _ = write!(out, " -> {}", ty_name(ret));
    }
}

fn jump_targets(function: &Function) -> BTreeSet<u32> {
    function
        .code
        .iter()
        .filter_map(|i| match i {
            Instr::Jump(t) | Instr::JumpIf(t) | Instr::JumpIfNot(t) => Some(*t),
            _ => None,
        })
        .collect()
}

/// Disassembles a module into assembler source.
pub fn disassemble(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {}", module.name);
    for import in &module.imports {
        let mut sig = String::new();
        write_sig(&mut sig, &import.sig, false);
        let _ = writeln!(
            out,
            "import {} = \"{}\" {}",
            import.alias,
            escape(&import.path),
            sig
        );
    }
    for function in &module.functions {
        let mut sig = String::new();
        write_sig(&mut sig, &function.sig, true);
        let _ = writeln!(out, "func {}{}", function.name, sig);
        if !function.extra_locals.is_empty() {
            let locals: Vec<String> = function
                .extra_locals
                .iter()
                .enumerate()
                .map(|(i, ty)| format!("l{}: {}", i + function.sig.params.len(), ty_name(*ty)))
                .collect();
            let _ = writeln!(out, "  locals {}", locals.join(", "));
        }
        let targets = jump_targets(function);
        for (offset, instr) in function.code.iter().enumerate() {
            if targets.contains(&(offset as u32)) {
                let _ = writeln!(out, "label L{offset}");
            }
            let line = match instr {
                Instr::PushStr(i) => {
                    format!("push_str \"{}\"", escape(&module.strings[*i as usize]))
                }
                Instr::Jump(t) => format!("jump L{t}"),
                Instr::JumpIf(t) => format!("jump_if L{t}"),
                Instr::JumpIfNot(t) => format!("jump_if_not L{t}"),
                Instr::Call(i) => format!("call {}", module.functions[*i as usize].name),
                Instr::SysCall(i) => format!("syscall {}", module.imports[*i as usize].alias),
                other => other.to_string(),
            };
            let _ = writeln!(out, "  {line}");
        }
        // A jump may target one past the last instruction only in
        // malformed modules; verified modules always end in a terminal
        // instruction, so no trailing label is needed.
        let _ = writeln!(out, "end");
    }
    for export in &module.exports {
        let _ = writeln!(
            out,
            "export {} = {}",
            export.name, module.functions[export.func as usize].name
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    const SRC: &str = r#"
module demo
import print = "/svc/console/print" (str)
func sum(n: int) -> int
  locals i: int, acc: int
  push_int 0
  store_local i
label loop
  load_local i
  load_local n
  lt
  jump_if_not done
  load_local acc
  load_local i
  add
  store_local acc
  load_local i
  push_int 1
  add
  store_local i
  jump loop
label done
  load_local acc
  ret
end
func main()
  push_str "total:\n"
  syscall print
  ret
end
export main = main
export sum = sum
"#;

    #[test]
    fn round_trip_preserves_structure() {
        let module = asm::assemble(SRC).unwrap();
        let text = disassemble(&module);
        let again = asm::assemble(&text).unwrap();
        // Code, signatures, imports and exports must be identical (local
        // and label *names* are synthetic, but indices are what counts).
        assert_eq!(module.imports, again.imports);
        assert_eq!(module.exports, again.exports);
        assert_eq!(module.strings, again.strings);
        assert_eq!(module.functions.len(), again.functions.len());
        for (a, b) in module.functions.iter().zip(again.functions.iter()) {
            assert_eq!(a.sig, b.sig);
            assert_eq!(a.extra_locals, b.extra_locals);
            assert_eq!(a.code, b.code);
        }
    }

    #[test]
    fn round_trip_verifies_and_behaves_identically() {
        use crate::interp::{Machine, NullHost};
        use crate::types::Value;
        let module = asm::assemble(SRC).unwrap();
        let again = asm::assemble(&disassemble(&module)).unwrap();
        let v1 = crate::verify(module).unwrap();
        let v2 = crate::verify(again).unwrap();
        let r1 = Machine::new(&v1).run("sum", &[Value::Int(10)], &mut NullHost);
        let r2 = Machine::new(&v2).run("sum", &[Value::Int(10)], &mut NullHost);
        assert_eq!(r1, r2);
        assert_eq!(r1, Ok(Some(Value::Int(45))));
    }

    #[test]
    fn escapes_survive() {
        let module = asm::assemble(
            "module m\nfunc f() -> str\n push_str \"a\\\"b\\\\c\\nd\"\n ret\nend\nexport f = f\n",
        )
        .unwrap();
        let again = asm::assemble(&disassemble(&module)).unwrap();
        assert_eq!(module.strings, again.strings);
    }
}
