//! The instruction set.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One bytecode instruction.
///
/// The machine is a typed stack machine. Operands come from the operand
/// stack; `u16` local indices address the function's parameter+local
/// frame; `u32` code offsets are absolute within the owning function;
/// `u32` pool/function/import indices are module-global.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    // --- Constants ---------------------------------------------------
    /// Push an integer constant.
    PushInt(i64),
    /// Push a boolean constant.
    PushBool(bool),
    /// Push a string from the module's string pool.
    PushStr(u32),

    // --- Stack shuffling ----------------------------------------------
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two topmost slots.
    Swap,

    // --- Locals --------------------------------------------------------
    /// Push local `n`.
    LoadLocal(u16),
    /// Pop into local `n`.
    StoreLocal(u16),

    // --- Integer arithmetic ---------------------------------------------
    /// `a + b` (wrapping).
    Add,
    /// `a - b` (wrapping).
    Sub,
    /// `a * b` (wrapping).
    Mul,
    /// `a / b`; traps on division by zero or overflow.
    Div,
    /// `a % b`; traps on division by zero or overflow.
    Rem,
    /// `-a` (wrapping).
    Neg,

    // --- Comparisons (int × int → bool) ---------------------------------
    /// `a == b` (any matching types).
    Eq,
    /// `a != b` (any matching types).
    Ne,
    /// `a < b`.
    Lt,
    /// `a <= b`.
    Le,
    /// `a > b`.
    Gt,
    /// `a >= b`.
    Ge,

    // --- Booleans --------------------------------------------------------
    /// Logical not.
    Not,
    /// Logical and (strict, both operands already evaluated).
    And,
    /// Logical or (strict).
    Or,

    // --- Strings ----------------------------------------------------------
    /// Concatenate two strings.
    Concat,
    /// String length as an integer.
    StrLen,
    /// Convert an integer to its decimal string.
    IntToStr,
    /// Parse a decimal string into an integer; traps on malformed input.
    StrToInt,

    // --- Control flow -------------------------------------------------------
    /// Unconditional jump to an absolute code offset.
    Jump(u32),
    /// Pop a bool; jump when true.
    JumpIf(u32),
    /// Pop a bool; jump when false.
    JumpIfNot(u32),
    /// Call module function `n`.
    Call(u32),
    /// Invoke import `n` (a syscall gate into the host).
    SysCall(u32),
    /// Return from the current function (with the declared return value
    /// on the stack, if any).
    Return,
    /// Abort execution with an explicit trap.
    Trap,
    /// Do nothing.
    Nop,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::PushInt(v) => write!(f, "push_int {v}"),
            Instr::PushBool(v) => write!(f, "push_bool {v}"),
            Instr::PushStr(i) => write!(f, "push_str #{i}"),
            Instr::Dup => write!(f, "dup"),
            Instr::Pop => write!(f, "pop"),
            Instr::Swap => write!(f, "swap"),
            Instr::LoadLocal(i) => write!(f, "load_local {i}"),
            Instr::StoreLocal(i) => write!(f, "store_local {i}"),
            Instr::Add => write!(f, "add"),
            Instr::Sub => write!(f, "sub"),
            Instr::Mul => write!(f, "mul"),
            Instr::Div => write!(f, "div"),
            Instr::Rem => write!(f, "rem"),
            Instr::Neg => write!(f, "neg"),
            Instr::Eq => write!(f, "eq"),
            Instr::Ne => write!(f, "ne"),
            Instr::Lt => write!(f, "lt"),
            Instr::Le => write!(f, "le"),
            Instr::Gt => write!(f, "gt"),
            Instr::Ge => write!(f, "ge"),
            Instr::Not => write!(f, "not"),
            Instr::And => write!(f, "and"),
            Instr::Or => write!(f, "or"),
            Instr::Concat => write!(f, "concat"),
            Instr::StrLen => write!(f, "str_len"),
            Instr::IntToStr => write!(f, "int_to_str"),
            Instr::StrToInt => write!(f, "str_to_int"),
            Instr::Jump(t) => write!(f, "jump @{t}"),
            Instr::JumpIf(t) => write!(f, "jump_if @{t}"),
            Instr::JumpIfNot(t) => write!(f, "jump_if_not @{t}"),
            Instr::Call(i) => write!(f, "call {i}"),
            Instr::SysCall(i) => write!(f, "syscall {i}"),
            Instr::Return => write!(f, "ret"),
            Instr::Trap => write!(f, "trap"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Instr::PushInt(7).to_string(), "push_int 7");
        assert_eq!(Instr::Jump(3).to_string(), "jump @3");
        assert_eq!(Instr::SysCall(0).to_string(), "syscall 0");
        assert_eq!(Instr::Return.to_string(), "ret");
    }
}
