//! The static verifier.
//!
//! Verification is an abstract interpretation of each function over a
//! typed operand stack: every instruction's operand types are simulated,
//! every jump target must be reached with an identical stack shape, and
//! control may only leave a function through an explicit `ret` or `trap`.
//! A verified module can neither underflow the stack, nor type-confuse a
//! slot, nor transfer control outside its own code — the same guarantee
//! type-safe languages give the extensible systems in the paper (§1.1).
//!
//! The verifier is the *only* producer of [`VerifiedModule`], and the
//! interpreter only accepts `VerifiedModule`, so "unverified code never
//! runs" holds by construction.

use crate::instr::Instr;
use crate::module::{Module, Signature};
use crate::types::Ty;
use std::collections::VecDeque;
use std::fmt;

/// Maximum verified operand-stack depth per function.
pub const MAX_STACK: usize = 1024;
/// Maximum number of locals per function.
pub const MAX_LOCALS: usize = 4096;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// The function in which verification failed, if applicable.
    pub function: Option<String>,
    /// The instruction offset at which verification failed, if
    /// applicable.
    pub offset: Option<usize>,
    /// What went wrong.
    pub kind: VerifyErrorKind,
}

/// The kinds of verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// An operand was popped from an empty abstract stack.
    StackUnderflow,
    /// The abstract stack exceeded [`MAX_STACK`].
    StackOverflow,
    /// An operand had the wrong type.
    TypeMismatch {
        /// The type the instruction required.
        expected: Ty,
        /// The type actually found.
        found: Ty,
    },
    /// Two control-flow paths reach the same offset with different stacks.
    InconsistentStack,
    /// A jump target is outside the function.
    BadJumpTarget(u32),
    /// A local index is out of bounds.
    BadLocal(u16),
    /// A string-pool index is out of bounds.
    BadStringIndex(u32),
    /// A function index is out of bounds.
    BadFunctionIndex(u32),
    /// An import index is out of bounds.
    BadImportIndex(u32),
    /// An export references a missing function.
    BadExport(String),
    /// A name (export or import alias) is duplicated.
    DuplicateName(String),
    /// Control can fall off the end of the function.
    FallsOffEnd,
    /// `ret` was reached with the wrong stack (must hold exactly the
    /// declared return value, or be empty for `()` functions).
    BadReturn,
    /// The function body is empty.
    EmptyBody,
    /// Too many locals.
    TooManyLocals(usize),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(func) = &self.function {
            write!(f, "in {func}")?;
            if let Some(offset) = self.offset {
                write!(f, " at {offset}")?;
            }
            write!(f, ": ")?;
        }
        match &self.kind {
            VerifyErrorKind::StackUnderflow => write!(f, "stack underflow"),
            VerifyErrorKind::StackOverflow => write!(f, "stack exceeds {MAX_STACK} slots"),
            VerifyErrorKind::TypeMismatch { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            VerifyErrorKind::InconsistentStack => write!(f, "inconsistent stack at merge point"),
            VerifyErrorKind::BadJumpTarget(t) => write!(f, "jump target {t} out of bounds"),
            VerifyErrorKind::BadLocal(i) => write!(f, "local {i} out of bounds"),
            VerifyErrorKind::BadStringIndex(i) => write!(f, "string #{i} out of bounds"),
            VerifyErrorKind::BadFunctionIndex(i) => write!(f, "function {i} out of bounds"),
            VerifyErrorKind::BadImportIndex(i) => write!(f, "import {i} out of bounds"),
            VerifyErrorKind::BadExport(name) => write!(f, "export {name:?} is dangling"),
            VerifyErrorKind::DuplicateName(name) => write!(f, "duplicate name {name:?}"),
            VerifyErrorKind::FallsOffEnd => write!(f, "control falls off the end"),
            VerifyErrorKind::BadReturn => write!(f, "bad stack at ret"),
            VerifyErrorKind::EmptyBody => write!(f, "empty function body"),
            VerifyErrorKind::TooManyLocals(n) => write!(f, "{n} locals exceeds {MAX_LOCALS}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// A module that has passed verification.
///
/// This is the only type the interpreter accepts; it can only be produced
/// by [`verify`].
#[derive(Clone, Debug, PartialEq)]
pub struct VerifiedModule {
    module: Module,
    max_stack: usize,
}

impl VerifiedModule {
    /// Returns the underlying module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Returns the deepest operand stack any function can reach.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }
}

/// Verifies `module`, consuming it into a [`VerifiedModule`] on success.
pub fn verify(module: Module) -> Result<VerifiedModule, VerifyError> {
    let mut max_stack = 0usize;

    // Module-level checks.
    let mut seen = std::collections::BTreeSet::new();
    for export in &module.exports {
        if !seen.insert(export.name.clone()) {
            return Err(err_module(VerifyErrorKind::DuplicateName(
                export.name.clone(),
            )));
        }
        if export.func as usize >= module.functions.len() {
            return Err(err_module(VerifyErrorKind::BadExport(export.name.clone())));
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    for import in &module.imports {
        if !seen.insert(import.alias.clone()) {
            return Err(err_module(VerifyErrorKind::DuplicateName(
                import.alias.clone(),
            )));
        }
    }

    for function in &module.functions {
        let depth = verify_function(&module, function)?;
        max_stack = max_stack.max(depth);
    }

    Ok(VerifiedModule { module, max_stack })
}

fn err_module(kind: VerifyErrorKind) -> VerifyError {
    VerifyError {
        function: None,
        offset: None,
        kind,
    }
}

/// Verifies one function; returns its maximum abstract stack depth.
fn verify_function(
    module: &Module,
    function: &crate::module::Function,
) -> Result<usize, VerifyError> {
    let err = |offset: usize, kind: VerifyErrorKind| VerifyError {
        function: Some(function.name.clone()),
        offset: Some(offset),
        kind,
    };

    if function.code.is_empty() {
        return Err(err(0, VerifyErrorKind::EmptyBody));
    }
    if function.local_count() > MAX_LOCALS {
        return Err(err(
            0,
            VerifyErrorKind::TooManyLocals(function.local_count()),
        ));
    }

    let code = &function.code;
    let mut states: Vec<Option<Vec<Ty>>> = vec![None; code.len()];
    states[0] = Some(Vec::new());
    let mut work: VecDeque<usize> = VecDeque::new();
    work.push_back(0);
    let mut max_depth = 0usize;

    // Merge `stack` into the state at `target`; enqueue on change.
    let merge = |states: &mut Vec<Option<Vec<Ty>>>,
                 work: &mut VecDeque<usize>,
                 from: usize,
                 target: usize,
                 stack: &[Ty]|
     -> Result<(), VerifyError> {
        if target >= states.len() {
            return Err(err(from, VerifyErrorKind::BadJumpTarget(target as u32)));
        }
        match &states[target] {
            None => {
                states[target] = Some(stack.to_vec());
                work.push_back(target);
                Ok(())
            }
            Some(existing) => {
                if existing.as_slice() != stack {
                    Err(err(from, VerifyErrorKind::InconsistentStack))
                } else {
                    Ok(())
                }
            }
        }
    };

    while let Some(pc) = work.pop_front() {
        let mut stack = states[pc].clone().expect("queued offsets have states");
        max_depth = max_depth.max(stack.len());

        let pop = |stack: &mut Vec<Ty>| -> Result<Ty, VerifyError> {
            stack
                .pop()
                .ok_or_else(|| err(pc, VerifyErrorKind::StackUnderflow))
        };
        let pop_expect = |stack: &mut Vec<Ty>, expected: Ty| -> Result<(), VerifyError> {
            let found = stack
                .pop()
                .ok_or_else(|| err(pc, VerifyErrorKind::StackUnderflow))?;
            if found != expected {
                return Err(err(pc, VerifyErrorKind::TypeMismatch { expected, found }));
            }
            Ok(())
        };
        let push = |stack: &mut Vec<Ty>, ty: Ty| -> Result<(), VerifyError> {
            if stack.len() >= MAX_STACK {
                return Err(err(pc, VerifyErrorKind::StackOverflow));
            }
            stack.push(ty);
            Ok(())
        };
        // Pops call arguments (pushed left-to-right) and pushes the
        // return value.
        let apply_sig = |stack: &mut Vec<Ty>, sig: &Signature| -> Result<(), VerifyError> {
            for &param in sig.params.iter().rev() {
                let found = stack
                    .pop()
                    .ok_or_else(|| err(pc, VerifyErrorKind::StackUnderflow))?;
                if found != param {
                    return Err(err(
                        pc,
                        VerifyErrorKind::TypeMismatch {
                            expected: param,
                            found,
                        },
                    ));
                }
            }
            if let Some(ret) = sig.ret {
                if stack.len() >= MAX_STACK {
                    return Err(err(pc, VerifyErrorKind::StackOverflow));
                }
                stack.push(ret);
            }
            Ok(())
        };

        // `terminal` means control does not continue at pc+1.
        let mut terminal = false;
        match code[pc] {
            Instr::PushInt(_) => push(&mut stack, Ty::Int)?,
            Instr::PushBool(_) => push(&mut stack, Ty::Bool)?,
            Instr::PushStr(i) => {
                if i as usize >= module.strings.len() {
                    return Err(err(pc, VerifyErrorKind::BadStringIndex(i)));
                }
                push(&mut stack, Ty::Str)?;
            }
            Instr::Dup => {
                let top = *stack
                    .last()
                    .ok_or_else(|| err(pc, VerifyErrorKind::StackUnderflow))?;
                push(&mut stack, top)?;
            }
            Instr::Pop => {
                pop(&mut stack)?;
            }
            Instr::Swap => {
                let a = pop(&mut stack)?;
                let b = pop(&mut stack)?;
                push(&mut stack, a)?;
                push(&mut stack, b)?;
            }
            Instr::LoadLocal(i) => {
                let ty = function
                    .local_ty(i)
                    .ok_or_else(|| err(pc, VerifyErrorKind::BadLocal(i)))?;
                push(&mut stack, ty)?;
            }
            Instr::StoreLocal(i) => {
                let ty = function
                    .local_ty(i)
                    .ok_or_else(|| err(pc, VerifyErrorKind::BadLocal(i)))?;
                pop_expect(&mut stack, ty)?;
            }
            Instr::Add | Instr::Sub | Instr::Mul | Instr::Div | Instr::Rem => {
                pop_expect(&mut stack, Ty::Int)?;
                pop_expect(&mut stack, Ty::Int)?;
                push(&mut stack, Ty::Int)?;
            }
            Instr::Neg => {
                pop_expect(&mut stack, Ty::Int)?;
                push(&mut stack, Ty::Int)?;
            }
            Instr::Eq | Instr::Ne => {
                let a = pop(&mut stack)?;
                let b = pop(&mut stack)?;
                if a != b {
                    return Err(err(
                        pc,
                        VerifyErrorKind::TypeMismatch {
                            expected: b,
                            found: a,
                        },
                    ));
                }
                push(&mut stack, Ty::Bool)?;
            }
            Instr::Lt | Instr::Le | Instr::Gt | Instr::Ge => {
                pop_expect(&mut stack, Ty::Int)?;
                pop_expect(&mut stack, Ty::Int)?;
                push(&mut stack, Ty::Bool)?;
            }
            Instr::Not => {
                pop_expect(&mut stack, Ty::Bool)?;
                push(&mut stack, Ty::Bool)?;
            }
            Instr::And | Instr::Or => {
                pop_expect(&mut stack, Ty::Bool)?;
                pop_expect(&mut stack, Ty::Bool)?;
                push(&mut stack, Ty::Bool)?;
            }
            Instr::Concat => {
                pop_expect(&mut stack, Ty::Str)?;
                pop_expect(&mut stack, Ty::Str)?;
                push(&mut stack, Ty::Str)?;
            }
            Instr::StrLen => {
                pop_expect(&mut stack, Ty::Str)?;
                push(&mut stack, Ty::Int)?;
            }
            Instr::IntToStr => {
                pop_expect(&mut stack, Ty::Int)?;
                push(&mut stack, Ty::Str)?;
            }
            Instr::StrToInt => {
                pop_expect(&mut stack, Ty::Str)?;
                push(&mut stack, Ty::Int)?;
            }
            Instr::Jump(target) => {
                merge(&mut states, &mut work, pc, target as usize, &stack)?;
                terminal = true;
            }
            Instr::JumpIf(target) | Instr::JumpIfNot(target) => {
                pop_expect(&mut stack, Ty::Bool)?;
                merge(&mut states, &mut work, pc, target as usize, &stack)?;
            }
            Instr::Call(i) => {
                let callee = module
                    .functions
                    .get(i as usize)
                    .ok_or_else(|| err(pc, VerifyErrorKind::BadFunctionIndex(i)))?;
                apply_sig(&mut stack, &callee.sig)?;
            }
            Instr::SysCall(i) => {
                let import = module
                    .imports
                    .get(i as usize)
                    .ok_or_else(|| err(pc, VerifyErrorKind::BadImportIndex(i)))?;
                apply_sig(&mut stack, &import.sig)?;
            }
            Instr::Return => {
                let ok = match function.sig.ret {
                    Some(ty) => stack.len() == 1 && stack[0] == ty,
                    None => stack.is_empty(),
                };
                if !ok {
                    return Err(err(pc, VerifyErrorKind::BadReturn));
                }
                terminal = true;
            }
            Instr::Trap => {
                terminal = true;
            }
            Instr::Nop => {}
        }

        max_depth = max_depth.max(stack.len());
        if !terminal {
            if pc + 1 >= code.len() {
                return Err(err(pc, VerifyErrorKind::FallsOffEnd));
            }
            merge(&mut states, &mut work, pc, pc + 1, &stack)?;
        }
    }

    Ok(max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Export, Function, ImportDecl};

    fn module_with(functions: Vec<Function>) -> Module {
        Module {
            name: "m".into(),
            strings: vec!["hello".into()],
            imports: vec![ImportDecl {
                alias: "print".into(),
                path: "/svc/console/print".into(),
                sig: Signature::new(vec![Ty::Str], None),
            }],
            functions,
            exports: vec![],
        }
    }

    fn func(sig: Signature, extra_locals: Vec<Ty>, code: Vec<Instr>) -> Function {
        Function {
            name: "f".into(),
            sig,
            extra_locals,
            code,
        }
    }

    #[test]
    fn accepts_simple_arithmetic() {
        let m = module_with(vec![func(
            Signature::new(vec![Ty::Int, Ty::Int], Some(Ty::Int)),
            vec![],
            vec![
                Instr::LoadLocal(0),
                Instr::LoadLocal(1),
                Instr::Add,
                Instr::Return,
            ],
        )]);
        let verified = verify(m).unwrap();
        assert!(verified.max_stack() >= 2);
    }

    #[test]
    fn rejects_stack_underflow() {
        let m = module_with(vec![func(
            Signature::new(vec![], Some(Ty::Int)),
            vec![],
            vec![Instr::Add, Instr::Return],
        )]);
        let e = verify(m).unwrap_err();
        assert_eq!(e.kind, VerifyErrorKind::StackUnderflow);
        assert_eq!(e.offset, Some(0));
    }

    #[test]
    fn rejects_type_confusion() {
        let m = module_with(vec![func(
            Signature::new(vec![], Some(Ty::Int)),
            vec![],
            vec![
                Instr::PushBool(true),
                Instr::PushInt(1),
                Instr::Add,
                Instr::Return,
            ],
        )]);
        let e = verify(m).unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::TypeMismatch { .. }));
    }

    #[test]
    fn rejects_bad_jump() {
        let m = module_with(vec![func(
            Signature::new(vec![], None),
            vec![],
            vec![Instr::Jump(99)],
        )]);
        let e = verify(m).unwrap_err();
        assert_eq!(e.kind, VerifyErrorKind::BadJumpTarget(99));
    }

    #[test]
    fn rejects_fall_off_end() {
        let m = module_with(vec![func(
            Signature::new(vec![], None),
            vec![],
            vec![Instr::PushInt(1), Instr::Pop],
        )]);
        let e = verify(m).unwrap_err();
        assert_eq!(e.kind, VerifyErrorKind::FallsOffEnd);
    }

    #[test]
    fn rejects_inconsistent_merge() {
        // Path A pushes an int before the join; path B pushes nothing.
        let m = module_with(vec![func(
            Signature::new(vec![Ty::Bool], None),
            vec![],
            vec![
                Instr::LoadLocal(0),
                Instr::JumpIfNot(3),
                Instr::PushInt(1), // then-branch leaves an extra int
                Instr::Nop,        // join point
                Instr::Trap,
            ],
        )]);
        let e = verify(m).unwrap_err();
        assert_eq!(e.kind, VerifyErrorKind::InconsistentStack);
    }

    #[test]
    fn rejects_bad_return_stack() {
        // Declared () but returns with an int on the stack.
        let m = module_with(vec![func(
            Signature::new(vec![], None),
            vec![],
            vec![Instr::PushInt(1), Instr::Return],
        )]);
        let e = verify(m).unwrap_err();
        assert_eq!(e.kind, VerifyErrorKind::BadReturn);
        // Declared int but returns with two values.
        let m = module_with(vec![func(
            Signature::new(vec![], Some(Ty::Int)),
            vec![],
            vec![Instr::PushInt(1), Instr::PushInt(2), Instr::Return],
        )]);
        assert_eq!(verify(m).unwrap_err().kind, VerifyErrorKind::BadReturn);
    }

    #[test]
    fn rejects_bad_local() {
        let m = module_with(vec![func(
            Signature::new(vec![], None),
            vec![],
            vec![Instr::LoadLocal(5), Instr::Pop, Instr::Return],
        )]);
        assert_eq!(verify(m).unwrap_err().kind, VerifyErrorKind::BadLocal(5));
    }

    #[test]
    fn rejects_bad_string_and_import_and_function_indices() {
        let m = module_with(vec![func(
            Signature::new(vec![], None),
            vec![],
            vec![Instr::PushStr(7), Instr::Pop, Instr::Return],
        )]);
        assert_eq!(
            verify(m).unwrap_err().kind,
            VerifyErrorKind::BadStringIndex(7)
        );

        let m = module_with(vec![func(
            Signature::new(vec![], None),
            vec![],
            vec![Instr::SysCall(9), Instr::Return],
        )]);
        assert_eq!(
            verify(m).unwrap_err().kind,
            VerifyErrorKind::BadImportIndex(9)
        );

        let m = module_with(vec![func(
            Signature::new(vec![], None),
            vec![],
            vec![Instr::Call(9), Instr::Return],
        )]);
        assert_eq!(
            verify(m).unwrap_err().kind,
            VerifyErrorKind::BadFunctionIndex(9)
        );
    }

    #[test]
    fn accepts_loops() {
        // for i in 0..10 {}; return i
        let m = module_with(vec![func(
            Signature::new(vec![], Some(Ty::Int)),
            vec![Ty::Int],
            vec![
                Instr::PushInt(0),
                Instr::StoreLocal(0),
                // loop: (offset 2)
                Instr::LoadLocal(0),
                Instr::PushInt(10),
                Instr::Lt,
                Instr::JumpIfNot(10),
                Instr::LoadLocal(0),
                Instr::PushInt(1),
                Instr::Add,
                Instr::StoreLocal(0),
                // fallthrough to loop check would be offset 10... use jump
                // (offset 10 is the exit), so place jump before it:
            ],
        )]);
        // The code above is malformed (missing jump); build it properly.
        let mut m = m;
        m.functions[0].code = vec![
            Instr::PushInt(0),
            Instr::StoreLocal(0),
            Instr::LoadLocal(0), // 2: loop head
            Instr::PushInt(10),
            Instr::Lt,
            Instr::JumpIfNot(11),
            Instr::LoadLocal(0),
            Instr::PushInt(1),
            Instr::Add,
            Instr::StoreLocal(0),
            Instr::Jump(2),
            Instr::LoadLocal(0), // 11: exit
            Instr::Return,
        ];
        verify(m).unwrap();
    }

    #[test]
    fn accepts_calls_and_syscalls() {
        let callee = Function {
            name: "inc".into(),
            sig: Signature::new(vec![Ty::Int], Some(Ty::Int)),
            extra_locals: vec![],
            code: vec![
                Instr::LoadLocal(0),
                Instr::PushInt(1),
                Instr::Add,
                Instr::Return,
            ],
        };
        let main = Function {
            name: "main".into(),
            sig: Signature::new(vec![], None),
            extra_locals: vec![],
            code: vec![
                Instr::PushStr(0),
                Instr::SysCall(0), // print(str) -> ()
                Instr::PushInt(41),
                Instr::Call(0), // inc(int) -> int
                Instr::Pop,
                Instr::Return,
            ],
        };
        let mut m = module_with(vec![callee, main]);
        m.exports.push(Export {
            name: "main".into(),
            func: 1,
        });
        verify(m).unwrap();
    }

    #[test]
    fn rejects_dangling_export_and_duplicates() {
        let mut m = module_with(vec![]);
        m.exports.push(Export {
            name: "main".into(),
            func: 0,
        });
        assert_eq!(
            verify(m).unwrap_err().kind,
            VerifyErrorKind::BadExport("main".into())
        );

        let mut m = module_with(vec![func(
            Signature::new(vec![], None),
            vec![],
            vec![Instr::Return],
        )]);
        m.exports.push(Export {
            name: "a".into(),
            func: 0,
        });
        m.exports.push(Export {
            name: "a".into(),
            func: 0,
        });
        assert_eq!(
            verify(m).unwrap_err().kind,
            VerifyErrorKind::DuplicateName("a".into())
        );
    }

    #[test]
    fn rejects_empty_body() {
        let m = module_with(vec![func(Signature::new(vec![], None), vec![], vec![])]);
        assert_eq!(verify(m).unwrap_err().kind, VerifyErrorKind::EmptyBody);
    }

    #[test]
    fn eq_requires_matching_types() {
        let m = module_with(vec![func(
            Signature::new(vec![], Some(Ty::Bool)),
            vec![],
            vec![
                Instr::PushInt(1),
                Instr::PushBool(true),
                Instr::Eq,
                Instr::Return,
            ],
        )]);
        assert!(matches!(
            verify(m).unwrap_err().kind,
            VerifyErrorKind::TypeMismatch { .. }
        ));
        // Matching string equality is fine.
        let m = module_with(vec![func(
            Signature::new(vec![], Some(Ty::Bool)),
            vec![],
            vec![
                Instr::PushStr(0),
                Instr::PushStr(0),
                Instr::Eq,
                Instr::Return,
            ],
        )]);
        verify(m).unwrap();
    }
}
