//! A small text assembler for extension modules.
//!
//! The format keeps example extensions readable:
//!
//! ```text
//! module logger
//! import print = "/svc/console/print" (str)
//! import read  = "/svc/fs/read" (str) -> str
//!
//! func main() -> int
//!   locals n: int
//!   push_str "hello"
//!   syscall print
//!   push_int 0
//!   ret
//! end
//!
//! export main = main
//! ```
//!
//! Lines are one directive or instruction each; `#` starts a comment.
//! Jump targets are written as label names (`label loop` ... `jump loop`);
//! locals can be referenced by name or index; `push_str` takes a string
//! literal and pools it automatically; `syscall` takes an import alias and
//! `call` a function name.

use crate::instr::Instr;
use crate::module::{Export, Function, ImportDecl, Module, Signature};
use crate::types::Ty;
use std::collections::BTreeMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// The 1-based line number.
    pub line: usize,
    /// The error message.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

fn parse_ty(s: &str, line: usize) -> Result<Ty, AsmError> {
    match s {
        "int" => Ok(Ty::Int),
        "bool" => Ok(Ty::Bool),
        "str" => Ok(Ty::Str),
        _ => err(line, format!("unknown type {s:?}")),
    }
}

/// Parses `(ty, ty) -> ty` or `(ty)` into a signature, also returning
/// parameter names when given as `name: ty`.
fn parse_sig(s: &str, line: usize) -> Result<(Signature, Vec<String>), AsmError> {
    let s = s.trim();
    let Some(open) = s.find('(') else {
        return err(line, "expected `(`");
    };
    let Some(close) = s.rfind(')') else {
        return err(line, "expected `)`");
    };
    if open != 0 {
        return err(line, "unexpected tokens before `(`");
    }
    let params_src = &s[open + 1..close];
    let mut params = Vec::new();
    let mut names = Vec::new();
    for (i, piece) in params_src.split(',').enumerate() {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        match piece.split_once(':') {
            Some((name, ty)) => {
                names.push(name.trim().to_string());
                params.push(parse_ty(ty.trim(), line)?);
            }
            None => {
                names.push(format!("arg{i}"));
                params.push(parse_ty(piece, line)?);
            }
        }
    }
    let rest = s[close + 1..].trim();
    let ret = if rest.is_empty() {
        None
    } else if let Some(ty) = rest.strip_prefix("->") {
        Some(parse_ty(ty.trim(), line)?)
    } else {
        return err(line, format!("unexpected trailing tokens {rest:?}"));
    };
    Ok((Signature::new(params, ret), names))
}

/// Parses a double-quoted string literal with `\"`, `\\`, `\n`, `\t`
/// escapes. Returns the value and the rest of the line.
fn parse_string_literal(s: &str, line: usize) -> Result<(String, &str), AsmError> {
    let s = s.trim_start();
    let Some(rest) = s.strip_prefix('"') else {
        return err(line, "expected string literal");
    };
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &rest[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, other)) => return err(line, format!("bad escape \\{other}")),
                None => return err(line, "unterminated escape"),
            },
            other => out.push(other),
        }
    }
    err(line, "unterminated string literal")
}

#[derive(Debug)]
enum Pending {
    Done(Instr),
    Jump(&'static str, String), // mnemonic, label
    Call(String),
    SysCall(String),
}

/// A function whose labels are resolved but whose `call`/`syscall` names
/// still await module-wide resolution.
#[derive(Debug)]
enum Semi {
    Done(Instr),
    Call(usize, String),    // line, function name
    SysCall(usize, String), // line, import alias
}

struct SemiFunction {
    name: String,
    sig: Signature,
    extra_locals: Vec<Ty>,
    code: Vec<Semi>,
}

struct FuncCtx {
    name: String,
    sig: Signature,
    #[allow(dead_code)] // Kept for future diagnostics.
    param_names: Vec<String>,
    extra_locals: Vec<Ty>,
    local_names: BTreeMap<String, u16>,
    pending: Vec<(usize, Pending)>, // (line, instruction)
    labels: BTreeMap<String, u32>,
    started_code: bool,
}

/// Assembles `source` into an (unverified) [`Module`].
pub fn assemble(source: &str) -> Result<Module, AsmError> {
    let mut module = Module::default();
    let mut strings: BTreeMap<String, u32> = BTreeMap::new();
    let mut current: Option<FuncCtx> = None;
    let mut semis: Vec<SemiFunction> = Vec::new();
    let mut exports: Vec<(usize, String, String)> = Vec::new();

    let mut intern = |module: &mut Module, s: String| -> u32 {
        if let Some(&i) = strings.get(&s) {
            return i;
        }
        let i = module.strings.len() as u32;
        module.strings.push(s.clone());
        strings.insert(s, i);
        i
    };

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        // Strip comments, but not inside string literals.
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (word, rest) = match line.split_once(char::is_whitespace) {
            Some((w, r)) => (w, r.trim()),
            None => (line, ""),
        };

        if let Some(ctx) = current.as_mut() {
            // Inside a function body.
            match word {
                "end" => {
                    let ctx = current.take().expect("checked above");
                    semis.push(finish_function(ctx)?);
                }
                "locals" => {
                    if ctx.started_code {
                        return err(lineno, "`locals` must precede code");
                    }
                    for piece in rest.split(',') {
                        let piece = piece.trim();
                        if piece.is_empty() {
                            continue;
                        }
                        let Some((name, ty)) = piece.split_once(':') else {
                            return err(lineno, format!("expected `name: ty`, got {piece:?}"));
                        };
                        let index = (ctx.sig.params.len() + ctx.extra_locals.len()) as u16;
                        ctx.extra_locals.push(parse_ty(ty.trim(), lineno)?);
                        if ctx
                            .local_names
                            .insert(name.trim().to_string(), index)
                            .is_some()
                        {
                            return err(lineno, format!("duplicate local {name:?}"));
                        }
                    }
                }
                "label" => {
                    ctx.started_code = true;
                    let name = rest.trim();
                    if name.is_empty() {
                        return err(lineno, "label needs a name");
                    }
                    if ctx
                        .labels
                        .insert(name.to_string(), ctx.pending.len() as u32)
                        .is_some()
                    {
                        return err(lineno, format!("duplicate label {name:?}"));
                    }
                }
                _ => {
                    ctx.started_code = true;
                    let pending = parse_instr(word, rest, lineno, ctx, |s| intern(&mut module, s))?;
                    ctx.pending.push((lineno, pending));
                }
            }
            continue;
        }

        // Top-level directives.
        match word {
            "module" => {
                if rest.is_empty() {
                    return err(lineno, "module needs a name");
                }
                module.name = rest.to_string();
            }
            "import" => {
                let Some((alias, decl)) = rest.split_once('=') else {
                    return err(lineno, "expected `import alias = \"path\" (sig)`");
                };
                let alias = alias.trim().to_string();
                let (path, after) = parse_string_literal(decl.trim(), lineno)?;
                let (sig, _) = parse_sig(after.trim(), lineno)?;
                module.imports.push(ImportDecl { alias, path, sig });
            }
            "func" => {
                let Some(open) = rest.find('(') else {
                    return err(lineno, "expected `func name(params) [-> ty]`");
                };
                let name = rest[..open].trim().to_string();
                if name.is_empty() {
                    return err(lineno, "func needs a name");
                }
                let (sig, param_names) = parse_sig(&rest[open..], lineno)?;
                let mut local_names = BTreeMap::new();
                for (i, p) in param_names.iter().enumerate() {
                    local_names.insert(p.clone(), i as u16);
                }
                current = Some(FuncCtx {
                    name,
                    sig,
                    param_names,
                    extra_locals: Vec::new(),
                    local_names,
                    pending: Vec::new(),
                    labels: BTreeMap::new(),
                    started_code: false,
                });
            }
            "export" => {
                let Some((ext, func)) = rest.split_once('=') else {
                    return err(lineno, "expected `export name = func`");
                };
                exports.push((lineno, ext.trim().to_string(), func.trim().to_string()));
            }
            other => return err(lineno, format!("unknown directive {other:?}")),
        }
    }

    if current.is_some() {
        return err(
            source.lines().count(),
            "unterminated function (missing `end`)",
        );
    }

    // Module-wide resolution: function names for `call`, import aliases
    // for `syscall`.
    let func_index: BTreeMap<String, u32> = semis
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i as u32))
        .collect();
    let import_index: BTreeMap<String, u32> = module
        .imports
        .iter()
        .enumerate()
        .map(|(i, d)| (d.alias.clone(), i as u32))
        .collect();
    for semi in semis {
        let mut code = Vec::with_capacity(semi.code.len());
        for s in semi.code {
            code.push(match s {
                Semi::Done(i) => i,
                Semi::Call(line, name) => {
                    let Some(&idx) = func_index.get(&name) else {
                        return err(line, format!("call to unknown function {name:?}"));
                    };
                    Instr::Call(idx)
                }
                Semi::SysCall(line, alias) => {
                    let Some(&idx) = import_index.get(&alias) else {
                        return err(line, format!("syscall to unknown import {alias:?}"));
                    };
                    Instr::SysCall(idx)
                }
            });
        }
        module.functions.push(Function {
            name: semi.name,
            sig: semi.sig,
            extra_locals: semi.extra_locals,
            code,
        });
    }

    for (lineno, ext, func) in exports {
        let Some(idx) = module.functions.iter().position(|f| f.name == func) else {
            return err(
                lineno,
                format!("export references unknown function {func:?}"),
            );
        };
        module.exports.push(Export {
            name: ext,
            func: idx as u32,
        });
    }

    Ok(module)
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn parse_instr(
    word: &str,
    rest: &str,
    line: usize,
    ctx: &FuncCtx,
    mut intern: impl FnMut(String) -> u32,
) -> Result<Pending, AsmError> {
    let local = |arg: &str| -> Result<u16, AsmError> {
        if let Ok(i) = arg.parse::<u16>() {
            return Ok(i);
        }
        ctx.local_names.get(arg).copied().ok_or_else(|| AsmError {
            line,
            msg: format!("unknown local {arg:?}"),
        })
    };
    let int_arg = |arg: &str| -> Result<i64, AsmError> {
        arg.parse::<i64>().map_err(|_| AsmError {
            line,
            msg: format!("expected integer, got {arg:?}"),
        })
    };

    let done = |i: Instr| Ok(Pending::Done(i));
    match word {
        "push_int" => done(Instr::PushInt(int_arg(rest)?)),
        "push_bool" => match rest {
            "true" => done(Instr::PushBool(true)),
            "false" => done(Instr::PushBool(false)),
            other => err(line, format!("expected true/false, got {other:?}")),
        },
        "push_str" => {
            let (s, after) = parse_string_literal(rest, line)?;
            if !after.trim().is_empty() {
                return err(line, "unexpected tokens after string literal");
            }
            done(Instr::PushStr(intern(s)))
        }
        "dup" => done(Instr::Dup),
        "pop" => done(Instr::Pop),
        "swap" => done(Instr::Swap),
        "load_local" => done(Instr::LoadLocal(local(rest)?)),
        "store_local" => done(Instr::StoreLocal(local(rest)?)),
        "add" => done(Instr::Add),
        "sub" => done(Instr::Sub),
        "mul" => done(Instr::Mul),
        "div" => done(Instr::Div),
        "rem" => done(Instr::Rem),
        "neg" => done(Instr::Neg),
        "eq" => done(Instr::Eq),
        "ne" => done(Instr::Ne),
        "lt" => done(Instr::Lt),
        "le" => done(Instr::Le),
        "gt" => done(Instr::Gt),
        "ge" => done(Instr::Ge),
        "not" => done(Instr::Not),
        "and" => done(Instr::And),
        "or" => done(Instr::Or),
        "concat" => done(Instr::Concat),
        "str_len" => done(Instr::StrLen),
        "int_to_str" => done(Instr::IntToStr),
        "str_to_int" => done(Instr::StrToInt),
        "jump" => Ok(Pending::Jump("jump", rest.to_string())),
        "jump_if" => Ok(Pending::Jump("jump_if", rest.to_string())),
        "jump_if_not" => Ok(Pending::Jump("jump_if_not", rest.to_string())),
        "call" => Ok(Pending::Call(rest.to_string())),
        "syscall" => Ok(Pending::SysCall(rest.to_string())),
        "ret" => done(Instr::Return),
        "trap" => done(Instr::Trap),
        "nop" => done(Instr::Nop),
        other => err(line, format!("unknown instruction {other:?}")),
    }
}

fn finish_function(ctx: FuncCtx) -> Result<SemiFunction, AsmError> {
    let FuncCtx {
        name,
        sig,
        param_names: _,
        extra_locals,
        local_names: _,
        pending,
        labels,
        started_code: _,
    } = ctx;
    let mut code = Vec::with_capacity(pending.len());
    for (line, p) in pending {
        code.push(match p {
            Pending::Done(i) => Semi::Done(i),
            Pending::Jump(kind, label) => {
                let Some(&target) = labels.get(&label) else {
                    return err(line, format!("unknown label {label:?}"));
                };
                Semi::Done(match kind {
                    "jump" => Instr::Jump(target),
                    "jump_if" => Instr::JumpIf(target),
                    _ => Instr::JumpIfNot(target),
                })
            }
            Pending::Call(name) => Semi::Call(line, name),
            Pending::SysCall(alias) => Semi::SysCall(line, alias),
        });
    }
    Ok(SemiFunction {
        name,
        sig,
        extra_locals,
        code,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::interp::{Machine, NullHost, SyscallHost};
    use crate::types::Value;
    use crate::verify::verify;

    #[test]
    fn full_program_assembles_verifies_and_runs() {
        let m = assemble(
            r#"
            module counter
            # Sum the integers below n.
            func sum(n: int) -> int
              locals i: int, acc: int
              push_int 0
              store_local i
              push_int 0
              store_local acc
            label loop
              load_local i
              load_local n
              lt
              jump_if_not done
              load_local acc
              load_local i
              add
              store_local acc
              load_local i
              push_int 1
              add
              store_local i
              jump loop
            label done
              load_local acc
              ret
            end
            export sum = sum
            "#,
        )
        .unwrap();
        let verified = verify(m).unwrap();
        let r = Machine::new(&verified)
            .run("sum", &[Value::Int(100)], &mut NullHost)
            .unwrap();
        assert_eq!(r, Some(Value::Int(4950)));
    }

    #[test]
    fn imports_and_syscalls_resolve_by_alias() {
        struct Echo;
        impl SyscallHost for Echo {
            fn syscall(
                &mut self,
                import: &crate::module::ImportDecl,
                args: &[Value],
            ) -> Result<Option<Value>, String> {
                assert_eq!(import.path, "/svc/echo");
                Ok(Some(args[0].clone()))
            }
        }
        let m = assemble(
            r#"
            module m
            import echo = "/svc/echo" (str) -> str
            func main() -> str
              push_str "hi there"
              syscall echo
              ret
            end
            export main = main
            "#,
        )
        .unwrap();
        assert_eq!(m.imports.len(), 1);
        let verified = verify(m).unwrap();
        let r = Machine::new(&verified).run("main", &[], &mut Echo).unwrap();
        assert_eq!(r, Some(Value::Str("hi there".into())));
    }

    #[test]
    fn cross_function_calls_resolve_by_name() {
        let m = assemble(
            r#"
            module m
            func double(x: int) -> int
              load_local x
              push_int 2
              mul
              ret
            end
            func main() -> int
              push_int 21
              call double
              ret
            end
            export main = main
            "#,
        )
        .unwrap();
        let verified = verify(m).unwrap();
        let r = Machine::new(&verified)
            .run("main", &[], &mut NullHost)
            .unwrap();
        assert_eq!(r, Some(Value::Int(42)));
    }

    #[test]
    fn string_escapes_and_comments() {
        let m = assemble(
            r#"
            module m
            func f() -> str
              push_str "a#b\"c\n" # this is a comment, the # above is not
              ret
            end
            export f = f
            "#,
        )
        .unwrap();
        assert_eq!(m.strings, vec!["a#b\"c\n".to_string()]);
    }

    #[test]
    fn string_pool_deduplicates() {
        let m = assemble(
            r#"
            module m
            func f() -> str
              push_str "same"
              pop
              push_str "same"
              ret
            end
            export f = f
            "#,
        )
        .unwrap();
        assert_eq!(m.strings.len(), 1);
    }

    #[test]
    fn error_on_unknown_label() {
        let e = assemble(
            r#"
            module m
            func f()
              jump nowhere
              ret
            end
            "#,
        )
        .unwrap_err();
        assert!(e.msg.contains("unknown label"));
    }

    #[test]
    fn error_on_unknown_local_and_instruction() {
        let e = assemble("module m\nfunc f()\n load_local ghost\n ret\nend\n").unwrap_err();
        assert!(e.msg.contains("unknown local"));
        let e = assemble("module m\nfunc f()\n warp 9\n ret\nend\n").unwrap_err();
        assert!(e.msg.contains("unknown instruction"));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn error_on_unknown_call_and_import() {
        let e = assemble("module m\nfunc f()\n call ghost\nend\n").unwrap_err();
        assert!(e.msg.contains("unknown function"));
        let e = assemble("module m\nfunc f()\n syscall ghost\nend\n").unwrap_err();
        assert!(e.msg.contains("unknown import"));
    }

    #[test]
    fn error_on_missing_end() {
        let e = assemble("module m\nfunc f()\n ret\n").unwrap_err();
        assert!(e.msg.contains("missing `end`"));
    }

    #[test]
    fn error_on_dangling_export() {
        let e = assemble("module m\nexport main = ghost\n").unwrap_err();
        assert!(e.msg.contains("unknown function"));
    }

    #[test]
    fn locals_must_precede_code() {
        let e = assemble("module m\nfunc f()\n nop\n locals x: int\n ret\nend\n").unwrap_err();
        assert!(e.msg.contains("must precede code"));
    }

    #[test]
    fn duplicate_labels_and_locals_rejected() {
        let e = assemble("module m\nfunc f()\nlabel a\nlabel a\n ret\nend\n").unwrap_err();
        assert!(e.msg.contains("duplicate label"));
        let e = assemble("module m\nfunc f()\n locals x: int, x: int\n ret\nend\n").unwrap_err();
        assert!(e.msg.contains("duplicate local"));
    }

    #[test]
    fn void_functions_and_bare_param_types() {
        let m = assemble(
            r#"
            module m
            func f(int, bool)
              ret
            end
            export f = f
            "#,
        )
        .unwrap();
        assert_eq!(m.functions[0].sig.params, vec![Ty::Int, Ty::Bool]);
        assert_eq!(m.functions[0].sig.ret, None);
        verify(m).unwrap();
    }

    #[test]
    fn assembles_minimal_module() {
        let m = assemble(
            r#"
            module hello
            func f() -> int
              push_int 42
              ret
            end
            export f = f
            "#,
        )
        .unwrap();
        assert_eq!(m.name, "hello");
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].code, vec![Instr::PushInt(42), Instr::Return]);
        assert_eq!(m.exports[0].name, "f");
    }
}
