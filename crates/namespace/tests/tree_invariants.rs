//! Property tests: arbitrary operation sequences keep the name-space
//! tree structurally sound.

use extsec_namespace::{NameSpace, NodeKind, NsError, NsPath, Protection};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert { parent: usize, name: u8 },
    Remove { victim: usize },
    Ensure { a: u8, b: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64, 0u8..6).prop_map(|(parent, name)| Op::Insert { parent, name }),
        (0usize..64).prop_map(|victim| Op::Remove { victim }),
        (0u8..4, 0u8..4).prop_map(|(a, b)| Op::Ensure { a, b }),
    ]
}

/// Applies an op, choosing targets from the current population so most
/// operations hit live nodes.
fn apply(ns: &mut NameSpace, op: &Op) {
    let nodes = ns.walk();
    match op {
        Op::Insert { parent, name } => {
            let (_, parent_path) = &nodes[parent % nodes.len()];
            let _ = ns.insert(
                parent_path,
                &format!("n{name}"),
                if name % 2 == 0 {
                    NodeKind::Directory
                } else {
                    NodeKind::Object
                },
                Protection::default(),
            );
        }
        Op::Remove { victim } => {
            let (_, victim_path) = &nodes[victim % nodes.len()];
            let _ = ns.remove(victim_path);
        }
        Op::Ensure { a, b } => {
            let path: NsPath = format!("/e{a}/e{b}").parse().unwrap();
            let _ = ns.ensure_path(&path, NodeKind::Directory, &Protection::default());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn structure_survives_random_operations(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut ns = NameSpace::default();
        for op in &ops {
            apply(&mut ns, op);

            // Invariant 1: every walked (id, path) resolves back to
            // itself, and path_of inverts resolve.
            let walked = ns.walk();
            for (id, path) in &walked {
                prop_assert_eq!(ns.resolve(path), Ok(*id));
                prop_assert_eq!(&ns.path_of(*id).unwrap(), path);
            }

            // Invariant 2: walk covers exactly `len` live nodes and
            // starts at the root.
            prop_assert_eq!(walked.len(), ns.len());
            prop_assert_eq!(&walked[0].1, &NsPath::root());

            // Invariant 3: children agree with parent pointers.
            for (id, _) in &walked {
                let node = ns.node(*id).unwrap();
                for (name, &child) in node.children() {
                    let child_node = ns.node(child).unwrap();
                    prop_assert_eq!(child_node.parent(), Some(*id));
                    prop_assert_eq!(child_node.name(), name.as_str());
                }
            }
        }
    }

    #[test]
    fn removed_ids_stay_dead(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let mut ns = NameSpace::default();
        let mut dead: Vec<(extsec_namespace::NodeId, NsPath)> = Vec::new();
        for op in &ops {
            if let Op::Remove { victim } = op {
                let nodes = ns.walk();
                let (id, path) = nodes[victim % nodes.len()].clone();
                if ns.remove(&path).is_ok() {
                    dead.push((id, path));
                }
                continue;
            }
            apply(&mut ns, op);
            // Ids may be recycled, but a dead path either stays gone or
            // names a *different* live node (fresh insert); resolving it
            // must never produce an inconsistency.
            for (_, path) in &dead {
                match ns.resolve(path) {
                    Ok(new_id) => {
                        prop_assert_eq!(&ns.path_of(new_id).unwrap(), path);
                    }
                    Err(NsError::NotFound(_)) | Err(NsError::NotAContainer(_)) => {}
                    Err(other) => {
                        return Err(TestCaseError::fail(format!("unexpected {other}")));
                    }
                }
            }
        }
    }
}
