//! Name-space queries: glob matching and subtree search.
//!
//! Administration tools need to ask questions like "every procedure under
//! `/svc/**`" or "all objects named `*.log`". Patterns are
//! path-structured globs:
//!
//! * `*` matches exactly one component (any name),
//! * `**` matches zero or more components,
//! * any other component matches literally, except that a trailing `*`
//!   or leading `*` within a component matches name prefixes/suffixes
//!   (e.g. `*.log`, `report*`).
//!
//! Patterns are absolute, like the paths they match.

use crate::node::NodeId;
use crate::path::{NsPath, PathError};
use crate::tree::NameSpace;
use std::fmt;
use std::str::FromStr;

/// One component of a glob pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Segment {
    /// Matches exactly one component with the given name.
    Literal(String),
    /// Matches one component ending with the suffix (`*abc`).
    Suffix(String),
    /// Matches one component starting with the prefix (`abc*`).
    Prefix(String),
    /// Matches one component containing infix around a single `*`
    /// (`ab*cd`).
    Circumfix(String, String),
    /// Matches any single component (`*`).
    Any,
    /// Matches zero or more components (`**`).
    Glob,
}

impl Segment {
    fn parse(s: &str) -> Segment {
        if s == "**" {
            return Segment::Glob;
        }
        if s == "*" {
            return Segment::Any;
        }
        match s.find('*') {
            None => Segment::Literal(s.to_string()),
            Some(pos) => {
                let (before, after) = s.split_at(pos);
                let after = &after[1..];
                if after.contains('*') {
                    // Multiple stars: treat conservatively as circumfix
                    // on the outermost pair by collapsing inner stars
                    // into the prefix/suffix boundary.
                    let last = s.rfind('*').expect("contains *");
                    Segment::Circumfix(s[..pos].to_string(), s[last + 1..].to_string())
                } else if before.is_empty() {
                    Segment::Suffix(after.to_string())
                } else if after.is_empty() {
                    Segment::Prefix(before.to_string())
                } else {
                    Segment::Circumfix(before.to_string(), after.to_string())
                }
            }
        }
    }

    fn matches(&self, name: &str) -> bool {
        match self {
            Segment::Literal(l) => l == name,
            Segment::Suffix(suffix) => name.ends_with(suffix.as_str()),
            Segment::Prefix(prefix) => name.starts_with(prefix.as_str()),
            Segment::Circumfix(prefix, suffix) => {
                name.len() >= prefix.len() + suffix.len()
                    && name.starts_with(prefix.as_str())
                    && name.ends_with(suffix.as_str())
            }
            Segment::Any => true,
            Segment::Glob => true,
        }
    }
}

/// A compiled glob pattern over name-space paths.
///
/// # Examples
///
/// ```
/// use extsec_namespace::Glob;
///
/// let g: Glob = "/svc/**/read".parse().unwrap();
/// assert!(g.matches(&"/svc/fs/read".parse().unwrap()));
/// assert!(g.matches(&"/svc/a/b/read".parse().unwrap()));
/// assert!(!g.matches(&"/svc/fs/write".parse().unwrap()));
///
/// let g: Glob = "/obj/*.log".parse().unwrap();
/// assert!(g.matches(&"/obj/boot.log".parse().unwrap()));
/// assert!(!g.matches(&"/obj/boot.txt".parse().unwrap()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Glob {
    segments: Vec<Segment>,
    source: String,
}

impl Glob {
    /// Returns whether the pattern matches `path`.
    pub fn matches(&self, path: &NsPath) -> bool {
        Self::match_from(&self.segments, path.components())
    }

    fn match_from(pattern: &[Segment], components: &[String]) -> bool {
        match pattern.split_first() {
            None => components.is_empty(),
            Some((Segment::Glob, rest)) => {
                // `**` consumes zero or more components.
                (0..=components.len()).any(|skip| Self::match_from(rest, &components[skip..]))
            }
            Some((seg, rest)) => match components.split_first() {
                Some((name, tail)) => seg.matches(name) && Self::match_from(rest, tail),
                None => false,
            },
        }
    }
}

impl FromStr for Glob {
    type Err = PathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let Some(rest) = s.strip_prefix('/') else {
            return Err(PathError::NotAbsolute(s.to_string()));
        };
        let rest = rest.strip_suffix('/').unwrap_or(rest);
        let mut segments = Vec::new();
        if !rest.is_empty() {
            for part in rest.split('/') {
                if part.is_empty() || part == "." || part == ".." {
                    return Err(PathError::BadComponent(part.to_string()));
                }
                segments.push(Segment::parse(part));
            }
        }
        Ok(Glob {
            segments,
            source: s.to_string(),
        })
    }
}

impl fmt::Display for Glob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

impl NameSpace {
    /// Returns every `(id, path)` whose path matches `pattern`, in
    /// depth-first order.
    pub fn find(&self, pattern: &Glob) -> Vec<(NodeId, NsPath)> {
        self.walk()
            .into_iter()
            .filter(|(_, path)| pattern.matches(path))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeKind, Protection};

    fn p(s: &str) -> NsPath {
        s.parse().unwrap()
    }

    #[test]
    fn literal_patterns() {
        let g: Glob = "/a/b".parse().unwrap();
        assert!(g.matches(&p("/a/b")));
        assert!(!g.matches(&p("/a")));
        assert!(!g.matches(&p("/a/b/c")));
        assert!(!g.matches(&p("/a/x")));
    }

    #[test]
    fn single_star() {
        let g: Glob = "/svc/*/read".parse().unwrap();
        assert!(g.matches(&p("/svc/fs/read")));
        assert!(g.matches(&p("/svc/net/read")));
        assert!(!g.matches(&p("/svc/read")));
        assert!(!g.matches(&p("/svc/a/b/read")));
    }

    #[test]
    fn double_star() {
        let g: Glob = "/svc/**".parse().unwrap();
        assert!(g.matches(&p("/svc")));
        assert!(g.matches(&p("/svc/fs")));
        assert!(g.matches(&p("/svc/fs/read")));
        assert!(!g.matches(&p("/obj/fs")));
        let g: Glob = "/**/read".parse().unwrap();
        assert!(g.matches(&p("/read")));
        assert!(g.matches(&p("/a/read")));
        assert!(g.matches(&p("/a/b/c/read")));
        assert!(!g.matches(&p("/a/b/write")));
    }

    #[test]
    fn prefix_suffix_infix() {
        let g: Glob = "/obj/*.log".parse().unwrap();
        assert!(g.matches(&p("/obj/boot.log")));
        assert!(!g.matches(&p("/obj/boot.txt")));
        let g: Glob = "/obj/report*".parse().unwrap();
        assert!(g.matches(&p("/obj/report-q3")));
        assert!(!g.matches(&p("/obj/q3-report")));
        let g: Glob = "/obj/a*z".parse().unwrap();
        assert!(g.matches(&p("/obj/abcz")));
        assert!(g.matches(&p("/obj/az")));
        assert!(!g.matches(&p("/obj/ab")));
    }

    #[test]
    fn root_pattern() {
        let g: Glob = "/".parse().unwrap();
        assert!(g.matches(&NsPath::root()));
        assert!(!g.matches(&p("/a")));
        let g: Glob = "/**".parse().unwrap();
        assert!(g.matches(&NsPath::root()));
        assert!(g.matches(&p("/a/b")));
    }

    #[test]
    fn bad_patterns() {
        assert!("a/b".parse::<Glob>().is_err());
        assert!("/a//b".parse::<Glob>().is_err());
        assert!("/a/../b".parse::<Glob>().is_err());
    }

    #[test]
    fn find_over_a_tree() {
        let mut ns = NameSpace::default();
        for path in ["/svc/fs/read", "/svc/fs/write", "/svc/net/read", "/obj/x"] {
            ns.ensure_path(&p(path), NodeKind::Domain, &Protection::default())
                .unwrap();
        }
        let found: Vec<String> = ns
            .find(&"/svc/**/read".parse().unwrap())
            .into_iter()
            .map(|(_, p)| p.to_string())
            .collect();
        assert_eq!(found, vec!["/svc/fs/read", "/svc/net/read"]);
        assert_eq!(ns.find(&"/**".parse().unwrap()).len(), ns.len());
    }
}
