//! The universal hierarchical name space for extensible systems.
//!
//! Paper §2.3: "The name space of all system services should form a
//! hierarchy of names, where access to each level of the hierarchy is
//! protected." Leaves are individual functions (methods/procedures) or
//! other terminal objects such as files; interior nodes are objects,
//! interfaces, packages, domains — and, for files, directories. Because the
//! structure mirrors file-system naming, **one** name space can integrate
//! every named object in the system, enabling "a central name server to
//! enforce all protection".
//!
//! Every node carries a [`Protection`] record — an ACL (discretionary
//! control) plus a security class label (mandatory control) and, for code
//! objects, an optional *static* security class (§2.2: extensions may be
//! statically bound to a class). The name space itself performs **no**
//! access checks; the reference monitor resolves paths through
//! [`NameSpace::resolve_with`], supplying a per-level visitor so that
//! visibility (`list`) is enforced at each step of the traversal.
//!
//! # Examples
//!
//! ```
//! use extsec_namespace::{NameSpace, NodeKind, NsPath, Protection};
//!
//! let mut ns = NameSpace::new(Protection::default());
//! let svc = ns
//!     .insert(&NsPath::root(), "svc", NodeKind::Domain, Protection::default())
//!     .unwrap();
//! ns.insert_at(svc, "fs", NodeKind::Interface, Protection::default())
//!     .unwrap();
//! let path: NsPath = "/svc/fs".parse().unwrap();
//! assert!(ns.resolve(&path).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod path;
pub mod query;
pub mod tree;

pub use node::{Node, NodeId, NodeKind, Protection};
pub use path::{NsPath, PathError};
pub use query::Glob;
pub use tree::{NameSpace, NsError};
