//! The arena-backed name-space tree.

use crate::node::{Node, NodeId, NodeKind, Protection};
use crate::path::NsPath;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from name-space operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NsError {
    /// The path (or a prefix of it) does not name a node.
    NotFound(NsPath),
    /// The target of an insert already exists.
    AlreadyExists(NsPath),
    /// An interior step of a path is not a container.
    NotAContainer(NsPath),
    /// A container slated for removal still has children.
    NotEmpty(NsPath),
    /// The root cannot be removed or re-inserted.
    RootImmutable,
    /// A stale or foreign node id was used.
    BadNodeId(NodeId),
    /// A per-level visitor aborted resolution at the given prefix.
    VisitDenied(NsPath),
    /// An internal fault (in practice, an injected one) interrupted the
    /// operation. The reference monitor maps this to a structural denial,
    /// so a faulting traversal fails closed.
    Fault(String),
}

impl fmt::Display for NsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NsError::NotFound(p) => write!(f, "{p}: not found"),
            NsError::AlreadyExists(p) => write!(f, "{p}: already exists"),
            NsError::NotAContainer(p) => write!(f, "{p}: not a container"),
            NsError::NotEmpty(p) => write!(f, "{p}: container not empty"),
            NsError::RootImmutable => write!(f, "the root node is immutable"),
            NsError::BadNodeId(id) => write!(f, "bad node id {id}"),
            NsError::VisitDenied(p) => write!(f, "{p}: traversal denied"),
            NsError::Fault(msg) => write!(f, "name-space fault: {msg}"),
        }
    }
}

impl std::error::Error for NsError {}

/// The universal name space: a protected tree of named nodes.
///
/// Stored as an arena with a free list; node ids stay stable across
/// unrelated inserts and removals. The tree performs no access checks of
/// its own — the reference monitor drives [`NameSpace::resolve_with`] with
/// a per-level visitor to enforce visibility on every traversal step.
///
/// # Examples
///
/// ```
/// use extsec_namespace::{NameSpace, NodeKind, NsPath, Protection};
///
/// let mut ns = NameSpace::new(Protection::default());
/// ns.insert(&NsPath::root(), "svc", NodeKind::Domain, Protection::default()).unwrap();
/// let fs: NsPath = "/svc/fs".parse().unwrap();
/// ns.insert(&fs.parent().unwrap(), "fs", NodeKind::Interface, Protection::default()).unwrap();
/// let read = ns
///     .insert(&fs, "read", NodeKind::Procedure, Protection::default())
///     .unwrap();
/// assert_eq!(ns.path_of(read).unwrap().to_string(), "/svc/fs/read");
/// ```
#[derive(Clone, Debug)]
pub struct NameSpace {
    nodes: Vec<Option<Node>>,
    free: Vec<NodeId>,
    /// Per-slot reuse counters: `epochs[i]` is bumped every time slot `i`
    /// is vacated, so an `(id, epoch)` pair names one node *occupancy*
    /// even though raw ids are recycled. Callers that key long-lived state
    /// (e.g. decision caches) on node ids must key on the pair.
    epochs: Vec<u32>,
}

impl NameSpace {
    /// Creates a name space whose root (a `Domain`) carries the given
    /// protection.
    pub fn new(root_protection: Protection) -> Self {
        let root = Node {
            name: String::new(),
            kind: NodeKind::Domain,
            protection: root_protection,
            parent: None,
            children: BTreeMap::new(),
            extensible: false,
        };
        NameSpace {
            nodes: vec![Some(root)],
            free: Vec::new(),
            epochs: vec![0],
        }
    }

    /// Returns the reuse epoch of `id`'s slot. Together with the id this
    /// uniquely names one node occupancy: removing a node bumps its
    /// slot's epoch, so a recycled id is distinguishable from the node it
    /// replaced. Returns the current slot epoch even for vacant slots (a
    /// subsequent insert reuses the slot at that epoch).
    pub fn epoch(&self, id: NodeId) -> u32 {
        self.epochs.get(id.0 as usize).copied().unwrap_or(0)
    }

    /// Returns the node for `id`.
    pub fn node(&self, id: NodeId) -> Result<&Node, NsError> {
        self.nodes
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(NsError::BadNodeId(id))
    }

    fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, NsError> {
        self.nodes
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(NsError::BadNodeId(id))
    }

    /// Resolves `path` to a node id without any per-level checks.
    pub fn resolve(&self, path: &NsPath) -> Result<NodeId, NsError> {
        self.resolve_with(path, |_, _, _| true)
    }

    /// Resolves `path`, invoking `visit` on every node along the way —
    /// including the root and the final node. `visit` receives the id, the
    /// node, and whether this is the final component; returning `false`
    /// aborts resolution with [`NsError::VisitDenied`] naming the prefix
    /// that was refused.
    pub fn resolve_with<F>(&self, path: &NsPath, mut visit: F) -> Result<NodeId, NsError>
    where
        F: FnMut(NodeId, &Node, bool) -> bool,
    {
        if let Some(fault) = extsec_faults::fire("ns.resolve") {
            return Err(NsError::Fault(fault.to_string()));
        }
        let mut current = NodeId::ROOT;
        let components = path.components();
        // Visit the root first.
        let root = self.node(current)?;
        if !visit(current, root, components.is_empty()) {
            return Err(NsError::VisitDenied(NsPath::root()));
        }
        for (i, name) in components.iter().enumerate() {
            let node = self.node(current)?;
            if !node.kind.is_container() {
                let prefix = NsPath::from_components(components[..i].iter().cloned())
                    .expect("already-validated components");
                return Err(NsError::NotAContainer(prefix));
            }
            let Some(&child) = node.children.get(name) else {
                let prefix = NsPath::from_components(components[..=i].iter().cloned())
                    .expect("already-validated components");
                return Err(NsError::NotFound(prefix));
            };
            let child_node = self.node(child)?;
            let last = i + 1 == components.len();
            if !visit(child, child_node, last) {
                let prefix = NsPath::from_components(components[..=i].iter().cloned())
                    .expect("already-validated components");
                return Err(NsError::VisitDenied(prefix));
            }
            current = child;
        }
        Ok(current)
    }

    /// Inserts a child under the container at `parent_path`.
    pub fn insert(
        &mut self,
        parent_path: &NsPath,
        name: &str,
        kind: NodeKind,
        protection: Protection,
    ) -> Result<NodeId, NsError> {
        let parent = self.resolve(parent_path)?;
        self.insert_at(parent, name, kind, protection)
            .map_err(|e| match e {
                // Rewrite child-path errors to full paths for diagnostics.
                NsError::AlreadyExists(_) => NsError::AlreadyExists(
                    parent_path
                        .join(name)
                        .unwrap_or_else(|_| parent_path.clone()),
                ),
                other => other,
            })
    }

    /// Inserts a child under the container `parent`.
    pub fn insert_at(
        &mut self,
        parent: NodeId,
        name: &str,
        kind: NodeKind,
        protection: Protection,
    ) -> Result<NodeId, NsError> {
        if let Some(fault) = extsec_faults::fire("ns.insert") {
            return Err(NsError::Fault(fault.to_string()));
        }
        if !NsPath::valid_component(name) {
            return Err(NsError::NotFound(NsPath::root()));
        }
        let parent_node = self.node(parent)?;
        if !parent_node.kind.is_container() {
            return Err(NsError::NotAContainer(
                self.path_of(parent).unwrap_or_else(|_| NsPath::root()),
            ));
        }
        if parent_node.children.contains_key(name) {
            let path = self
                .path_of(parent)
                .and_then(|p| p.join(name).map_err(|_| NsError::BadNodeId(parent)))
                .unwrap_or_else(|_| NsPath::root());
            return Err(NsError::AlreadyExists(path));
        }
        let node = Node {
            name: name.to_string(),
            kind,
            protection,
            parent: Some(parent),
            children: BTreeMap::new(),
            extensible: false,
        };
        let id = match self.free.pop() {
            Some(id) => {
                self.nodes[id.0 as usize] = Some(node);
                id
            }
            None => {
                let id = NodeId(self.nodes.len() as u32);
                self.nodes.push(Some(node));
                self.epochs.push(0);
                id
            }
        };
        self.node_mut(parent)
            .expect("parent existed above")
            .children
            .insert(name.to_string(), id);
        Ok(id)
    }

    /// Removes the node at `path`. Containers must be empty.
    pub fn remove(&mut self, path: &NsPath) -> Result<(), NsError> {
        let id = self.resolve(path)?;
        self.remove_id(id)
    }

    /// Removes the node `id`. Containers must be empty.
    pub fn remove_id(&mut self, id: NodeId) -> Result<(), NsError> {
        if let Some(fault) = extsec_faults::fire("ns.remove") {
            return Err(NsError::Fault(fault.to_string()));
        }
        if id == NodeId::ROOT {
            return Err(NsError::RootImmutable);
        }
        let node = self.node(id)?;
        if !node.children.is_empty() {
            return Err(NsError::NotEmpty(
                self.path_of(id).unwrap_or_else(|_| NsPath::root()),
            ));
        }
        let parent = node.parent.expect("non-root nodes have parents");
        let name = node.name.clone();
        self.node_mut(parent)?.children.remove(&name);
        self.nodes[id.0 as usize] = None;
        self.epochs[id.0 as usize] += 1;
        self.free.push(id);
        Ok(())
    }

    /// Reconstructs the absolute path of `id`.
    pub fn path_of(&self, id: NodeId) -> Result<NsPath, NsError> {
        let mut components = Vec::new();
        let mut current = id;
        loop {
            let node = self.node(current)?;
            match node.parent {
                Some(parent) => {
                    components.push(node.name.clone());
                    current = parent;
                }
                None => break,
            }
        }
        components.reverse();
        Ok(NsPath::from_components(components).expect("stored names are valid"))
    }

    /// Replaces the protection record of the node at `id`.
    pub fn set_protection(&mut self, id: NodeId, protection: Protection) -> Result<(), NsError> {
        self.node_mut(id)?.protection = protection;
        Ok(())
    }

    /// Mutates the protection record of the node at `id` in place.
    pub fn update_protection<F>(&mut self, id: NodeId, f: F) -> Result<(), NsError>
    where
        F: FnOnce(&mut Protection),
    {
        f(&mut self.node_mut(id)?.protection);
        Ok(())
    }

    /// Marks the node at `id` as extensible (or not).
    pub fn set_extensible(&mut self, id: NodeId, extensible: bool) -> Result<(), NsError> {
        self.node_mut(id)?.extensible = extensible;
        Ok(())
    }

    /// Lists the child names of the container at `path`.
    pub fn list(&self, path: &NsPath) -> Result<Vec<String>, NsError> {
        let id = self.resolve(path)?;
        let node = self.node(id)?;
        if !node.kind.is_container() {
            return Err(NsError::NotAContainer(path.clone()));
        }
        Ok(node.children.keys().cloned().collect())
    }

    /// Returns the number of live nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Returns whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Depth-first iteration over `(id, path)` pairs of the whole tree.
    pub fn walk(&self) -> Vec<(NodeId, NsPath)> {
        let mut out = Vec::new();
        let mut stack = vec![(NodeId::ROOT, NsPath::root())];
        while let Some((id, path)) = stack.pop() {
            if let Ok(node) = self.node(id) {
                for (name, &child) in node.children.iter().rev() {
                    if let Ok(child_path) = path.join(name) {
                        stack.push((child, child_path));
                    }
                }
                out.push((id, path));
            }
        }
        out
    }

    /// Ensures every container along `path` exists (like `mkdir -p`),
    /// creating missing interior nodes with `kind` and clones of
    /// `protection`. Returns the final node's id.
    pub fn ensure_path(
        &mut self,
        path: &NsPath,
        kind: NodeKind,
        protection: &Protection,
    ) -> Result<NodeId, NsError> {
        let mut current = NodeId::ROOT;
        for name in path.components() {
            let node = self.node(current)?;
            current = match node.children.get(name) {
                Some(&child) => child,
                None => self.insert_at(current, name, kind, protection.clone())?,
            };
        }
        Ok(current)
    }
}

impl Default for NameSpace {
    fn default() -> Self {
        NameSpace::new(Protection::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> NsPath {
        s.parse().unwrap()
    }

    fn build() -> NameSpace {
        let mut ns = NameSpace::default();
        ns.insert(&p("/"), "svc", NodeKind::Domain, Protection::default())
            .unwrap();
        ns.insert(&p("/svc"), "fs", NodeKind::Interface, Protection::default())
            .unwrap();
        ns.insert(
            &p("/svc/fs"),
            "read",
            NodeKind::Procedure,
            Protection::default(),
        )
        .unwrap();
        ns
    }

    #[test]
    fn resolve_and_path_round_trip() {
        let ns = build();
        let id = ns.resolve(&p("/svc/fs/read")).unwrap();
        assert_eq!(ns.path_of(id).unwrap(), p("/svc/fs/read"));
        assert_eq!(ns.resolve(&p("/")).unwrap(), NodeId::ROOT);
    }

    #[test]
    fn not_found_names_the_failing_prefix() {
        let ns = build();
        assert_eq!(
            ns.resolve(&p("/svc/net/send")),
            Err(NsError::NotFound(p("/svc/net")))
        );
    }

    #[test]
    fn leaves_are_not_containers() {
        let mut ns = build();
        assert_eq!(
            ns.resolve(&p("/svc/fs/read/deeper")),
            Err(NsError::NotAContainer(p("/svc/fs/read")))
        );
        assert_eq!(
            ns.insert(
                &p("/svc/fs/read"),
                "x",
                NodeKind::Procedure,
                Protection::default()
            ),
            Err(NsError::NotAContainer(p("/svc/fs/read")))
        );
        assert_eq!(
            ns.list(&p("/svc/fs/read")),
            Err(NsError::NotAContainer(p("/svc/fs/read")))
        );
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut ns = build();
        assert_eq!(
            ns.insert(&p("/svc"), "fs", NodeKind::Interface, Protection::default()),
            Err(NsError::AlreadyExists(p("/svc/fs")))
        );
    }

    #[test]
    fn remove_requires_empty_container() {
        let mut ns = build();
        assert_eq!(
            ns.remove(&p("/svc/fs")),
            Err(NsError::NotEmpty(p("/svc/fs")))
        );
        ns.remove(&p("/svc/fs/read")).unwrap();
        ns.remove(&p("/svc/fs")).unwrap();
        assert_eq!(
            ns.resolve(&p("/svc/fs")),
            Err(NsError::NotFound(p("/svc/fs")))
        );
    }

    #[test]
    fn root_is_immutable() {
        let mut ns = build();
        assert_eq!(ns.remove(&p("/")), Err(NsError::RootImmutable));
    }

    #[test]
    fn ids_are_recycled_but_paths_stay_correct() {
        let mut ns = build();
        let before = ns.len();
        ns.remove(&p("/svc/fs/read")).unwrap();
        let id = ns
            .insert(
                &p("/svc/fs"),
                "write",
                NodeKind::Procedure,
                Protection::default(),
            )
            .unwrap();
        assert_eq!(ns.len(), before);
        assert_eq!(ns.path_of(id).unwrap(), p("/svc/fs/write"));
    }

    #[test]
    fn epochs_distinguish_recycled_ids() {
        let mut ns = build();
        let read = ns.resolve(&p("/svc/fs/read")).unwrap();
        let first_epoch = ns.epoch(read);
        ns.remove(&p("/svc/fs/read")).unwrap();
        assert_eq!(ns.epoch(read), first_epoch + 1);
        let write = ns
            .insert(
                &p("/svc/fs"),
                "write",
                NodeKind::Procedure,
                Protection::default(),
            )
            .unwrap();
        // Same recycled slot, different occupancy.
        assert_eq!(write, read);
        assert_eq!(ns.epoch(write), first_epoch + 1);
        // Fresh slots start at epoch zero.
        let other = ns
            .insert(
                &p("/svc/fs"),
                "sync",
                NodeKind::Procedure,
                Protection::default(),
            )
            .unwrap();
        assert_ne!(other, write);
        assert_eq!(ns.epoch(other), 0);
    }

    #[test]
    fn visitor_sees_every_level_and_can_deny() {
        let ns = build();
        let mut seen = Vec::new();
        ns.resolve_with(&p("/svc/fs/read"), |_, node, last| {
            seen.push((node.name().to_string(), last));
            true
        })
        .unwrap();
        assert_eq!(
            seen,
            vec![
                ("".to_string(), false),
                ("svc".to_string(), false),
                ("fs".to_string(), false),
                ("read".to_string(), true)
            ]
        );
        // Deny at the second level.
        let err = ns.resolve_with(&p("/svc/fs/read"), |_, node, _| node.name() != "fs");
        assert_eq!(err, Err(NsError::VisitDenied(p("/svc/fs"))));
    }

    #[test]
    fn list_is_sorted() {
        let mut ns = build();
        ns.insert(
            &p("/svc/fs"),
            "append",
            NodeKind::Procedure,
            Protection::default(),
        )
        .unwrap();
        assert_eq!(ns.list(&p("/svc/fs")).unwrap(), vec!["append", "read"]);
    }

    #[test]
    fn walk_visits_everything() {
        let ns = build();
        let paths: Vec<String> = ns.walk().into_iter().map(|(_, p)| p.to_string()).collect();
        assert_eq!(paths, vec!["/", "/svc", "/svc/fs", "/svc/fs/read"]);
    }

    #[test]
    fn ensure_path_creates_missing_interiors() {
        let mut ns = NameSpace::default();
        let id = ns
            .ensure_path(&p("/a/b/c"), NodeKind::Directory, &Protection::default())
            .unwrap();
        assert_eq!(ns.path_of(id).unwrap(), p("/a/b/c"));
        // Idempotent.
        let again = ns
            .ensure_path(&p("/a/b/c"), NodeKind::Directory, &Protection::default())
            .unwrap();
        assert_eq!(id, again);
    }

    #[test]
    fn set_and_update_protection() {
        let mut ns = build();
        let id = ns.resolve(&p("/svc/fs")).unwrap();
        ns.update_protection(id, |prot| {
            prot.acl.push(extsec_acl::AclEntry::allow_everyone(
                extsec_acl::ModeSet::parse("l").unwrap(),
            ));
        })
        .unwrap();
        assert_eq!(ns.node(id).unwrap().protection().acl.len(), 1);
    }

    #[test]
    fn extensible_flag() {
        let mut ns = build();
        let id = ns.resolve(&p("/svc/fs/read")).unwrap();
        assert!(!ns.node(id).unwrap().extensible());
        ns.set_extensible(id, true).unwrap();
        assert!(ns.node(id).unwrap().extensible());
    }

    #[test]
    fn stale_ids_detected() {
        let mut ns = build();
        let id = ns.resolve(&p("/svc/fs/read")).unwrap();
        ns.remove_id(id).unwrap();
        assert_eq!(ns.node(id).err(), Some(NsError::BadNodeId(id)));
        assert_eq!(ns.path_of(id).err(), Some(NsError::BadNodeId(id)));
    }
}
