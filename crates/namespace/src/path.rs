//! Hierarchical path names.
//!
//! Paths are absolute, `/`-separated, and rooted at `/`. Components may
//! contain any character except `/`, and the reserved names `.` and `..`
//! are rejected — the name space has no notion of relative traversal, which
//! keeps resolution (and therefore protection) strictly top-down.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Errors from parsing or manipulating paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// The path did not start with `/`.
    NotAbsolute(String),
    /// A component was empty (`//`) or reserved (`.`/`..`).
    BadComponent(String),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::NotAbsolute(p) => write!(f, "path {p:?} is not absolute"),
            PathError::BadComponent(c) => write!(f, "bad path component {c:?}"),
        }
    }
}

impl std::error::Error for PathError {}

/// An absolute path in the universal name space.
///
/// # Examples
///
/// ```
/// use extsec_namespace::NsPath;
///
/// let p: NsPath = "/svc/fs/read".parse().unwrap();
/// assert_eq!(p.depth(), 3);
/// assert_eq!(p.leaf(), Some("read"));
/// assert_eq!(p.parent().unwrap().to_string(), "/svc/fs");
/// assert!(p.starts_with(&"/svc".parse().unwrap()));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NsPath {
    components: Vec<String>,
}

impl NsPath {
    /// The root path `/`.
    pub fn root() -> Self {
        NsPath {
            components: Vec::new(),
        }
    }

    /// Validates a single component name.
    pub fn valid_component(name: &str) -> bool {
        !name.is_empty() && name != "." && name != ".." && !name.contains('/')
    }

    /// Creates a path from components, validating each.
    pub fn from_components<I, S>(components: I) -> Result<Self, PathError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Vec::new();
        for c in components {
            let c = c.into();
            if !Self::valid_component(&c) {
                return Err(PathError::BadComponent(c));
            }
            out.push(c);
        }
        Ok(NsPath { components: out })
    }

    /// Returns the components, root first.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Returns the number of components (0 for the root).
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// Returns whether this is the root path.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// Returns the final component, if any.
    pub fn leaf(&self) -> Option<&str> {
        self.components.last().map(String::as_str)
    }

    /// Returns the parent path, or `None` for the root.
    pub fn parent(&self) -> Option<NsPath> {
        if self.components.is_empty() {
            None
        } else {
            Some(NsPath {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// Returns this path extended by one component.
    pub fn join(&self, name: &str) -> Result<NsPath, PathError> {
        if !Self::valid_component(name) {
            return Err(PathError::BadComponent(name.to_string()));
        }
        let mut components = self.components.clone();
        components.push(name.to_string());
        Ok(NsPath { components })
    }

    /// Returns this path extended by all components of `suffix`.
    pub fn join_path(&self, suffix: &NsPath) -> NsPath {
        let mut components = self.components.clone();
        components.extend(suffix.components.iter().cloned());
        NsPath { components }
    }

    /// Returns whether `prefix` is an ancestor-or-self of this path.
    pub fn starts_with(&self, prefix: &NsPath) -> bool {
        prefix.components.len() <= self.components.len()
            && self.components[..prefix.components.len()] == prefix.components[..]
    }

    /// Iterates over every prefix of the path from the root down to the
    /// path itself (inclusive), e.g. `/a/b` yields `/`, `/a`, `/a/b`.
    pub fn ancestors_from_root(&self) -> impl Iterator<Item = NsPath> + '_ {
        (0..=self.components.len()).map(move |i| NsPath {
            components: self.components[..i].to_vec(),
        })
    }
}

impl FromStr for NsPath {
    type Err = PathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "/" {
            return Ok(NsPath::root());
        }
        let Some(rest) = s.strip_prefix('/') else {
            return Err(PathError::NotAbsolute(s.to_string()));
        };
        let rest = rest.strip_suffix('/').unwrap_or(rest);
        NsPath::from_components(rest.split('/'))
    }
}

impl fmt::Display for NsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return f.write_str("/");
        }
        for c in &self.components {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["/", "/a", "/a/b/c", "/svc/fs.read/x-1"] {
            let p: NsPath = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn trailing_slash_tolerated() {
        let p: NsPath = "/a/b/".parse().unwrap();
        assert_eq!(p.to_string(), "/a/b");
    }

    #[test]
    fn rejects_relative_and_bad_components() {
        assert!(matches!(
            "a/b".parse::<NsPath>(),
            Err(PathError::NotAbsolute(_))
        ));
        assert!(matches!(
            "".parse::<NsPath>(),
            Err(PathError::NotAbsolute(_))
        ));
        for bad in ["/a//b", "/a/./b", "/a/../b"] {
            assert!(
                matches!(bad.parse::<NsPath>(), Err(PathError::BadComponent(_))),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn parent_and_leaf() {
        let p: NsPath = "/a/b".parse().unwrap();
        assert_eq!(p.leaf(), Some("b"));
        assert_eq!(p.parent().unwrap().to_string(), "/a");
        assert_eq!(p.parent().unwrap().parent().unwrap(), NsPath::root());
        assert_eq!(NsPath::root().parent(), None);
        assert_eq!(NsPath::root().leaf(), None);
    }

    #[test]
    fn join_validates() {
        let p = NsPath::root().join("a").unwrap();
        assert_eq!(p.to_string(), "/a");
        assert!(p.join("b/c").is_err());
        assert!(p.join("..").is_err());
        assert!(p.join("").is_err());
    }

    #[test]
    fn join_path_concatenates() {
        let a: NsPath = "/x/y".parse().unwrap();
        let b: NsPath = "/z".parse().unwrap();
        assert_eq!(a.join_path(&b).to_string(), "/x/y/z");
    }

    #[test]
    fn starts_with() {
        let p: NsPath = "/a/b/c".parse().unwrap();
        assert!(p.starts_with(&NsPath::root()));
        assert!(p.starts_with(&"/a/b".parse().unwrap()));
        assert!(p.starts_with(&p.clone()));
        assert!(!p.starts_with(&"/a/x".parse().unwrap()));
        assert!(!p.starts_with(&"/a/b/c/d".parse().unwrap()));
    }

    #[test]
    fn ancestors_from_root() {
        let p: NsPath = "/a/b".parse().unwrap();
        let all: Vec<String> = p.ancestors_from_root().map(|a| a.to_string()).collect();
        assert_eq!(all, vec!["/", "/a", "/a/b"]);
    }
}
