//! Name-space nodes and their protection records.

use extsec_acl::Acl;
use extsec_mac::SecurityClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a node within one [`crate::NameSpace`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node's id.
    pub const ROOT: NodeId = NodeId(0);

    /// Creates a node id from a raw index. The id is only meaningful
    /// against the name space it came from; this exists for callers that
    /// persist or key on raw ids (snapshots, caches, tests).
    pub const fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Returns the raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The semantic kind of a node.
///
/// Interior kinds mirror the paper's examples of non-leaf structure: Java
/// packages and objects, SPIN domains and Modula-3 interfaces, and file
/// directories. Leaf kinds are the individual procedures/methods of system
/// services plus terminal objects such as files.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An interior grouping of services (SPIN domain / Java package).
    Domain,
    /// An interior collection of procedures (Modula-3 interface / Java
    /// object).
    Interface,
    /// An interior file-system directory.
    Directory,
    /// A leaf procedure or method of a service.
    Procedure,
    /// A leaf data object (e.g. a file's metadata entry).
    Object,
}

impl NodeKind {
    /// Returns whether nodes of this kind may have children.
    pub fn is_container(self) -> bool {
        matches!(
            self,
            NodeKind::Domain | NodeKind::Interface | NodeKind::Directory
        )
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Domain => "domain",
            NodeKind::Interface => "interface",
            NodeKind::Directory => "directory",
            NodeKind::Procedure => "procedure",
            NodeKind::Object => "object",
        };
        f.write_str(s)
    }
}

/// The protection record attached to every node.
///
/// Holds both halves of the model: the discretionary ACL and the mandatory
/// security-class label, plus the optional *static* class for code objects
/// (paper §2.2: "it may be necessary to statically associate extensions
/// with a certain security class").
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Protection {
    /// The discretionary access control list.
    pub acl: Acl,
    /// The mandatory security-class label.
    pub label: SecurityClass,
    /// A statically assigned class for code bound at this node, if any.
    pub static_class: Option<SecurityClass>,
}

impl Protection {
    /// Creates a protection record with the given ACL and label.
    pub fn new(acl: Acl, label: SecurityClass) -> Self {
        Protection {
            acl,
            label,
            static_class: None,
        }
    }

    /// Returns a copy with a static class attached.
    pub fn with_static_class(mut self, class: SecurityClass) -> Self {
        self.static_class = Some(class);
        self
    }
}

/// One node of the name space: a named, protected vertex with children
/// (when its kind is a container).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    pub(crate) protection: Protection,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: BTreeMap<String, NodeId>,
    /// Whether extensions may register specializations at this node; only
    /// meaningful for `Procedure` leaves (the extensible interfaces of the
    /// base system).
    pub(crate) extensible: bool,
}

impl Node {
    /// Returns the node's name (final path component).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the node's kind.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Returns the node's protection record.
    pub fn protection(&self) -> &Protection {
        &self.protection
    }

    /// Returns the parent, or `None` for the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Returns the node's children, name-sorted.
    pub fn children(&self) -> &BTreeMap<String, NodeId> {
        &self.children
    }

    /// Returns whether extensions may specialize this node.
    pub fn extensible(&self) -> bool {
        self.extensible
    }
}
