//! Deterministic, seeded fault injection at tagged points.
//!
//! The repository's load-bearing robustness claim is that every fault
//! **fails closed**: no trap, error, delay, or panic at any internal
//! point may convert a Deny into a Grant or leak a connection slot. That
//! claim is only worth stating if it is exercised, so the subsystems that
//! sit on the decision path — the namespace arena, the system services,
//! the extension dispatch boundary, and the server's connection loop —
//! each carry named *fault points*: calls to [`fire`] (or
//! [`fire_panicky`] where the caller is panic-safe) with a stable tag.
//!
//! A test installs a [`FaultPlan`] — either a seeded random storm
//! ([`FaultPlan::seeded`] plus a firing [`rate`](FaultPlan::rate)) or a
//! scripted schedule ([`FaultPlan::at`]: "the 3rd hit of `ns.resolve`
//! errors") — and the points start firing deterministically: the decision
//! for the *n*-th hit of a tag is a pure function of `(seed, tag, n)`, so
//! the same plan over the same workload injects the same faults.
//!
//! A third kind of point, [`fire_mutant`], marks *planted bugs* (a
//! silently skipped revocation, a bypassed quarantine gate) used by the
//! campaign explorer's self-tests. Mutants are fail-open, which is why
//! they only honour scripted plan entries and are invisible to random
//! storms: the storm contract — faults may lose grants, never mint them
//! — would otherwise be broken by the plan itself.
//!
//! # Zero cost when compiled out
//!
//! Everything here is gated on the `active` cargo feature. Without it
//! (the default for release builds), [`fire`] is an `#[inline(always)]`
//! function returning a constant `None` — the points compile to nothing.
//! Consumers therefore depend on this crate unconditionally and never
//! `cfg`-gate their call sites; the `fault-injection` features on the
//! workspace crates simply forward to `extsec-faults/active`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Duration;

/// What an injection point is asked to do when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Return a typed error from the point.
    Error,
    /// Return a trap-flavoured error (the dispatch boundary maps this to
    /// a VM-style trap; elsewhere it behaves like [`FaultAction::Error`]).
    Trap,
    /// Sleep for the given duration, then continue normally. Models a
    /// stall, not a failure; the operation still runs.
    Delay(Duration),
    /// Panic at the point. Only honoured by [`fire_panicky`] sites,
    /// which sit under a `catch_unwind` or drop-guard boundary;
    /// [`fire`] downgrades it to [`FaultAction::Error`].
    Panic,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Error => write!(f, "error"),
            FaultAction::Trap => write!(f, "trap"),
            FaultAction::Delay(d) => write!(f, "delay({d:?})"),
            FaultAction::Panic => write!(f, "panic"),
        }
    }
}

/// A fault that an injection point must now surface as a typed error.
///
/// Returned by [`fire`]/[`fire_panicky`] for the `Error` and `Trap`
/// actions (delays are served internally and panics unwind); the caller
/// converts it into its own error type and returns it — failing closed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// The tag of the point that fired.
    pub tag: &'static str,
    /// Whether the point should surface a trap or a plain error.
    pub action: FaultAction,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected {} at {}", self.action, self.tag)
    }
}

/// A deterministic injection schedule.
///
/// Random mode: every hit of every tag fires with probability
/// `rate`/1024, choosing uniformly among the plan's allowed
/// [`actions`](FaultPlan::actions); both draws come from a splitmix of
/// `(seed, tag, hit-index)`, so a plan replays identically. Scripted
/// entries ([`FaultPlan::at`]) take precedence and fire exactly once at
/// the named hit.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rate_per_1024: u32,
    actions: Vec<FaultAction>,
    script: Vec<(&'static str, Option<u64>, FaultAction)>,
}

impl FaultPlan {
    /// A plan with the given seed, firing nowhere until configured with
    /// [`rate`](FaultPlan::rate) or [`at`](FaultPlan::at).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            rate_per_1024: 0,
            actions: vec![FaultAction::Error],
            script: Vec::new(),
        }
    }

    /// Sets the random firing probability to `per_1024`/1024 per hit
    /// (clamped to 1024).
    pub fn rate(mut self, per_1024: u32) -> Self {
        self.rate_per_1024 = per_1024.min(1024);
        self
    }

    /// Sets the actions random firings choose among (uniformly).
    pub fn actions(mut self, actions: &[FaultAction]) -> Self {
        if !actions.is_empty() {
            self.actions = actions.to_vec();
        }
        self
    }

    /// Scripts `action` at the `nth` hit (0-based) of `tag`.
    pub fn at(mut self, tag: &'static str, nth: u64, action: FaultAction) -> Self {
        self.script.push((tag, Some(nth), action));
        self
    }

    /// Scripts `action` at **every** hit of `tag`. Used to arm mutant
    /// points ([`fire_mutant`]) unconditionally, e.g. "every
    /// `refmon.set_acl.apply` is silently skipped".
    pub fn always(mut self, tag: &'static str, action: FaultAction) -> Self {
        self.script.push((tag, None, action));
        self
    }

    /// The decision for the `hit`-th occurrence of `tag`: pure in
    /// `(seed, tag, hit)`, so a plan can be inspected (or replayed by a
    /// test oracle) without installing it.
    pub fn decide(&self, tag: &'static str, hit: u64) -> Option<FaultAction> {
        if let Some(action) = self.decide_scripted(tag, hit) {
            return Some(action);
        }
        if self.rate_per_1024 == 0 {
            return None;
        }
        let h = splitmix64(self.seed ^ splitmix64(hash_tag(tag)) ^ splitmix64(hit));
        if (h % 1024) as u32 >= self.rate_per_1024 {
            return None;
        }
        let pick = (splitmix64(h) % self.actions.len() as u64) as usize;
        Some(self.actions[pick].clone())
    }

    /// Like [`decide`](FaultPlan::decide), but consults only the scripted
    /// entries ([`at`](FaultPlan::at)/[`always`](FaultPlan::always)) —
    /// never the random rate. This is the decision function of *mutant*
    /// points ([`fire_mutant`]): planted bugs that must be opted into
    /// explicitly and can never be triggered by a random storm.
    pub fn decide_scripted(&self, tag: &'static str, hit: u64) -> Option<FaultAction> {
        for (t, nth, action) in &self.script {
            if *t == tag && nth.is_none_or(|n| n == hit) {
                return Some(action.clone());
            }
        }
        None
    }
}

/// Counts of what an installed plan actually did, per action class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Points that surfaced an injected error.
    pub errors: u64,
    /// Points that surfaced an injected trap.
    pub traps: u64,
    /// Points that served an injected delay.
    pub delays: u64,
    /// Points that panicked on request.
    pub panics: u64,
    /// Mutant points ([`fire_mutant`]) that fired — planted bugs, only
    /// ever armed by an explicit script entry.
    pub mutants: u64,
}

impl FaultStats {
    /// Total injections of any kind.
    pub fn total(&self) -> u64 {
        self.errors + self.traps + self.delays + self.panics + self.mutants
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_tag(tag: &str) -> u64 {
    // FNV-1a: stable across runs and platforms, unlike `DefaultHasher`.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in tag.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(feature = "active")]
mod active {
    use super::{FaultAction, FaultPlan, FaultStats, InjectedFault};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    struct Installed {
        plan: FaultPlan,
        hits: HashMap<&'static str, u64>,
        stats: FaultStats,
    }

    static ARMED: AtomicBool = AtomicBool::new(false);
    static INSTALLED: Mutex<Option<Installed>> = Mutex::new(None);

    /// Installs `plan` process-wide, replacing any previous plan (and
    /// resetting hit counters and stats).
    pub fn install(plan: FaultPlan) {
        let mut slot = INSTALLED.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(Installed {
            plan,
            hits: HashMap::new(),
            stats: FaultStats::default(),
        });
        ARMED.store(true, Ordering::Release);
    }

    /// Uninstalls the plan, returning what it injected.
    pub fn clear() -> FaultStats {
        ARMED.store(false, Ordering::Release);
        let mut slot = INSTALLED.lock().unwrap_or_else(|e| e.into_inner());
        slot.take().map(|i| i.stats).unwrap_or_default()
    }

    /// The running stats of the installed plan, if any.
    pub fn stats() -> FaultStats {
        let slot = INSTALLED.lock().unwrap_or_else(|e| e.into_inner());
        slot.as_ref().map(|i| i.stats).unwrap_or_default()
    }

    fn consult(tag: &'static str, allow_panic: bool) -> Option<InjectedFault> {
        if !ARMED.load(Ordering::Acquire) {
            return None;
        }
        let action = {
            let mut slot = INSTALLED.lock().unwrap_or_else(|e| e.into_inner());
            let installed = slot.as_mut()?;
            let hit = installed.hits.entry(tag).or_insert(0);
            let index = *hit;
            *hit += 1;
            let mut action = installed.plan.decide(tag, index)?;
            if matches!(action, FaultAction::Panic) && !allow_panic {
                action = FaultAction::Error;
            }
            match action {
                FaultAction::Error => installed.stats.errors += 1,
                FaultAction::Trap => installed.stats.traps += 1,
                FaultAction::Delay(_) => installed.stats.delays += 1,
                FaultAction::Panic => installed.stats.panics += 1,
            }
            action
        };
        // The lock is released before sleeping or unwinding.
        match action {
            FaultAction::Delay(d) => {
                std::thread::sleep(d.min(std::time::Duration::from_millis(50)));
                None
            }
            FaultAction::Panic => panic!("injected panic at {tag}"),
            action => Some(InjectedFault { tag, action }),
        }
    }

    /// Consults the installed plan at a point that must not panic.
    /// `Panic` actions are downgraded to `Error`; delays are served
    /// in-place. Returns the fault the caller must surface, if any.
    #[inline]
    pub fn fire(tag: &'static str) -> Option<InjectedFault> {
        consult(tag, false)
    }

    /// Consults the plan at a point whose callers are panic-safe (a
    /// `catch_unwind` or drop-guard boundary); `Panic` actions unwind.
    #[inline]
    pub fn fire_panicky(tag: &'static str) -> Option<InjectedFault> {
        consult(tag, true)
    }

    /// Consults the plan at a **mutant** point: a planted bug (e.g. "the
    /// guarded ACL replacement is silently skipped") rather than an
    /// environmental fault. Mutants are *fail-open* by nature, so only
    /// scripted entries ([`FaultPlan::at`]/[`FaultPlan::always`]) can
    /// fire them — a random storm, whose contract is that every injected
    /// fault fails closed, never reaches a mutant. Firing is recorded in
    /// [`FaultStats::mutants`]; the action kind is carried but not
    /// served (no delay, no panic) — the point's semantics *is* the bug.
    #[inline]
    pub fn fire_mutant(tag: &'static str) -> Option<InjectedFault> {
        if !ARMED.load(Ordering::Acquire) {
            return None;
        }
        let mut slot = INSTALLED.lock().unwrap_or_else(|e| e.into_inner());
        let installed = slot.as_mut()?;
        let hit = installed.hits.entry(tag).or_insert(0);
        let index = *hit;
        *hit += 1;
        let action = installed.plan.decide_scripted(tag, index)?;
        installed.stats.mutants += 1;
        Some(InjectedFault { tag, action })
    }
}

#[cfg(feature = "active")]
pub use active::{clear, fire, fire_mutant, fire_panicky, install, stats};

#[cfg(not(feature = "active"))]
mod inactive {
    use super::{FaultPlan, FaultStats, InjectedFault};

    /// Fault injection is compiled out; nothing to install.
    pub fn install(_plan: FaultPlan) {}

    /// Fault injection is compiled out; nothing to clear.
    pub fn clear() -> FaultStats {
        FaultStats::default()
    }

    /// Fault injection is compiled out; nothing was injected.
    pub fn stats() -> FaultStats {
        FaultStats::default()
    }

    /// Fault injection is compiled out: a constant `None` the optimizer
    /// erases along with the call.
    #[inline(always)]
    pub fn fire(_tag: &'static str) -> Option<InjectedFault> {
        None
    }

    /// Fault injection is compiled out: a constant `None`.
    #[inline(always)]
    pub fn fire_panicky(_tag: &'static str) -> Option<InjectedFault> {
        None
    }

    /// Fault injection is compiled out: a constant `None`, so mutant
    /// points (planted bugs) cannot exist in release builds.
    #[inline(always)]
    pub fn fire_mutant(_tag: &'static str) -> Option<InjectedFault> {
        None
    }
}

#[cfg(not(feature = "active"))]
pub use inactive::{clear, fire, fire_mutant, fire_panicky, install, stats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_decisions_are_deterministic() {
        let plan = FaultPlan::seeded(42).rate(512);
        for hit in 0..64 {
            assert_eq!(plan.decide("a.tag", hit), plan.decide("a.tag", hit));
        }
    }

    #[test]
    fn rate_zero_never_fires_randomly() {
        let plan = FaultPlan::seeded(7);
        for hit in 0..256 {
            assert_eq!(plan.decide("quiet", hit), None);
        }
    }

    #[test]
    fn script_fires_exactly_at_the_named_hit() {
        let plan = FaultPlan::seeded(0).at("svc.fs", 2, FaultAction::Trap);
        assert_eq!(plan.decide("svc.fs", 0), None);
        assert_eq!(plan.decide("svc.fs", 1), None);
        assert_eq!(plan.decide("svc.fs", 2), Some(FaultAction::Trap));
        assert_eq!(plan.decide("svc.fs", 3), None);
        assert_eq!(plan.decide("other", 2), None);
    }

    #[test]
    fn full_rate_always_fires() {
        let plan = FaultPlan::seeded(9).rate(1024);
        for hit in 0..64 {
            assert!(plan.decide("loud", hit).is_some());
        }
    }

    #[test]
    fn rates_land_near_the_requested_probability() {
        let plan = FaultPlan::seeded(1).rate(256); // 1/4
        let fired = (0..4096)
            .filter(|hit| plan.decide("sampled", *hit).is_some())
            .count();
        assert!((700..=1350).contains(&fired), "fired {fired}/4096");
    }

    /// The install/clear tests share the process-wide plan slot; this
    /// serializes them.
    #[cfg(feature = "active")]
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[cfg(feature = "active")]
    #[test]
    fn installed_plan_fires_and_counts() {
        let _x = exclusive();
        install(FaultPlan::seeded(3).at("test.point", 1, FaultAction::Error));
        assert_eq!(fire("test.point"), None);
        let fault = fire("test.point").expect("second hit scripted");
        assert_eq!(fault.tag, "test.point");
        let stats = clear();
        assert_eq!(stats.errors, 1);
        assert_eq!(fire("test.point"), None, "cleared plan is silent");
    }

    #[cfg(feature = "active")]
    #[test]
    fn fire_downgrades_panic_to_error() {
        let _x = exclusive();
        install(FaultPlan::seeded(3).at("no.panic", 0, FaultAction::Panic));
        let fault = fire("no.panic").expect("scripted");
        assert_eq!(fault.action, FaultAction::Error);
        clear();
    }

    #[test]
    fn always_fires_at_every_hit_of_its_tag_only() {
        let plan = FaultPlan::seeded(0).always("mut.point", FaultAction::Error);
        for hit in 0..16 {
            assert_eq!(
                plan.decide_scripted("mut.point", hit),
                Some(FaultAction::Error)
            );
            assert_eq!(plan.decide_scripted("other", hit), None);
        }
    }

    #[test]
    fn scripted_decisions_ignore_the_random_rate() {
        // A full-rate storm fires `decide` everywhere, but the scripted
        // view — what mutant points consult — stays silent.
        let plan = FaultPlan::seeded(9).rate(1024);
        for hit in 0..64 {
            assert!(plan.decide("loud", hit).is_some());
            assert_eq!(plan.decide_scripted("loud", hit), None);
        }
    }

    #[cfg(feature = "active")]
    #[test]
    fn mutant_points_never_fire_under_a_random_storm() {
        let _x = exclusive();
        install(FaultPlan::seeded(5).rate(1024));
        for _ in 0..32 {
            assert_eq!(fire_mutant("mut.storm"), None);
        }
        assert_eq!(clear().mutants, 0);

        install(FaultPlan::seeded(5).always("mut.armed", FaultAction::Error));
        assert!(fire_mutant("mut.armed").is_some());
        assert!(fire_mutant("mut.armed").is_some());
        assert_eq!(clear().mutants, 2);
    }
}
