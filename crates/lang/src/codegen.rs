//! Type checking and bytecode generation.
//!
//! The compiler maintains the bytecode verifier's invariants by
//! construction — statements leave the operand stack empty, expressions
//! leave exactly one value, `return` sites match the declared signature —
//! so every module it emits passes [`extsec_vm::verify()`]. The test suite
//! (and a property test over generated programs) treats a verifier
//! rejection of compiler output as a compiler bug.

use crate::ast::{BinOp, Block, Expr, FnDecl, Program, Stmt, UnOp};
use crate::{err, CompileError};
use extsec_vm::{Export, Function, ImportDecl, Instr, Module, Signature, Ty};
use std::collections::BTreeMap;

/// Compiles a parsed program into a bytecode module.
pub fn compile_program(program: &Program, module_name: &str) -> Result<Module, CompileError> {
    // Index the callables; names share one namespace.
    let mut extern_index: BTreeMap<String, (u32, Signature)> = BTreeMap::new();
    for (i, ext) in program.externs.iter().enumerate() {
        let sig = Signature::new(ext.params.clone(), ext.ret);
        if extern_index
            .insert(ext.name.clone(), (i as u32, sig))
            .is_some()
        {
            return err(ext.line, format!("duplicate extern {:?}", ext.name));
        }
    }
    let mut fn_index: BTreeMap<String, (u32, Signature)> = BTreeMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        let sig = Signature::new(f.params.iter().map(|(_, t)| *t).collect(), f.ret);
        if extern_index.contains_key(&f.name) {
            return err(f.line, format!("{:?} is already an extern", f.name));
        }
        if fn_index.insert(f.name.clone(), (i as u32, sig)).is_some() {
            return err(f.line, format!("duplicate function {:?}", f.name));
        }
        if matches!(f.name.as_str(), "len" | "str" | "int") {
            return err(f.line, format!("{:?} is a builtin", f.name));
        }
    }

    let mut strings: Vec<String> = Vec::new();
    let mut functions = Vec::new();
    for f in &program.functions {
        functions.push(compile_fn(f, &fn_index, &extern_index, &mut strings)?);
    }

    Ok(Module {
        name: module_name.to_string(),
        strings,
        imports: program
            .externs
            .iter()
            .map(|e| ImportDecl {
                alias: e.name.clone(),
                path: e.path.clone(),
                sig: Signature::new(e.params.clone(), e.ret),
            })
            .collect(),
        functions,
        exports: program
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| Export {
                name: f.name.clone(),
                func: i as u32,
            })
            .collect(),
    })
}

struct FnCtx<'a> {
    fn_index: &'a BTreeMap<String, (u32, Signature)>,
    extern_index: &'a BTreeMap<String, (u32, Signature)>,
    strings: &'a mut Vec<String>,
    /// All locals ever declared (params first); slots are never reused.
    locals: Vec<(String, Ty)>,
    /// Visibility stack: indices into `locals` currently in scope,
    /// innermost scope last.
    scopes: Vec<Vec<usize>>,
    code: Vec<Instr>,
    ret: Option<Ty>,
}

impl FnCtx<'_> {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(i) = self.strings.iter().position(|x| x == s) {
            return i as u32;
        }
        self.strings.push(s.to_string());
        (self.strings.len() - 1) as u32
    }

    fn declare(&mut self, name: &str, ty: Ty, line: usize) -> Result<u16, CompileError> {
        if self.locals.len() >= u16::MAX as usize {
            return err(line, "too many locals");
        }
        let idx = self.locals.len() as u16;
        self.locals.push((name.to_string(), ty));
        self.scopes
            .last_mut()
            .expect("always inside a scope")
            .push(idx as usize);
        Ok(idx)
    }

    fn lookup(&self, name: &str) -> Option<(u16, Ty)> {
        for scope in self.scopes.iter().rev() {
            for &idx in scope.iter().rev() {
                if self.locals[idx].0 == name {
                    return Some((idx as u16, self.locals[idx].1));
                }
            }
        }
        None
    }

    fn emit(&mut self, instr: Instr) {
        self.code.push(instr);
    }

    /// Emits a placeholder jump; returns its offset for patching.
    fn emit_jump(&mut self, make: fn(u32) -> Instr) -> usize {
        let at = self.code.len();
        self.code.push(make(u32::MAX));
        at
    }

    fn patch(&mut self, at: usize, target: usize) {
        let target = target as u32;
        self.code[at] = match self.code[at] {
            Instr::Jump(_) => Instr::Jump(target),
            Instr::JumpIf(_) => Instr::JumpIf(target),
            Instr::JumpIfNot(_) => Instr::JumpIfNot(target),
            other => other,
        };
    }
}

fn compile_fn(
    f: &FnDecl,
    fn_index: &BTreeMap<String, (u32, Signature)>,
    extern_index: &BTreeMap<String, (u32, Signature)>,
    strings: &mut Vec<String>,
) -> Result<Function, CompileError> {
    let mut ctx = FnCtx {
        fn_index,
        extern_index,
        strings,
        locals: Vec::new(),
        scopes: vec![Vec::new()],
        code: Vec::new(),
        ret: f.ret,
    };
    for (name, ty) in &f.params {
        if ctx.lookup(name).is_some() {
            return err(f.line, format!("duplicate parameter {name:?}"));
        }
        ctx.declare(name, *ty, f.line)?;
    }
    compile_block(&mut ctx, &f.body)?;
    // Fall-through path: void functions return implicitly; value
    // functions must return on every path.
    match f.ret {
        None => ctx.emit(Instr::Return),
        Some(_) => {
            if !block_returns(&f.body) {
                return err(
                    f.line,
                    format!("function {:?}: not all paths return a value", f.name),
                );
            }
            // The fall-through is unreachable; terminate it for the
            // verifier's fall-off check anyway.
            ctx.emit(Instr::Trap);
        }
    }
    let extra_locals = ctx.locals[f.params.len()..]
        .iter()
        .map(|(_, t)| *t)
        .collect();
    Ok(Function {
        name: f.name.clone(),
        sig: Signature::new(f.params.iter().map(|(_, t)| *t).collect(), f.ret),
        extra_locals,
        code: ctx.code,
    })
}

/// Conservative guaranteed-return analysis.
fn block_returns(block: &Block) -> bool {
    block.stmts.iter().any(stmt_returns)
}

fn stmt_returns(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Return { .. } => true,
        Stmt::If {
            then,
            els: Some(els),
            ..
        } => block_returns(then) && block_returns(els),
        _ => false,
    }
}

fn compile_block(ctx: &mut FnCtx<'_>, block: &Block) -> Result<(), CompileError> {
    ctx.scopes.push(Vec::new());
    for stmt in &block.stmts {
        compile_stmt(ctx, stmt)?;
    }
    ctx.scopes.pop();
    Ok(())
}

fn compile_stmt(ctx: &mut FnCtx<'_>, stmt: &Stmt) -> Result<(), CompileError> {
    match stmt {
        Stmt::Let {
            name,
            ty,
            init,
            line,
        } => {
            let got = compile_value(ctx, init)?;
            if let Some(want) = ty {
                if *want != got {
                    return err(*line, format!("let {name:?}: annotated {want}, got {got}"));
                }
            }
            let idx = ctx.declare(name, got, *line)?;
            ctx.emit(Instr::StoreLocal(idx));
            Ok(())
        }
        Stmt::Assign { name, value, line } => {
            let Some((idx, ty)) = ctx.lookup(name) else {
                return err(*line, format!("unknown variable {name:?}"));
            };
            let got = compile_value(ctx, value)?;
            if got != ty {
                return err(*line, format!("cannot assign {got} to {name:?}: {ty}"));
            }
            ctx.emit(Instr::StoreLocal(idx));
            Ok(())
        }
        Stmt::If {
            cond,
            then,
            els,
            line,
        } => {
            let got = compile_value(ctx, cond)?;
            if got != Ty::Bool {
                return err(*line, format!("if condition must be bool, got {got}"));
            }
            let skip_then = ctx.emit_jump(Instr::JumpIfNot);
            compile_block(ctx, then)?;
            match els {
                None => {
                    let after = ctx.code.len();
                    ctx.patch(skip_then, after);
                }
                Some(els) => {
                    let skip_else = ctx.emit_jump(Instr::Jump);
                    let else_start = ctx.code.len();
                    ctx.patch(skip_then, else_start);
                    compile_block(ctx, els)?;
                    let after = ctx.code.len();
                    ctx.patch(skip_else, after);
                }
            }
            Ok(())
        }
        Stmt::While { cond, body, line } => {
            let loop_head = ctx.code.len();
            let got = compile_value(ctx, cond)?;
            if got != Ty::Bool {
                return err(*line, format!("while condition must be bool, got {got}"));
            }
            let exit = ctx.emit_jump(Instr::JumpIfNot);
            compile_block(ctx, body)?;
            ctx.emit(Instr::Jump(loop_head as u32));
            let after = ctx.code.len();
            ctx.patch(exit, after);
            Ok(())
        }
        Stmt::Return { value, line } => {
            match (ctx.ret, value) {
                (None, None) => {}
                (Some(want), Some(expr)) => {
                    let got = compile_value(ctx, expr)?;
                    if got != want {
                        return err(*line, format!("return type mismatch: {want} vs {got}"));
                    }
                }
                (Some(want), None) => {
                    return err(*line, format!("this function must return {want}"));
                }
                (None, Some(_)) => {
                    return err(*line, "void function cannot return a value");
                }
            }
            ctx.emit(Instr::Return);
            Ok(())
        }
        Stmt::Expr { expr, line: _ } => {
            let ty = compile_expr(ctx, expr)?;
            if ty.is_some() {
                ctx.emit(Instr::Pop);
            }
            Ok(())
        }
    }
}

/// Compiles an expression that must produce a value.
fn compile_value(ctx: &mut FnCtx<'_>, expr: &Expr) -> Result<Ty, CompileError> {
    match compile_expr(ctx, expr)? {
        Some(ty) => Ok(ty),
        None => err(expr.line(), "void call used where a value is required"),
    }
}

/// Compiles an expression; `None` means a void call.
fn compile_expr(ctx: &mut FnCtx<'_>, expr: &Expr) -> Result<Option<Ty>, CompileError> {
    match expr {
        Expr::Int(v, _) => {
            ctx.emit(Instr::PushInt(*v));
            Ok(Some(Ty::Int))
        }
        Expr::Bool(v, _) => {
            ctx.emit(Instr::PushBool(*v));
            Ok(Some(Ty::Bool))
        }
        Expr::Str(s, _) => {
            let idx = ctx.intern(s);
            ctx.emit(Instr::PushStr(idx));
            Ok(Some(Ty::Str))
        }
        Expr::Var(name, line) => match ctx.lookup(name) {
            Some((idx, ty)) => {
                ctx.emit(Instr::LoadLocal(idx));
                Ok(Some(ty))
            }
            None => err(*line, format!("unknown variable {name:?}")),
        },
        Expr::Unary { op, expr, line } => {
            let got = compile_value(ctx, expr)?;
            match op {
                UnOp::Neg => {
                    if got != Ty::Int {
                        return err(*line, format!("unary `-` needs int, got {got}"));
                    }
                    ctx.emit(Instr::Neg);
                    Ok(Some(Ty::Int))
                }
                UnOp::Not => {
                    if got != Ty::Bool {
                        return err(*line, format!("`!` needs bool, got {got}"));
                    }
                    ctx.emit(Instr::Not);
                    Ok(Some(Ty::Bool))
                }
            }
        }
        Expr::Binary { op, lhs, rhs, line } => {
            let l = compile_value(ctx, lhs)?;
            let r = compile_value(ctx, rhs)?;
            let result = match op {
                BinOp::Add => match (l, r) {
                    (Ty::Int, Ty::Int) => {
                        ctx.emit(Instr::Add);
                        Ty::Int
                    }
                    (Ty::Str, Ty::Str) => {
                        ctx.emit(Instr::Concat);
                        Ty::Str
                    }
                    _ => return err(*line, format!("`+` needs int+int or str+str, got {l}+{r}")),
                },
                BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                    if l != Ty::Int || r != Ty::Int {
                        return err(*line, format!("arithmetic needs ints, got {l} and {r}"));
                    }
                    ctx.emit(match op {
                        BinOp::Sub => Instr::Sub,
                        BinOp::Mul => Instr::Mul,
                        BinOp::Div => Instr::Div,
                        _ => Instr::Rem,
                    });
                    Ty::Int
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    if l != Ty::Int || r != Ty::Int {
                        return err(*line, format!("comparison needs ints, got {l} and {r}"));
                    }
                    ctx.emit(match op {
                        BinOp::Lt => Instr::Lt,
                        BinOp::Le => Instr::Le,
                        BinOp::Gt => Instr::Gt,
                        _ => Instr::Ge,
                    });
                    Ty::Bool
                }
                BinOp::Eq | BinOp::Ne => {
                    if l != r {
                        return err(
                            *line,
                            format!("`==`/`!=` need equal types, got {l} and {r}"),
                        );
                    }
                    ctx.emit(if matches!(op, BinOp::Eq) {
                        Instr::Eq
                    } else {
                        Instr::Ne
                    });
                    Ty::Bool
                }
                BinOp::And | BinOp::Or => {
                    if l != Ty::Bool || r != Ty::Bool {
                        return err(*line, format!("logic needs bools, got {l} and {r}"));
                    }
                    ctx.emit(if matches!(op, BinOp::And) {
                        Instr::And
                    } else {
                        Instr::Or
                    });
                    Ty::Bool
                }
            };
            Ok(Some(result))
        }
        Expr::Call { name, args, line } => {
            // Builtins first.
            if let Some(result) = compile_builtin(ctx, name, args, *line)? {
                return Ok(Some(result));
            }
            let (sig, emit): (Signature, Instr) = if let Some((idx, sig)) = ctx.fn_index.get(name) {
                (sig.clone(), Instr::Call(*idx))
            } else if let Some((idx, sig)) = ctx.extern_index.get(name) {
                (sig.clone(), Instr::SysCall(*idx))
            } else {
                return err(*line, format!("unknown function {name:?}"));
            };
            if args.len() != sig.params.len() {
                return err(
                    *line,
                    format!(
                        "{name:?} takes {} argument(s), got {}",
                        sig.params.len(),
                        args.len()
                    ),
                );
            }
            for (arg, want) in args.iter().zip(sig.params.iter()) {
                let got = compile_value(ctx, arg)?;
                if got != *want {
                    return err(
                        arg.line(),
                        format!("argument type mismatch: {want} vs {got}"),
                    );
                }
            }
            ctx.emit(emit);
            Ok(sig.ret)
        }
    }
}

/// Compiles `len`/`str`/`int`; returns `Ok(None)` when `name` is not a
/// builtin.
fn compile_builtin(
    ctx: &mut FnCtx<'_>,
    name: &str,
    args: &[Expr],
    line: usize,
) -> Result<Option<Ty>, CompileError> {
    let (want, instr, result) = match name {
        "len" => (Ty::Str, Instr::StrLen, Ty::Int),
        "str" => (Ty::Int, Instr::IntToStr, Ty::Str),
        "int" => (Ty::Str, Instr::StrToInt, Ty::Int),
        _ => return Ok(None),
    };
    if args.len() != 1 {
        return err(
            line,
            format!("{name:?} takes 1 argument, got {}", args.len()),
        );
    }
    let got = compile_value(ctx, &args[0])?;
    if got != want {
        return err(line, format!("{name:?} needs {want}, got {got}"));
    }
    ctx.emit(instr);
    Ok(Some(result))
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use extsec_vm::{verify, Machine, NullHost, SyscallHost, Value};

    fn run(source: &str, export: &str, args: &[Value]) -> Option<Value> {
        let module = compile(source, "test").expect("compiles");
        let verified = verify(module).expect("compiler output must verify");
        Machine::new(&verified)
            .run(export, args, &mut NullHost)
            .expect("runs")
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(
            run("fn f() -> int { return 1 + 2 * 3 - 4 / 2; }", "f", &[]),
            Some(Value::Int(5))
        );
        assert_eq!(
            run("fn f() -> int { return (1 + 2) * 3 % 5; }", "f", &[]),
            Some(Value::Int(4))
        );
        assert_eq!(
            run("fn f() -> int { return -(3 - 5); }", "f", &[]),
            Some(Value::Int(2))
        );
    }

    #[test]
    fn variables_and_while() {
        let src = r#"
            fn sum(n: int) -> int {
                let i = 0;
                let acc = 0;
                while i < n {
                    acc = acc + i;
                    i = i + 1;
                }
                return acc;
            }
        "#;
        assert_eq!(run(src, "sum", &[Value::Int(100)]), Some(Value::Int(4950)));
    }

    #[test]
    fn if_else_chains() {
        let src = r#"
            fn sign(x: int) -> int {
                if x < 0 { return -1; }
                else if x == 0 { return 0; }
                else { return 1; }
            }
        "#;
        assert_eq!(run(src, "sign", &[Value::Int(-9)]), Some(Value::Int(-1)));
        assert_eq!(run(src, "sign", &[Value::Int(0)]), Some(Value::Int(0)));
        assert_eq!(run(src, "sign", &[Value::Int(9)]), Some(Value::Int(1)));
    }

    #[test]
    fn recursion() {
        let src = r#"
            fn fib(n: int) -> int {
                if n < 2 { return n; }
                return fib(n - 1) + fib(n - 2);
            }
        "#;
        assert_eq!(run(src, "fib", &[Value::Int(10)]), Some(Value::Int(55)));
    }

    #[test]
    fn strings_and_builtins() {
        let src = r#"
            fn greet(name: str) -> str {
                return "hello, " + name + " (" + str(len(name)) + ")";
            }
            fn parse(s: str) -> int { return int(s) * 2; }
        "#;
        assert_eq!(
            run(src, "greet", &[Value::Str("world".into())]),
            Some(Value::Str("hello, world (5)".into()))
        );
        assert_eq!(
            run(src, "parse", &[Value::Str("21".into())]),
            Some(Value::Int(42))
        );
    }

    #[test]
    fn booleans_and_logic() {
        let src = r#"
            fn xor(a: bool, b: bool) -> bool {
                return (a || b) && !(a && b);
            }
        "#;
        assert_eq!(
            run(src, "xor", &[Value::Bool(true), Value::Bool(false)]),
            Some(Value::Bool(true))
        );
        assert_eq!(
            run(src, "xor", &[Value::Bool(true), Value::Bool(true)]),
            Some(Value::Bool(false))
        );
    }

    #[test]
    fn shadowing_and_scopes() {
        let src = r#"
            fn f() -> int {
                let x = 1;
                if true {
                    let x = 10;
                    x = x + 1;
                }
                return x;
            }
        "#;
        // The inner x shadows; the outer is untouched.
        assert_eq!(run(src, "f", &[]), Some(Value::Int(1)));
    }

    #[test]
    fn externs_become_syscalls() {
        struct Host(Vec<String>);
        impl SyscallHost for Host {
            fn syscall(
                &mut self,
                import: &extsec_vm::ImportDecl,
                args: &[Value],
            ) -> Result<Option<Value>, String> {
                self.0.push(format!("{} {:?}", import.path, args));
                match import.sig.ret {
                    Some(extsec_vm::Ty::Int) => Ok(Some(Value::Int(7))),
                    None => Ok(None),
                    _ => unreachable!(),
                }
            }
        }
        let src = r#"
            extern fn print(s: str) = "/svc/console/print";
            extern fn now() -> int = "/svc/clock/now";
            fn main() -> int {
                print("tick");
                return now() + 1;
            }
        "#;
        let module = compile(src, "m").unwrap();
        assert_eq!(module.imports.len(), 2);
        let verified = verify(module).unwrap();
        let mut host = Host(Vec::new());
        let r = Machine::new(&verified).run("main", &[], &mut host).unwrap();
        assert_eq!(r, Some(Value::Int(8)));
        assert_eq!(host.0.len(), 2);
        assert!(host.0[0].starts_with("/svc/console/print"));
    }

    #[test]
    fn void_functions() {
        let src = r#"
            fn noop() { }
            fn call_it() -> int { noop(); return 3; }
        "#;
        assert_eq!(run(src, "call_it", &[]), Some(Value::Int(3)));
    }

    #[test]
    fn type_errors() {
        for (src, needle) in [
            ("fn f() -> int { return true; }", "return type mismatch"),
            ("fn f() { let x: int = \"s\"; }", "annotated int"),
            ("fn f() { let x = 1; x = true; }", "cannot assign"),
            ("fn f() { if 1 { } }", "must be bool"),
            ("fn f() { while \"s\" { } }", "must be bool"),
            ("fn f() -> int { return 1 + \"s\"; }", "`+` needs"),
            ("fn f() -> bool { return 1 == true; }", "equal types"),
            ("fn f() { ghost(); }", "unknown function"),
            ("fn f() { let y = x; }", "unknown variable"),
            ("fn f() -> int { if true { return 1; } }", "not all paths"),
            ("fn f() { return 1; }", "void function cannot"),
            ("fn f(x: int) -> int { return f(); }", "takes 1 argument"),
            ("fn f() { let v = noret(); } fn noret() { }", "void call"),
            ("fn f() -> int { return len(3); }", "needs str"),
        ] {
            let e = compile(src, "t").unwrap_err();
            assert!(
                e.msg.contains(needle),
                "{src}: expected {needle:?} in {:?}",
                e.msg
            );
        }
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(compile("fn f() {} fn f() {}", "t").is_err());
        assert!(compile("extern fn f() = \"/x\"; fn f() {}", "t").is_err());
        assert!(compile("fn len(s: str) -> int { return 0; }", "t").is_err());
        assert!(compile("fn f(a: int, a: int) {}", "t").is_err());
    }

    #[test]
    fn every_function_is_exported() {
        let module = compile("fn a() {} fn b() {}", "t").unwrap();
        assert_eq!(module.exports.len(), 2);
    }

    #[test]
    fn division_semantics_surface() {
        let module = compile("fn f() -> int { return 1 / 0; }", "t").unwrap();
        let verified = verify(module).unwrap();
        let r = Machine::new(&verified).run("f", &[], &mut NullHost);
        assert_eq!(r, Err(extsec_vm::Trap::DivideByZero));
    }
}
