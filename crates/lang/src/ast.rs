//! The abstract syntax tree.

use extsec_vm::Ty;

/// A whole source file.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Extern (syscall-gate) declarations.
    pub externs: Vec<ExternDecl>,
    /// Function definitions.
    pub functions: Vec<FnDecl>,
}

/// `extern fn name(ty, ...) [-> ty] = "/path";`
#[derive(Clone, Debug, PartialEq)]
pub struct ExternDecl {
    /// The local name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Option<Ty>,
    /// The name-space path of the gate.
    pub path: String,
    /// Source line.
    pub line: usize,
}

/// `fn name(p: ty, ...) [-> ty] { ... }`
#[derive(Clone, Debug, PartialEq)]
pub struct FnDecl {
    /// The function's name (also its export name).
    pub name: String,
    /// Named parameters.
    pub params: Vec<(String, Ty)>,
    /// Return type.
    pub ret: Option<Ty>,
    /// The body.
    pub body: Block,
    /// Source line.
    pub line: usize,
}

/// A `{ ... }` block.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `let name[: ty] = expr;`
    Let {
        /// The variable name.
        name: String,
        /// The optional annotation.
        ty: Option<Ty>,
        /// The initializer.
        init: Expr,
        /// Source line.
        line: usize,
    },
    /// `name = expr;`
    Assign {
        /// The variable name.
        name: String,
        /// The new value.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `if cond { ... } [else { ... }]`
    If {
        /// The condition.
        cond: Expr,
        /// The then-block.
        then: Block,
        /// The optional else-block.
        els: Option<Block>,
        /// Source line.
        line: usize,
    },
    /// `while cond { ... }`
    While {
        /// The condition.
        cond: Expr,
        /// The body.
        body: Block,
        /// Source line.
        line: usize,
    },
    /// `return [expr];`
    Return {
        /// The optional value.
        value: Option<Expr>,
        /// Source line.
        line: usize,
    },
    /// An expression statement (its value is discarded).
    Expr {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: usize,
    },
}

/// A binary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (int addition or string concatenation).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (strict).
    And,
    /// `||` (strict).
    Or,
}

/// A unary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// An integer literal.
    Int(i64, usize),
    /// A boolean literal.
    Bool(bool, usize),
    /// A string literal.
    Str(String, usize),
    /// A variable reference.
    Var(String, usize),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
        /// Source line.
        line: usize,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: usize,
    },
    /// A call to a function, extern, or builtin.
    Call {
        /// The callee name.
        name: String,
        /// The arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
    },
}

impl Expr {
    /// Returns the expression's source line.
    pub fn line(&self) -> usize {
        match self {
            Expr::Int(_, l)
            | Expr::Bool(_, l)
            | Expr::Str(_, l)
            | Expr::Var(_, l)
            | Expr::Unary { line: l, .. }
            | Expr::Binary { line: l, .. }
            | Expr::Call { line: l, .. } => *l,
        }
    }
}
