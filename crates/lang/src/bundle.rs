//! The policy-bundle dialect: a versioned, reviewable policy diff.
//!
//! A bundle is the administrative counterpart of an extension module:
//! where `fn` bodies describe *behavior*, a bundle describes a *policy
//! change* — ACL edits, label changes, and subtree relabels — as one
//! reviewable document that the reference monitor stages, shadows, and
//! activates atomically. This module is pure syntax: paths, ACLs, and
//! security classes stay strings here, and the monitor compiles them
//! against its live directory and lattice (names must resolve *there*,
//! not in the parser, because the parser has no policy to resolve
//! against).
//!
//! ```text
//! # Tighten the fs read gate, move the vault up.
//! bundle "q3-tighten" version 2 base 17;
//!
//! set-acl /svc/fs/read "+alice:rx -bob:w";
//! acl-add /svc/fs/write "+@staff:w";
//! set-label /svc/net/send high:{c0};
//! relabel-subtree /vault secret;
//! ```
//!
//! Grammar, one statement per `;`:
//!
//! * `bundle "NAME" version N base G;` — mandatory header; `G` is a
//!   generation number or the word `current` (resolved at stage time);
//! * `set-acl PATH "ACL";` — replace the node's ACL (the quoted string
//!   is the `extsec-acl` text format);
//! * `acl-add PATH "ACL";` — append entries to the node's ACL;
//! * `set-label PATH CLASS;` — replace the node's security label;
//! * `relabel-subtree PATH CLASS;` — relabel the node and everything
//!   beneath it (the namespace-label move);
//! * `#` starts a comment running to end of line.

use crate::{err, CompileError};
use std::fmt;

/// How a bundle names the generation it was authored against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaseRef {
    /// Resolve to whatever generation is active when the bundle is
    /// staged (`base current`).
    Current,
    /// A specific generation number; activation refuses if the active
    /// generation has moved past it.
    Generation(u64),
}

impl fmt::Display for BaseRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseRef::Current => write!(f, "current"),
            BaseRef::Generation(g) => write!(f, "{g}"),
        }
    }
}

/// One policy edit, still textual: the monitor resolves paths, ACL
/// entries, and class names against its own state at stage time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BundleOp {
    /// Replace the ACL on `path` with the parsed form of `acl`.
    SetAcl {
        /// Absolute namespace path of the target node.
        path: String,
        /// The new ACL in the `extsec-acl` text format.
        acl: String,
    },
    /// Append the parsed entries of `acl` to the ACL on `path`.
    AclAdd {
        /// Absolute namespace path of the target node.
        path: String,
        /// Entries to append, in the `extsec-acl` text format.
        acl: String,
    },
    /// Replace the security label on `path` with `class`.
    SetLabel {
        /// Absolute namespace path of the target node.
        path: String,
        /// The new label, in the lattice's class text format.
        class: String,
    },
    /// Relabel `path` and every node beneath it to `class`.
    RelabelSubtree {
        /// Absolute namespace path of the subtree root.
        path: String,
        /// The new label, in the lattice's class text format.
        class: String,
    },
}

impl fmt::Display for BundleOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleOp::SetAcl { path, acl } => write!(f, "set-acl {path} {acl:?};"),
            BundleOp::AclAdd { path, acl } => write!(f, "acl-add {path} {acl:?};"),
            BundleOp::SetLabel { path, class } => write!(f, "set-label {path} {class};"),
            BundleOp::RelabelSubtree { path, class } => {
                write!(f, "relabel-subtree {path} {class};")
            }
        }
    }
}

/// One statement with the source line it came from, for error reports
/// that survive the trip from the monitor back to an admin client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BundleStatement {
    /// 1-based source line of the statement's first token.
    pub line: usize,
    /// The edit itself.
    pub op: BundleOp,
}

/// A parsed bundle document: header plus the ordered edit list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BundleDoc {
    /// The bundle's name (for audit trails and status reports).
    pub name: String,
    /// The author's version counter, echoed in status reports.
    pub version: u64,
    /// The base generation the diff was authored against.
    pub base: BaseRef,
    /// The edits, in application order.
    pub ops: Vec<BundleStatement>,
}

impl fmt::Display for BundleDoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bundle {:?} version {} base {};",
            self.name, self.version, self.base
        )?;
        for statement in &self.ops {
            writeln!(f, "{}", statement.op)?;
        }
        Ok(())
    }
}

/// One token with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Word(String, usize),
    Str(String, usize),
    Semi(usize),
}

impl Token {
    fn line(&self) -> usize {
        match self {
            Token::Word(_, line) | Token::Str(_, line) | Token::Semi(line) => *line,
        }
    }
}

/// Splits the source into words, quoted strings, and semicolons,
/// stripping `#` comments. Quoted strings support `\"` and `\\`.
fn tokenize(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut chars = source.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\n' => line += 1,
            c if c.is_whitespace() => {}
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            ';' => tokens.push(Token::Semi(line)),
            '"' => {
                let start = line;
                let mut value = String::new();
                loop {
                    match chars.next() {
                        None => return err(start, "unterminated string"),
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => value.push('"'),
                            Some('\\') => value.push('\\'),
                            Some(other) => return err(start, format!("unknown escape \\{other}")),
                            None => return err(start, "unterminated string"),
                        },
                        Some('\n') => return err(start, "unterminated string"),
                        Some(other) => value.push(other),
                    }
                }
                tokens.push(Token::Str(value, start));
            }
            other => {
                let mut word = String::from(other);
                while let Some(&next) = chars.peek() {
                    if next.is_whitespace() || next == ';' || next == '"' || next == '#' {
                        break;
                    }
                    word.push(next);
                    chars.next();
                }
                tokens.push(Token::Word(word, line));
            }
        }
    }
    Ok(tokens)
}

/// A statement: the tokens between two semicolons.
fn statements(tokens: Vec<Token>) -> Result<Vec<Vec<Token>>, CompileError> {
    let mut out = Vec::new();
    let mut current: Vec<Token> = Vec::new();
    for token in tokens {
        match token {
            Token::Semi(line) => {
                if current.is_empty() {
                    return err(line, "empty statement");
                }
                out.push(std::mem::take(&mut current));
            }
            other => current.push(other),
        }
    }
    if let Some(first) = current.first() {
        return err(first.line(), "statement missing terminating ';'");
    }
    Ok(out)
}

fn want_word(token: Option<&Token>, what: &str, line: usize) -> Result<String, CompileError> {
    match token {
        Some(Token::Word(word, _)) => Ok(word.clone()),
        Some(Token::Str(_, line)) => err(*line, format!("expected {what}, got a quoted string")),
        Some(Token::Semi(line)) => err(*line, format!("expected {what}")),
        None => err(line, format!("expected {what}")),
    }
}

fn want_str(token: Option<&Token>, what: &str, line: usize) -> Result<String, CompileError> {
    match token {
        Some(Token::Str(value, _)) => Ok(value.clone()),
        Some(other) => err(other.line(), format!("expected a quoted {what}")),
        None => err(line, format!("expected a quoted {what}")),
    }
}

fn want_path(token: Option<&Token>, line: usize) -> Result<String, CompileError> {
    let word = want_word(token, "a path", line)?;
    if !word.starts_with('/') {
        return err(
            token.map(Token::line).unwrap_or(line),
            format!("paths are absolute; got {word:?}"),
        );
    }
    Ok(word)
}

fn want_end(statement: &[Token], used: usize) -> Result<(), CompileError> {
    if let Some(extra) = statement.get(used) {
        return err(extra.line(), "unexpected trailing tokens");
    }
    Ok(())
}

/// Parses a bundle document. The first statement must be the `bundle`
/// header; every following statement is one edit.
pub fn parse_bundle(source: &str) -> Result<BundleDoc, CompileError> {
    let statements = statements(tokenize(source)?)?;
    let mut iter = statements.into_iter();
    let header = match iter.next() {
        Some(header) => header,
        None => return err(1, "empty bundle: missing 'bundle' header"),
    };
    let line = header[0].line();
    if want_word(header.first(), "'bundle'", line)? != "bundle" {
        return err(
            line,
            "a bundle starts with: bundle \"NAME\" version N base G;",
        );
    }
    let name = want_str(header.get(1), "bundle name", line)?;
    if want_word(header.get(2), "'version'", line)? != "version" {
        return err(line, "expected 'version' after the bundle name");
    }
    let version: u64 = want_word(header.get(3), "a version number", line)?
        .parse()
        .map_err(|_| CompileError {
            line,
            msg: "version must be a non-negative integer".into(),
        })?;
    if want_word(header.get(4), "'base'", line)? != "base" {
        return err(line, "expected 'base' after the version");
    }
    let base_word = want_word(header.get(5), "a base generation", line)?;
    let base = if base_word == "current" {
        BaseRef::Current
    } else {
        BaseRef::Generation(base_word.parse().map_err(|_| CompileError {
            line,
            msg: format!("base must be a generation number or 'current', got {base_word:?}"),
        })?)
    };
    want_end(&header, 6)?;

    let mut ops = Vec::new();
    for statement in iter {
        let line = statement[0].line();
        let head = want_word(statement.first(), "an operation", line)?;
        let op = match head.as_str() {
            "set-acl" => {
                let path = want_path(statement.get(1), line)?;
                let acl = want_str(statement.get(2), "ACL", line)?;
                want_end(&statement, 3)?;
                BundleOp::SetAcl { path, acl }
            }
            "acl-add" => {
                let path = want_path(statement.get(1), line)?;
                let acl = want_str(statement.get(2), "ACL", line)?;
                want_end(&statement, 3)?;
                BundleOp::AclAdd { path, acl }
            }
            "set-label" => {
                let path = want_path(statement.get(1), line)?;
                let class = want_word(statement.get(2), "a class", line)?;
                want_end(&statement, 3)?;
                BundleOp::SetLabel { path, class }
            }
            "relabel-subtree" => {
                let path = want_path(statement.get(1), line)?;
                let class = want_word(statement.get(2), "a class", line)?;
                want_end(&statement, 3)?;
                BundleOp::RelabelSubtree { path, class }
            }
            other => {
                return err(
                    line,
                    format!(
                        "unknown operation {other:?} (expected set-acl, acl-add, \
                         set-label, or relabel-subtree)"
                    ),
                )
            }
        };
        ops.push(BundleStatement { line, op });
    }
    Ok(BundleDoc {
        name,
        version,
        base,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        # Quarterly tightening.
        bundle "q3-tighten" version 2 base 17;
        set-acl /svc/fs/read "+alice:rx -bob:w";
        acl-add /svc/fs/write "+@staff:w";
        set-label /svc/net/send high:{c0};
        relabel-subtree /vault secret;
    "#;

    #[test]
    fn parses_the_full_grammar() {
        let doc = parse_bundle(SAMPLE).unwrap();
        assert_eq!(doc.name, "q3-tighten");
        assert_eq!(doc.version, 2);
        assert_eq!(doc.base, BaseRef::Generation(17));
        assert_eq!(doc.ops.len(), 4);
        assert_eq!(
            doc.ops[0].op,
            BundleOp::SetAcl {
                path: "/svc/fs/read".into(),
                acl: "+alice:rx -bob:w".into(),
            }
        );
        assert_eq!(
            doc.ops[3].op,
            BundleOp::RelabelSubtree {
                path: "/vault".into(),
                class: "secret".into(),
            }
        );
    }

    #[test]
    fn base_current_resolves_at_stage_time() {
        let doc = parse_bundle("bundle \"b\" version 1 base current;").unwrap();
        assert_eq!(doc.base, BaseRef::Current);
        assert!(doc.ops.is_empty());
    }

    #[test]
    fn display_round_trips() {
        let doc = parse_bundle(SAMPLE).unwrap();
        let rendered = doc.to_string();
        let reparsed = parse_bundle(&rendered).unwrap();
        // Line numbers move when comments are stripped; the semantic
        // content must survive exactly.
        assert_eq!(reparsed.name, doc.name);
        assert_eq!(reparsed.version, doc.version);
        assert_eq!(reparsed.base, doc.base);
        let ops = |d: &BundleDoc| d.ops.iter().map(|s| s.op.clone()).collect::<Vec<_>>();
        assert_eq!(ops(&reparsed), ops(&doc));
    }

    #[test]
    fn errors_carry_lines() {
        let e = parse_bundle("bundle \"b\" version 1 base current;\nset-acl relative \"+*:r\";")
            .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("absolute"), "{e}");

        let e = parse_bundle("bundle \"b\" version 1 base nope;").unwrap_err();
        assert!(e.msg.contains("generation"), "{e}");

        let e = parse_bundle("bundle \"b\" version 1 base current;\nfrobnicate /x y;").unwrap_err();
        assert!(e.msg.contains("unknown operation"), "{e}");

        let e =
            parse_bundle("bundle \"b\" version 1 base current;\nset-acl /x \"+*:r\"").unwrap_err();
        assert!(e.msg.contains("terminating"), "{e}");
    }

    #[test]
    fn strings_unescape() {
        let doc = parse_bundle("bundle \"quo\\\"te\" version 0 base current;").unwrap();
        assert_eq!(doc.name, "quo\"te");
    }

    #[test]
    fn header_is_mandatory_and_first() {
        assert!(parse_bundle("").is_err());
        assert!(parse_bundle("set-acl /x \"+*:r\";").is_err());
    }
}
