//! The recursive-descent parser.

use crate::ast::{BinOp, Block, Expr, ExternDecl, FnDecl, Program, Stmt, UnOp};
use crate::lexer::{lex, SpannedTok, Tok};
use crate::{err, CompileError};
use extsec_vm::Ty;

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn next(&mut self) -> Option<SpannedTok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<usize, CompileError> {
        let line = self.line();
        match self.next() {
            Some(t) if t.tok == *tok => Ok(t.line),
            Some(t) => err(t.line, format!("expected {what}, found {:?}", t.tok)),
            None => err(line, format!("expected {what}, found end of input")),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, usize), CompileError> {
        let line = self.line();
        match self.next() {
            Some(SpannedTok {
                tok: Tok::Ident(name),
                line,
            }) => Ok((name, line)),
            Some(t) => err(t.line, format!("expected {what}, found {:?}", t.tok)),
            None => err(line, format!("expected {what}, found end of input")),
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_ty(&mut self) -> Result<Ty, CompileError> {
        let (name, line) = self.expect_ident("a type")?;
        match name.as_str() {
            "int" => Ok(Ty::Int),
            "bool" => Ok(Ty::Bool),
            "str" => Ok(Ty::Str),
            other => err(line, format!("unknown type {other:?}")),
        }
    }

    // ---------------------------------------------------------------
    // Declarations.
    // ---------------------------------------------------------------

    fn parse_program(&mut self) -> Result<Program, CompileError> {
        let mut externs = Vec::new();
        let mut functions = Vec::new();
        while self.peek().is_some() {
            if self.eat_keyword("extern") {
                externs.push(self.parse_extern()?);
            } else if self.eat_keyword("fn") {
                functions.push(self.parse_fn()?);
            } else {
                return err(self.line(), "expected `fn` or `extern`");
            }
        }
        Ok(Program { externs, functions })
    }

    fn parse_extern(&mut self) -> Result<ExternDecl, CompileError> {
        // `extern` already consumed; expect `fn name(tys) [-> ty] = "path";`
        if !self.eat_keyword("fn") {
            return err(self.line(), "expected `fn` after `extern`");
        }
        let (name, line) = self.expect_ident("an extern name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                // Allow `name: ty` or bare `ty`.
                let save = self.pos;
                if let Ok((_, _)) = self.expect_ident("a parameter") {
                    if self.eat(&Tok::Colon) {
                        params.push(self.parse_ty()?);
                    } else {
                        // It was a bare type name.
                        self.pos = save;
                        params.push(self.parse_ty()?);
                    }
                } else {
                    return err(self.line(), "expected a parameter");
                }
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "`,`")?;
            }
        }
        let ret = if self.eat(&Tok::Arrow) {
            Some(self.parse_ty()?)
        } else {
            None
        };
        self.expect(&Tok::Assign, "`=`")?;
        let path = match self.next() {
            Some(SpannedTok {
                tok: Tok::Str(path),
                ..
            }) => path,
            _ => return err(line, "expected the gate path as a string literal"),
        };
        self.expect(&Tok::Semi, "`;`")?;
        Ok(ExternDecl {
            name,
            params,
            ret,
            path,
            line,
        })
    }

    fn parse_fn(&mut self) -> Result<FnDecl, CompileError> {
        let (name, line) = self.expect_ident("a function name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let (pname, _) = self.expect_ident("a parameter name")?;
                self.expect(&Tok::Colon, "`:`")?;
                let ty = self.parse_ty()?;
                params.push((pname, ty));
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "`,`")?;
            }
        }
        let ret = if self.eat(&Tok::Arrow) {
            Some(self.parse_ty()?)
        } else {
            None
        };
        let body = self.parse_block()?;
        Ok(FnDecl {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    // ---------------------------------------------------------------
    // Statements.
    // ---------------------------------------------------------------

    fn parse_block(&mut self) -> Result<Block, CompileError> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek().is_none() {
                return err(self.line(), "unterminated block (missing `}`)");
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(Block { stmts })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if self.eat_keyword("let") {
            let (name, _) = self.expect_ident("a variable name")?;
            let ty = if self.eat(&Tok::Colon) {
                Some(self.parse_ty()?)
            } else {
                None
            };
            self.expect(&Tok::Assign, "`=`")?;
            let init = self.parse_expr()?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(Stmt::Let {
                name,
                ty,
                init,
                line,
            });
        }
        if self.eat_keyword("if") {
            let cond = self.parse_expr()?;
            let then = self.parse_block()?;
            let els = if self.eat_keyword("else") {
                if matches!(self.peek(), Some(Tok::Ident(k)) if k == "if") {
                    // `else if` sugar: wrap the nested if in a block.
                    let nested = self.parse_stmt()?;
                    Some(Block {
                        stmts: vec![nested],
                    })
                } else {
                    Some(self.parse_block()?)
                }
            } else {
                None
            };
            return Ok(Stmt::If {
                cond,
                then,
                els,
                line,
            });
        }
        if self.eat_keyword("while") {
            let cond = self.parse_expr()?;
            let body = self.parse_block()?;
            return Ok(Stmt::While { cond, body, line });
        }
        if self.eat_keyword("return") {
            let value = if self.peek() == Some(&Tok::Semi) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(Stmt::Return { value, line });
        }
        // Assignment or expression statement: look ahead for `ident =`.
        if let Some(Tok::Ident(name)) = self.peek().cloned() {
            if self.tokens.get(self.pos + 1).map(|t| &t.tok) == Some(&Tok::Assign) {
                self.pos += 2;
                let value = self.parse_expr()?;
                self.expect(&Tok::Semi, "`;`")?;
                return Ok(Stmt::Assign { name, value, line });
            }
        }
        let expr = self.parse_expr()?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(Stmt::Expr { expr, line })
    }

    // ---------------------------------------------------------------
    // Expressions (precedence climbing).
    // ---------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, CompileError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Tok::OrOr) {
            let line = self.line();
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_cmp()?;
        while self.peek() == Some(&Tok::AndAnd) {
            let line = self.line();
            self.pos += 1;
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::Eq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let line = self.line();
        self.pos += 1;
        let rhs = self.parse_add()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            line,
        })
    }

    fn parse_add(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.pos += 1;
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        if self.eat(&Tok::Minus) {
            let expr = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(expr),
                line,
            });
        }
        if self.eat(&Tok::Bang) {
            let expr = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(expr),
                line,
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.next() {
            Some(SpannedTok {
                tok: Tok::Int(v), ..
            }) => Ok(Expr::Int(v, line)),
            Some(SpannedTok {
                tok: Tok::Str(s), ..
            }) => Ok(Expr::Str(s, line)),
            Some(SpannedTok {
                tok: Tok::Ident(name),
                ..
            }) => match name.as_str() {
                "true" => Ok(Expr::Bool(true, line)),
                "false" => Ok(Expr::Bool(false, line)),
                _ => {
                    if self.eat(&Tok::LParen) {
                        let mut args = Vec::new();
                        if !self.eat(&Tok::RParen) {
                            loop {
                                args.push(self.parse_expr()?);
                                if self.eat(&Tok::RParen) {
                                    break;
                                }
                                self.expect(&Tok::Comma, "`,`")?;
                            }
                        }
                        Ok(Expr::Call { name, args, line })
                    } else {
                        Ok(Expr::Var(name, line))
                    }
                }
            },
            Some(SpannedTok {
                tok: Tok::LParen, ..
            }) => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(t) => err(t.line, format!("expected an expression, found {:?}", t.tok)),
            None => err(line, "expected an expression, found end of input"),
        }
    }
}

/// Parses a source file into a [`Program`].
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_externs_and_functions() {
        let program = parse(
            r#"
            extern fn print(s: str) = "/svc/console/print";
            extern fn now() -> int = "/svc/clock/now";
            fn main() -> int {
                let x = now();
                print("hi");
                return x;
            }
            "#,
        )
        .unwrap();
        assert_eq!(program.externs.len(), 2);
        assert_eq!(program.functions.len(), 1);
        assert_eq!(program.externs[0].params, vec![Ty::Str]);
        assert_eq!(program.externs[1].ret, Some(Ty::Int));
        assert_eq!(program.functions[0].body.stmts.len(), 3);
    }

    #[test]
    fn precedence() {
        let program = parse("fn f() -> bool { return 1 + 2 * 3 == 7 && true; }").unwrap();
        let Stmt::Return {
            value: Some(Expr::Binary { op, lhs, .. }),
            ..
        } = &program.functions[0].body.stmts[0]
        else {
            panic!("shape");
        };
        assert_eq!(*op, BinOp::And);
        let Expr::Binary { op, .. } = lhs.as_ref() else {
            panic!("shape");
        };
        assert_eq!(*op, BinOp::Eq);
    }

    #[test]
    fn else_if_chains() {
        let program = parse(
            "fn f(x: int) -> int { if x < 0 { return 0; } else if x < 10 { return 1; } else { return 2; } }",
        )
        .unwrap();
        let Stmt::If { els: Some(els), .. } = &program.functions[0].body.stmts[0] else {
            panic!("shape");
        };
        assert!(matches!(els.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn error_positions() {
        let e = parse("fn f() {\n  let = 3;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("fn f() { return 1 }").unwrap_err();
        assert!(e.msg.contains("`;`"));
        let e = parse("boom").unwrap_err();
        assert!(e.msg.contains("expected `fn` or `extern`"));
    }

    #[test]
    fn unary_nesting() {
        parse("fn f() -> int { return --1; }").unwrap();
        parse("fn f() -> bool { return !!true; }").unwrap();
    }
}
