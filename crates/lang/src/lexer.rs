//! The lexer.

use crate::CompileError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    // Literals and names.
    /// An identifier or keyword candidate.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A string literal (already unescaped).
    Str(String),

    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

/// A token with its 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// The 1-based line it starts on.
    pub line: usize,
}

/// Tokenizes `source`. Comments run from `//` to end of line.
pub fn lex(source: &str) -> Result<Vec<SpannedTok>, CompileError> {
    let mut out = Vec::new();
    let mut chars = source.char_indices().peekable();
    let mut line = 1usize;
    let bytes = source;
    while let Some((i, c)) = chars.next() {
        match c {
            '\n' => line += 1,
            c if c.is_whitespace() => {}
            '/' => {
                if matches!(chars.peek(), Some((_, '/'))) {
                    // Comment to end of line.
                    for (_, c2) in chars.by_ref() {
                        if c2 == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Slash,
                        line,
                    });
                }
            }
            '(' => out.push(SpannedTok {
                tok: Tok::LParen,
                line,
            }),
            ')' => out.push(SpannedTok {
                tok: Tok::RParen,
                line,
            }),
            '{' => out.push(SpannedTok {
                tok: Tok::LBrace,
                line,
            }),
            '}' => out.push(SpannedTok {
                tok: Tok::RBrace,
                line,
            }),
            ';' => out.push(SpannedTok {
                tok: Tok::Semi,
                line,
            }),
            ':' => out.push(SpannedTok {
                tok: Tok::Colon,
                line,
            }),
            ',' => out.push(SpannedTok {
                tok: Tok::Comma,
                line,
            }),
            '+' => out.push(SpannedTok {
                tok: Tok::Plus,
                line,
            }),
            '*' => out.push(SpannedTok {
                tok: Tok::Star,
                line,
            }),
            '%' => out.push(SpannedTok {
                tok: Tok::Percent,
                line,
            }),
            '-' => {
                if matches!(chars.peek(), Some((_, '>'))) {
                    chars.next();
                    out.push(SpannedTok {
                        tok: Tok::Arrow,
                        line,
                    });
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Minus,
                        line,
                    });
                }
            }
            '=' => {
                if matches!(chars.peek(), Some((_, '='))) {
                    chars.next();
                    out.push(SpannedTok { tok: Tok::Eq, line });
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Assign,
                        line,
                    });
                }
            }
            '!' => {
                if matches!(chars.peek(), Some((_, '='))) {
                    chars.next();
                    out.push(SpannedTok { tok: Tok::Ne, line });
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Bang,
                        line,
                    });
                }
            }
            '<' => {
                if matches!(chars.peek(), Some((_, '='))) {
                    chars.next();
                    out.push(SpannedTok { tok: Tok::Le, line });
                } else {
                    out.push(SpannedTok { tok: Tok::Lt, line });
                }
            }
            '>' => {
                if matches!(chars.peek(), Some((_, '='))) {
                    chars.next();
                    out.push(SpannedTok { tok: Tok::Ge, line });
                } else {
                    out.push(SpannedTok { tok: Tok::Gt, line });
                }
            }
            '&' => {
                if matches!(chars.peek(), Some((_, '&'))) {
                    chars.next();
                    out.push(SpannedTok {
                        tok: Tok::AndAnd,
                        line,
                    });
                } else {
                    return crate::err(line, "expected `&&`");
                }
            }
            '|' => {
                if matches!(chars.peek(), Some((_, '|'))) {
                    chars.next();
                    out.push(SpannedTok {
                        tok: Tok::OrOr,
                        line,
                    });
                } else {
                    return crate::err(line, "expected `||`");
                }
            }
            '"' => {
                let mut s = String::new();
                let mut closed = false;
                while let Some((_, c2)) = chars.next() {
                    match c2 {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some((_, '"')) => s.push('"'),
                            Some((_, '\\')) => s.push('\\'),
                            Some((_, 'n')) => s.push('\n'),
                            Some((_, 't')) => s.push('\t'),
                            Some((_, other)) => {
                                return crate::err(line, format!("bad escape \\{other}"))
                            }
                            None => return crate::err(line, "unterminated escape"),
                        },
                        '\n' => return crate::err(line, "unterminated string literal"),
                        other => s.push(other),
                    }
                }
                if !closed {
                    return crate::err(line, "unterminated string literal");
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut end = i + c.len_utf8();
                while let Some(&(j, c2)) = chars.peek() {
                    if c2.is_ascii_digit() {
                        end = j + c2.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                let text = &bytes[start..end];
                let value: i64 = text.parse().map_err(|_| crate::CompileError {
                    line,
                    msg: format!("integer literal {text:?} out of range"),
                })?;
                out.push(SpannedTok {
                    tok: Tok::Int(value),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut end = i + c.len_utf8();
                while let Some(&(j, c2)) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '_' {
                        end = j + c2.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(bytes[start..end].to_string()),
                    line,
                });
            }
            other => return crate::err(line, format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            toks("( ) { } ; : , -> = == != < <= > >= + - * / % && || !"),
            vec![
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::RBrace,
                Tok::Semi,
                Tok::Colon,
                Tok::Comma,
                Tok::Arrow,
                Tok::Assign,
                Tok::Eq,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Percent,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
            ]
        );
    }

    #[test]
    fn literals_and_idents() {
        assert_eq!(
            toks("fn f42 123 \"hi\\n\" _x"),
            vec![
                Tok::Ident("fn".into()),
                Tok::Ident("f42".into()),
                Tok::Int(123),
                Tok::Str("hi\n".into()),
                Tok::Ident("_x".into()),
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let tokens = lex("a // comment\nb").unwrap();
        assert_eq!(tokens.len(), 2);
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].line, 2);
    }

    #[test]
    fn errors() {
        assert!(lex("\"open").is_err());
        assert!(lex("&").is_err());
        assert!(lex("#").is_err());
        assert!(lex("99999999999999999999999").is_err());
    }
}
