//! `xlang` — a small type-safe extension language.
//!
//! The extensible systems the paper surveys give extension authors a
//! type-safe *language* (Java, Modula-3, Oberon), not raw bytecode. This
//! crate is that layer for extsec: a minimal, statically typed language
//! that compiles to the verified bytecode of [`extsec_vm`]. Every
//! compiled module still passes the bytecode verifier — the compiler is
//! convenience, not trust: the verifier stays the safety boundary.
//!
//! ```text
//! extern fn print(s: str) = "/svc/console/print";
//! extern fn now() -> int = "/svc/clock/now";
//!
//! fn fib(n: int) -> int {
//!     if n < 2 { return n; }
//!     return fib(n - 1) + fib(n - 2);
//! }
//!
//! fn main() -> int {
//!     let t = now();
//!     print("computing...");
//!     return fib(10) + t;
//! }
//! ```
//!
//! Language summary:
//!
//! * types `int`, `bool`, `str`;
//! * `extern fn` declarations bind system-service imports by name-space
//!   path (the syscall gates);
//! * `fn` definitions; every top-level function is exported;
//! * statements: `let` (with optional type annotation), assignment,
//!   `if`/`else`, `while`, `return`, expression statements;
//! * expressions: literals, variables, calls, `+ - * / %` on ints (`+`
//!   also concatenates strings), comparisons, `== !=` on equal types,
//!   `&& || !` on bools (strict: both operands evaluate), unary `-`;
//! * builtins `len(str) -> int`, `str(int) -> str`, `int(str) -> int`.
//!
//! # Examples
//!
//! ```
//! use extsec_lang::compile;
//! use extsec_vm::{verify, Machine, NullHost, Value};
//!
//! let module = compile(
//!     "fn double(x: int) -> int { return x * 2; }",
//!     "demo",
//! )
//! .unwrap();
//! let verified = verify(module).unwrap();
//! let r = Machine::new(&verified)
//!     .run("double", &[Value::Int(21)], &mut NullHost)
//!     .unwrap();
//! assert_eq!(r, Some(Value::Int(42)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod bundle;
pub mod codegen;
pub mod lexer;
pub mod parser;

pub use codegen::compile_program;
pub use parser::parse;

use std::fmt;

/// A compilation failure, with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// The 1-based line the error was detected on.
    pub line: usize,
    /// The error message.
    pub msg: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

pub(crate) fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        line,
        msg: msg.into(),
    })
}

/// Compiles `source` into an (unverified) bytecode module named
/// `module_name`. Run the result through [`extsec_vm::verify()`] (the
/// extension runtime does this on load).
pub fn compile(source: &str, module_name: &str) -> Result<extsec_vm::Module, CompileError> {
    let program = parse(source)?;
    compile_program(&program, module_name)
}
