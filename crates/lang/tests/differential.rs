//! Differential testing: a reference evaluator over the expression AST
//! versus the compiler + verifier + VM pipeline. Any divergence is a
//! compiler or interpreter bug.

use extsec_lang::compile;
use extsec_vm::{verify, Machine, NullHost, Value};
use proptest::prelude::*;

/// A tiny expression language mirroring xlang's int/bool expressions
/// (division is generated with guarded non-zero denominators so the
/// reference semantics stay total).
#[derive(Clone, Debug)]
enum E {
    Lit(i64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Neg(Box<E>),
    /// `a / (|b| % 7 + 1)` — a division with a denominator in 1..=7.
    DivSafe(Box<E>, Box<E>),
}

fn eval(e: &E) -> i64 {
    match e {
        E::Lit(v) => *v,
        E::Add(a, b) => eval(a).wrapping_add(eval(b)),
        E::Sub(a, b) => eval(a).wrapping_sub(eval(b)),
        E::Mul(a, b) => eval(a).wrapping_mul(eval(b)),
        E::Neg(a) => eval(a).wrapping_neg(),
        E::DivSafe(a, b) => {
            // Same formula the generated source uses: (b % 7 + 7) % 7 + 1
            // is always in 1..=7, so the division is total.
            let d = ((eval(b) % 7 + 7) % 7) + 1;
            eval(a) / d
        }
    }
}

fn to_src(e: &E) -> String {
    match e {
        E::Lit(v) => {
            if *v < 0 {
                format!("(0 - {})", (*v as i128).unsigned_abs())
            } else {
                v.to_string()
            }
        }
        E::Add(a, b) => format!("({} + {})", to_src(a), to_src(b)),
        E::Sub(a, b) => format!("({} - {})", to_src(a), to_src(b)),
        E::Mul(a, b) => format!("({} * {})", to_src(a), to_src(b)),
        E::Neg(a) => format!("(-{})", to_src(a)),
        E::DivSafe(a, b) => format!("({} / ((({} % 7 + 7) % 7) + 1))", to_src(a), to_src(b)),
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (-1000i64..1000).prop_map(E::Lit);
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            (inner.clone(), inner).prop_map(|(a, b)| E::DivSafe(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `compile(print(e))` computes exactly what the reference evaluator
    /// computes, including wrapping overflow behaviour.
    #[test]
    fn compiled_expressions_match_reference(e in arb_expr()) {
        // `%` in xlang maps to the VM's Rem, which follows Rust `%`
        // semantics — identical to the reference above.
        let src = format!("fn main() -> int {{ return {}; }}", to_src(&e));
        let module = compile(&src, "diff").expect("generated source compiles");
        let verified = verify(module).expect("compiler output verifies");
        let got = Machine::new(&verified)
            .run("main", &[], &mut NullHost)
            .expect("no traps on guarded expressions");
        prop_assert_eq!(got, Some(Value::Int(eval(&e))));
    }

    /// Comparisons over random operand pairs agree with Rust's.
    #[test]
    fn compiled_comparisons_match_reference(a in -100i64..100, b in -100i64..100) {
        for (op, expect) in [
            ("<", a < b),
            ("<=", a <= b),
            (">", a > b),
            (">=", a >= b),
            ("==", a == b),
            ("!=", a != b),
        ] {
            let src = format!(
                "fn main() -> bool {{ return {a} {op} {b}; }}"
            );
            let module = compile(&src, "cmp").unwrap();
            let verified = verify(module).unwrap();
            let got = Machine::new(&verified).run("main", &[], &mut NullHost).unwrap();
            prop_assert_eq!(got, Some(Value::Bool(expect)), "{} {} {}", a, op, b);
        }
    }
}
