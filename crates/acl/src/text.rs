//! A human-readable text format for ACLs.
//!
//! Administration tools (and the policy snapshot format) need a compact,
//! reviewable rendering of access control lists. The grammar is one
//! entry per whitespace-separated token:
//!
//! ```text
//! +alice:rx      allow principal alice read+execute
//! -bob:w         deny principal bob write
//! +@staff:rl     allow group staff read+list
//! -@interns:e    deny group interns extend
//! +*:l           allow everyone list
//! ```
//!
//! Mode letters are the symbols of [`AccessMode`](crate::AccessMode):
//! `r w a x e A d l`. Names resolve against a [`Directory`]; parsing an
//! unknown name fails rather than inventing principals.

use crate::acl::Acl;
use crate::entry::{AclEntry, EntryKind, Who};
use crate::mode::ModeSet;
use crate::principal::Directory;
use std::fmt;

/// Errors from parsing the ACL text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TextError {
    /// A token did not start with `+` or `-`.
    MissingPolarity(String),
    /// A token had no `:` separating subject from modes.
    MissingModes(String),
    /// The mode letters contained an unknown symbol.
    BadModes(String),
    /// The named principal is not in the directory.
    UnknownPrincipal(String),
    /// The named group is not in the directory.
    UnknownGroup(String),
    /// The subject part was empty.
    EmptySubject(String),
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::MissingPolarity(t) => write!(f, "{t:?}: entries start with + or -"),
            TextError::MissingModes(t) => write!(f, "{t:?}: expected subject:modes"),
            TextError::BadModes(t) => write!(f, "{t:?}: unknown mode letter"),
            TextError::UnknownPrincipal(n) => write!(f, "unknown principal {n:?}"),
            TextError::UnknownGroup(n) => write!(f, "unknown group {n:?}"),
            TextError::EmptySubject(t) => write!(f, "{t:?}: empty subject"),
        }
    }
}

impl std::error::Error for TextError {}

/// Parses the text format into an [`Acl`], resolving names against
/// `directory`.
pub fn parse_acl(directory: &Directory, text: &str) -> Result<Acl, TextError> {
    let mut acl = Acl::new();
    for token in text.split_whitespace() {
        let (kind, rest) = match token.split_at(1) {
            ("+", rest) => (EntryKind::Allow, rest),
            ("-", rest) => (EntryKind::Deny, rest),
            _ => return Err(TextError::MissingPolarity(token.to_string())),
        };
        let Some((subject, modes)) = rest.rsplit_once(':') else {
            return Err(TextError::MissingModes(token.to_string()));
        };
        let modes = ModeSet::parse(modes).ok_or_else(|| TextError::BadModes(token.to_string()))?;
        let who = if subject == "*" {
            Who::Everyone
        } else if let Some(group) = subject.strip_prefix('@') {
            Who::Group(
                directory
                    .group_by_name(group)
                    .ok_or_else(|| TextError::UnknownGroup(group.to_string()))?,
            )
        } else if subject.is_empty() {
            return Err(TextError::EmptySubject(token.to_string()));
        } else {
            Who::Principal(
                directory
                    .principal_by_name(subject)
                    .ok_or_else(|| TextError::UnknownPrincipal(subject.to_string()))?,
            )
        };
        acl.push(AclEntry::new(who, kind, modes));
    }
    Ok(acl)
}

/// Renders an [`Acl`] in the text format, using `directory` for names.
/// Unknown ids render numerically (`p7`, `g3`) and will not re-parse —
/// callers snapshotting policy should keep the directory alongside.
pub fn format_acl(directory: &Directory, acl: &Acl) -> String {
    let mut out = String::new();
    for (i, entry) in acl.entries().iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push(match entry.kind {
            EntryKind::Allow => '+',
            EntryKind::Deny => '-',
        });
        match entry.who {
            Who::Principal(p) => match directory.principal(p) {
                Some(record) => out.push_str(&record.name),
                None => out.push_str(&p.to_string()),
            },
            Who::Group(g) => {
                out.push('@');
                match directory.group(g) {
                    Some(record) => out.push_str(&record.name),
                    None => out.push_str(&g.to_string()),
                }
            }
            Who::Everyone => out.push('*'),
        }
        out.push(':');
        out.push_str(&entry.modes.symbols());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::AccessMode;

    fn directory() -> Directory {
        let mut dir = Directory::new();
        dir.add_principal("alice").unwrap();
        dir.add_principal("bob").unwrap();
        dir.add_group("staff").unwrap();
        dir
    }

    #[test]
    fn parse_basic() {
        let dir = directory();
        let acl = parse_acl(&dir, "+alice:rx -bob:w +@staff:rl +*:l").unwrap();
        assert_eq!(acl.len(), 4);
        let alice = dir.principal_by_name("alice").unwrap();
        assert!(acl.check(&dir, alice, AccessMode::Read).granted());
        assert!(acl.check(&dir, alice, AccessMode::Execute).granted());
        let bob = dir.principal_by_name("bob").unwrap();
        assert!(!acl.check(&dir, bob, AccessMode::Write).granted());
        assert!(acl.check(&dir, bob, AccessMode::List).granted());
    }

    #[test]
    fn round_trip() {
        let dir = directory();
        let text = "+alice:rx -bob:w +@staff:rl +*:l -@staff:A";
        let acl = parse_acl(&dir, text).unwrap();
        assert_eq!(format_acl(&dir, &acl), text);
        assert_eq!(parse_acl(&dir, &format_acl(&dir, &acl)).unwrap(), acl);
    }

    #[test]
    fn empty_is_empty() {
        let dir = directory();
        let acl = parse_acl(&dir, "  \n ").unwrap();
        assert!(acl.is_empty());
        assert_eq!(format_acl(&dir, &acl), "");
    }

    #[test]
    fn errors() {
        let dir = directory();
        assert!(matches!(
            parse_acl(&dir, "alice:r"),
            Err(TextError::MissingPolarity(_))
        ));
        assert!(matches!(
            parse_acl(&dir, "+alice"),
            Err(TextError::MissingModes(_))
        ));
        assert!(matches!(
            parse_acl(&dir, "+alice:rz"),
            Err(TextError::BadModes(_))
        ));
        assert!(matches!(
            parse_acl(&dir, "+ghost:r"),
            Err(TextError::UnknownPrincipal(_))
        ));
        assert!(matches!(
            parse_acl(&dir, "+@ghosts:r"),
            Err(TextError::UnknownGroup(_))
        ));
        assert!(matches!(
            parse_acl(&dir, "+:r"),
            Err(TextError::EmptySubject(_))
        ));
    }

    #[test]
    fn unknown_ids_render_numeric() {
        let dir = directory();
        let acl = Acl::from_entries([AclEntry::allow_principal(
            crate::principal::PrincipalId::from_raw(42),
            AccessMode::Read,
        )]);
        assert_eq!(format_acl(&dir, &acl), "+p42:r");
    }
}
