//! Discretionary access control for extensible systems.
//!
//! This crate implements the discretionary half of the access-control model
//! from *Security for Extensible Systems* (Grimm & Bershad, HotOS 1997),
//! §2.1: **fully featured access control lists** over individuals and
//! groups, with both *positive* (allow) and *negative* (deny) entries.
//!
//! Beyond the conventional file modes — read, write, write-append,
//! administrate, delete and list — the model adds the two modes that govern
//! how extensions interact with the rest of the system:
//!
//! * [`AccessMode::Execute`] — the extension may *call on* a service, and
//! * [`AccessMode::Extend`] — the extension may *extend* (specialize) a
//!   service, i.e. register itself to be invoked through the service's
//!   existing interface.
//!
//! Decision semantics (pinned down in DESIGN.md §3): an access is granted
//! iff **no** matching entry denies the mode and **some** matching entry
//! grants it, where an entry matches a principal directly, through
//! (transitive) group membership, or via the `Everyone` subject. Negative
//! entries dominate positive ones regardless of list order, matching
//! AFS/Windows-NT "fully featured" ACL practice.
//!
//! # Examples
//!
//! ```
//! use extsec_acl::{AccessMode, Acl, AclEntry, Directory};
//!
//! let mut dir = Directory::new();
//! let alice = dir.add_principal("alice").unwrap();
//! let bob = dir.add_principal("bob").unwrap();
//! let staff = dir.add_group("staff").unwrap();
//! dir.add_member(staff, alice).unwrap();
//! dir.add_member(staff, bob).unwrap();
//!
//! let mut acl = Acl::new();
//! acl.push(AclEntry::allow_group(staff, AccessMode::Execute));
//! acl.push(AclEntry::deny_principal(bob, AccessMode::Execute));
//!
//! assert!(acl.check(&dir, alice, AccessMode::Execute).granted());
//! assert!(!acl.check(&dir, bob, AccessMode::Execute).granted()); // deny wins
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod entry;
pub mod mode;
pub mod principal;
pub mod text;

pub use crate::acl::{Acl, AclDecision};
pub use entry::{AclEntry, EntryKind, Who};
pub use mode::{AccessMode, ModeSet};
pub use principal::{Directory, DirectoryError, Group, GroupId, Principal, PrincipalId};
pub use text::{format_acl, parse_acl, TextError};
