//! Principals, groups, and the principal directory.
//!
//! "Their use of individuals and groups in combination with fully featured
//! access control lists has the potential to offer a flexible and powerful
//! mechanism" (§1). The [`Directory`] is the registry of both: principals
//! are individuals (users, or the principal a piece of code runs as), and
//! groups contain principals and other groups. Membership is transitive
//! through nested groups; the closure computation is cycle-safe.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// Identifier of a principal (an individual subject identity).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PrincipalId(u32);

impl PrincipalId {
    /// Creates a principal id from a raw index.
    pub const fn from_raw(raw: u32) -> Self {
        PrincipalId(raw)
    }

    /// Returns the raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PrincipalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a group.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct GroupId(u32);

impl GroupId {
    /// Creates a group id from a raw index.
    pub const fn from_raw(raw: u32) -> Self {
        GroupId(raw)
    }

    /// Returns the raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A registered principal.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Principal {
    /// The principal's id.
    pub id: PrincipalId,
    /// The principal's unique name.
    pub name: String,
}

/// A registered group: direct principal members plus nested subgroups.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Group {
    /// The group's id.
    pub id: GroupId,
    /// The group's unique name.
    pub name: String,
    /// Direct principal members.
    pub members: BTreeSet<PrincipalId>,
    /// Direct subgroup members.
    pub subgroups: BTreeSet<GroupId>,
}

/// Errors from directory operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirectoryError {
    /// A name was empty.
    EmptyName,
    /// The name is already taken (by a principal or group respectively).
    DuplicateName(String),
    /// The referenced principal does not exist.
    UnknownPrincipal(PrincipalId),
    /// The referenced group does not exist.
    UnknownGroup(GroupId),
    /// Adding the subgroup would create a membership cycle.
    MembershipCycle(GroupId, GroupId),
}

impl fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectoryError::EmptyName => write!(f, "name must not be empty"),
            DirectoryError::DuplicateName(n) => write!(f, "duplicate name {n:?}"),
            DirectoryError::UnknownPrincipal(p) => write!(f, "unknown principal {p}"),
            DirectoryError::UnknownGroup(g) => write!(f, "unknown group {g}"),
            DirectoryError::MembershipCycle(a, b) => {
                write!(f, "adding {b} to {a} would create a cycle")
            }
        }
    }
}

impl std::error::Error for DirectoryError {}

/// The registry of principals and groups.
///
/// # Examples
///
/// ```
/// use extsec_acl::Directory;
///
/// let mut dir = Directory::new();
/// let alice = dir.add_principal("alice").unwrap();
/// let eng = dir.add_group("eng").unwrap();
/// let all = dir.add_group("all").unwrap();
/// dir.add_member(eng, alice).unwrap();
/// dir.add_subgroup(all, eng).unwrap();
///
/// // Membership is transitive through nesting.
/// assert!(dir.is_member(alice, all));
/// ```
#[derive(Debug, Default)]
pub struct Directory {
    principals: Vec<Principal>,
    groups: Vec<Group>,
    /// Uniqueness index over principal names, kept out of the
    /// serialized form (the manual impls below rebuild it).
    /// Registration is append-only, so a `len` mismatch against
    /// `principals` is the (only) sign the index is stale.
    principal_names: HashSet<String>,
}

impl Clone for Directory {
    fn clone(&self) -> Self {
        Directory {
            principals: self.principals.clone(),
            groups: self.groups.clone(),
            // Left empty: clones happen on the monitor's copy-on-write
            // publish path, which never registers principals. The next
            // `add_principal` on the clone rebuilds the index once.
            principal_names: HashSet::new(),
        }
    }
}

impl Serialize for Directory {
    fn serialize(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("principals".to_string(), self.principals.serialize()),
            ("groups".to_string(), self.groups.serialize()),
        ])
    }
}

impl Deserialize for Directory {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::Error> {
        let map = content.as_map().ok_or_else(|| {
            serde::Error::custom(format!("Directory: expected map, got {}", content.kind()))
        })?;
        let principals: Vec<Principal> = serde::__field(map, "principals")?;
        let groups: Vec<Group> = serde::__field(map, "groups")?;
        Ok(Directory {
            principal_names: principals.iter().map(|p| p.name.clone()).collect(),
            principals,
            groups,
        })
    }
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Registers a new principal.
    pub fn add_principal<S: Into<String>>(
        &mut self,
        name: S,
    ) -> Result<PrincipalId, DirectoryError> {
        let name = name.into();
        if name.is_empty() {
            return Err(DirectoryError::EmptyName);
        }
        if self.principal_names.len() != self.principals.len() {
            self.principal_names = self.principals.iter().map(|p| p.name.clone()).collect();
        }
        if !self.principal_names.insert(name.clone()) {
            return Err(DirectoryError::DuplicateName(name));
        }
        let id = PrincipalId(self.principals.len() as u32);
        self.principals.push(Principal { id, name });
        Ok(id)
    }

    /// Registers a new group.
    pub fn add_group<S: Into<String>>(&mut self, name: S) -> Result<GroupId, DirectoryError> {
        let name = name.into();
        if name.is_empty() {
            return Err(DirectoryError::EmptyName);
        }
        if self.groups.iter().any(|g| g.name == name) {
            return Err(DirectoryError::DuplicateName(name));
        }
        let id = GroupId(self.groups.len() as u32);
        self.groups.push(Group {
            id,
            name,
            members: BTreeSet::new(),
            subgroups: BTreeSet::new(),
        });
        Ok(id)
    }

    /// Adds `principal` as a direct member of `group`.
    pub fn add_member(
        &mut self,
        group: GroupId,
        principal: PrincipalId,
    ) -> Result<(), DirectoryError> {
        if !self.has_principal(principal) {
            return Err(DirectoryError::UnknownPrincipal(principal));
        }
        let g = self.group_mut(group)?;
        g.members.insert(principal);
        Ok(())
    }

    /// Removes `principal` from `group`'s direct members.
    pub fn remove_member(
        &mut self,
        group: GroupId,
        principal: PrincipalId,
    ) -> Result<bool, DirectoryError> {
        let g = self.group_mut(group)?;
        Ok(g.members.remove(&principal))
    }

    /// Adds `child` as a subgroup of `parent`, rejecting cycles.
    pub fn add_subgroup(&mut self, parent: GroupId, child: GroupId) -> Result<(), DirectoryError> {
        if !self.has_group(child) {
            return Err(DirectoryError::UnknownGroup(child));
        }
        if parent == child || self.group_reaches(child, parent) {
            return Err(DirectoryError::MembershipCycle(parent, child));
        }
        let g = self.group_mut(parent)?;
        g.subgroups.insert(child);
        Ok(())
    }

    /// Removes `child` from `parent`'s direct subgroups.
    pub fn remove_subgroup(
        &mut self,
        parent: GroupId,
        child: GroupId,
    ) -> Result<bool, DirectoryError> {
        let g = self.group_mut(parent)?;
        Ok(g.subgroups.remove(&child))
    }

    /// Returns whether `principal` is a (possibly transitive) member of
    /// `group`. Unknown ids yield `false`.
    pub fn is_member(&self, principal: PrincipalId, group: GroupId) -> bool {
        let Some(g) = self.groups.get(group.0 as usize) else {
            return false;
        };
        if g.members.contains(&principal) {
            return true;
        }
        let mut seen = BTreeSet::new();
        seen.insert(group);
        let mut stack: Vec<GroupId> = g.subgroups.iter().copied().collect();
        while let Some(next) = stack.pop() {
            if !seen.insert(next) {
                continue;
            }
            let Some(sub) = self.groups.get(next.0 as usize) else {
                continue;
            };
            if sub.members.contains(&principal) {
                return true;
            }
            stack.extend(sub.subgroups.iter().copied());
        }
        false
    }

    /// Returns every group the principal (transitively) belongs to.
    pub fn groups_of(&self, principal: PrincipalId) -> BTreeSet<GroupId> {
        self.groups
            .iter()
            .filter(|g| self.is_member(principal, g.id))
            .map(|g| g.id)
            .collect()
    }

    /// Returns the principal record, if registered.
    pub fn principal(&self, id: PrincipalId) -> Option<&Principal> {
        self.principals.get(id.0 as usize)
    }

    /// Returns the group record, if registered.
    pub fn group(&self, id: GroupId) -> Option<&Group> {
        self.groups.get(id.0 as usize)
    }

    /// Looks a principal up by name.
    pub fn principal_by_name(&self, name: &str) -> Option<PrincipalId> {
        self.principals
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.id)
    }

    /// Looks a group up by name.
    pub fn group_by_name(&self, name: &str) -> Option<GroupId> {
        self.groups.iter().find(|g| g.name == name).map(|g| g.id)
    }

    /// Returns the name of a principal, or its numeric form when unknown.
    pub fn principal_name(&self, id: PrincipalId) -> String {
        self.principal(id)
            .map(|p| p.name.clone())
            .unwrap_or_else(|| id.to_string())
    }

    /// Returns the number of registered principals.
    pub fn principal_count(&self) -> usize {
        self.principals.len()
    }

    /// Returns the number of registered groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Iterates over all principals.
    pub fn principals(&self) -> impl Iterator<Item = &Principal> {
        self.principals.iter()
    }

    /// Iterates over all groups.
    pub fn groups(&self) -> impl Iterator<Item = &Group> {
        self.groups.iter()
    }

    fn has_principal(&self, id: PrincipalId) -> bool {
        (id.0 as usize) < self.principals.len()
    }

    fn has_group(&self, id: GroupId) -> bool {
        (id.0 as usize) < self.groups.len()
    }

    fn group_mut(&mut self, id: GroupId) -> Result<&mut Group, DirectoryError> {
        self.groups
            .get_mut(id.0 as usize)
            .ok_or(DirectoryError::UnknownGroup(id))
    }

    /// Returns whether group `from` (transitively) contains group `to`.
    fn group_reaches(&self, from: GroupId, to: GroupId) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(next) = stack.pop() {
            if next == to {
                return true;
            }
            if !seen.insert(next) {
                continue;
            }
            if let Some(g) = self.groups.get(next.0 as usize) {
                stack.extend(g.subgroups.iter().copied());
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_membership() {
        let mut dir = Directory::new();
        let a = dir.add_principal("a").unwrap();
        let b = dir.add_principal("b").unwrap();
        let g = dir.add_group("g").unwrap();
        dir.add_member(g, a).unwrap();
        assert!(dir.is_member(a, g));
        assert!(!dir.is_member(b, g));
    }

    #[test]
    fn transitive_membership() {
        let mut dir = Directory::new();
        let a = dir.add_principal("a").unwrap();
        let inner = dir.add_group("inner").unwrap();
        let mid = dir.add_group("mid").unwrap();
        let outer = dir.add_group("outer").unwrap();
        dir.add_member(inner, a).unwrap();
        dir.add_subgroup(mid, inner).unwrap();
        dir.add_subgroup(outer, mid).unwrap();
        assert!(dir.is_member(a, outer));
        assert_eq!(dir.groups_of(a), [inner, mid, outer].into_iter().collect());
    }

    #[test]
    fn cycles_rejected() {
        let mut dir = Directory::new();
        let g1 = dir.add_group("g1").unwrap();
        let g2 = dir.add_group("g2").unwrap();
        dir.add_subgroup(g1, g2).unwrap();
        assert_eq!(
            dir.add_subgroup(g2, g1),
            Err(DirectoryError::MembershipCycle(g2, g1))
        );
        assert_eq!(
            dir.add_subgroup(g1, g1),
            Err(DirectoryError::MembershipCycle(g1, g1))
        );
    }

    #[test]
    fn removal() {
        let mut dir = Directory::new();
        let a = dir.add_principal("a").unwrap();
        let g = dir.add_group("g").unwrap();
        dir.add_member(g, a).unwrap();
        assert!(dir.remove_member(g, a).unwrap());
        assert!(!dir.remove_member(g, a).unwrap());
        assert!(!dir.is_member(a, g));
    }

    #[test]
    fn subgroup_removal_breaks_transitivity() {
        let mut dir = Directory::new();
        let a = dir.add_principal("a").unwrap();
        let inner = dir.add_group("inner").unwrap();
        let outer = dir.add_group("outer").unwrap();
        dir.add_member(inner, a).unwrap();
        dir.add_subgroup(outer, inner).unwrap();
        assert!(dir.is_member(a, outer));
        assert!(dir.remove_subgroup(outer, inner).unwrap());
        assert!(!dir.is_member(a, outer));
    }

    #[test]
    fn duplicate_and_empty_names() {
        let mut dir = Directory::new();
        dir.add_principal("x").unwrap();
        assert!(matches!(
            dir.add_principal("x"),
            Err(DirectoryError::DuplicateName(_))
        ));
        assert_eq!(dir.add_principal(""), Err(DirectoryError::EmptyName));
        dir.add_group("x").unwrap(); // Group namespace is separate.
        assert!(matches!(
            dir.add_group("x"),
            Err(DirectoryError::DuplicateName(_))
        ));
    }

    #[test]
    fn unknown_references() {
        let mut dir = Directory::new();
        let g = dir.add_group("g").unwrap();
        let ghost_p = PrincipalId::from_raw(99);
        let ghost_g = GroupId::from_raw(99);
        assert_eq!(
            dir.add_member(g, ghost_p),
            Err(DirectoryError::UnknownPrincipal(ghost_p))
        );
        assert_eq!(
            dir.add_subgroup(g, ghost_g),
            Err(DirectoryError::UnknownGroup(ghost_g))
        );
        assert!(!dir.is_member(ghost_p, ghost_g));
    }

    #[test]
    fn lookup_by_name() {
        let mut dir = Directory::new();
        let a = dir.add_principal("alice").unwrap();
        let g = dir.add_group("staff").unwrap();
        assert_eq!(dir.principal_by_name("alice"), Some(a));
        assert_eq!(dir.group_by_name("staff"), Some(g));
        assert_eq!(dir.principal_by_name("bob"), None);
        assert_eq!(dir.principal_name(a), "alice");
        assert_eq!(dir.principal_name(PrincipalId::from_raw(7)), "p7");
    }

    #[test]
    fn diamond_nesting_is_fine() {
        // g_top contains g_l and g_r, both contain g_bottom: not a cycle.
        let mut dir = Directory::new();
        let top = dir.add_group("top").unwrap();
        let l = dir.add_group("l").unwrap();
        let r = dir.add_group("r").unwrap();
        let bottom = dir.add_group("bottom").unwrap();
        dir.add_subgroup(top, l).unwrap();
        dir.add_subgroup(top, r).unwrap();
        dir.add_subgroup(l, bottom).unwrap();
        dir.add_subgroup(r, bottom).unwrap();
        let p = dir.add_principal("p").unwrap();
        dir.add_member(bottom, p).unwrap();
        assert!(dir.is_member(p, top));
    }
}
