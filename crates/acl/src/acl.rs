//! Access control lists and the decision algorithm.

use crate::entry::{AclEntry, EntryKind, Who};
use crate::mode::{AccessMode, ModeSet};
use crate::principal::{Directory, PrincipalId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome of evaluating an ACL for one principal and one mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AclDecision {
    /// A positive entry matched and no negative entry did.
    Granted,
    /// A negative entry matched; the index identifies the winning entry.
    DeniedByEntry(usize),
    /// No entry matched the principal and mode at all (default deny).
    NoMatchingEntry,
}

impl AclDecision {
    /// Returns whether the decision grants access.
    pub fn granted(self) -> bool {
        matches!(self, AclDecision::Granted)
    }
}

impl fmt::Display for AclDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AclDecision::Granted => write!(f, "granted"),
            AclDecision::DeniedByEntry(i) => write!(f, "denied by entry {i}"),
            AclDecision::NoMatchingEntry => write!(f, "no matching entry"),
        }
    }
}

/// A fully featured access control list.
///
/// Decision semantics: a mode is granted to a principal iff no matching
/// entry denies it **and** some matching entry allows it. Negative entries
/// dominate positive ones regardless of their position in the list, so
/// "allow group staff, but never bob" works whichever order the two entries
/// were added in. An empty ACL denies everything (default deny, the
/// fail-safe default of Saltzer & Schroeder).
///
/// # Examples
///
/// ```
/// use extsec_acl::{AccessMode, Acl, AclEntry, Directory, ModeSet};
///
/// let mut dir = Directory::new();
/// let alice = dir.add_principal("alice").unwrap();
///
/// let mut acl = Acl::new();
/// assert!(!acl.check(&dir, alice, AccessMode::Read).granted()); // default deny
///
/// acl.push(AclEntry::allow_principal_modes(alice, ModeSet::parse("rx").unwrap()));
/// assert!(acl.check(&dir, alice, AccessMode::Read).granted());
/// assert!(!acl.check(&dir, alice, AccessMode::Write).granted());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Acl {
    entries: Vec<AclEntry>,
}

impl Acl {
    /// Creates an empty (deny-all) ACL.
    pub fn new() -> Self {
        Acl::default()
    }

    /// Creates an ACL from a list of entries.
    pub fn from_entries<I: IntoIterator<Item = AclEntry>>(entries: I) -> Self {
        Acl {
            entries: entries.into_iter().collect(),
        }
    }

    /// Creates an ACL granting `modes` to everyone (useful for public
    /// interfaces like a console service).
    pub fn public(modes: ModeSet) -> Self {
        Acl::from_entries([AclEntry::allow_everyone(modes)])
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: AclEntry) {
        self.entries.push(entry);
    }

    /// Removes the entry at `index`, returning it if present.
    pub fn remove(&mut self, index: usize) -> Option<AclEntry> {
        if index < self.entries.len() {
            Some(self.entries.remove(index))
        } else {
            None
        }
    }

    /// Returns the entries.
    pub fn entries(&self) -> &[AclEntry] {
        &self.entries
    }

    /// Returns the number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns whether the ACL has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evaluates the ACL for `principal` requesting `mode`.
    ///
    /// Negative entries dominate: the first matching deny (in list order)
    /// is reported even when an allow also matches.
    pub fn check(
        &self,
        directory: &Directory,
        principal: PrincipalId,
        mode: AccessMode,
    ) -> AclDecision {
        let mut allowed = false;
        for (i, entry) in self.entries.iter().enumerate() {
            if !entry.applies(directory, principal, mode) {
                continue;
            }
            match entry.kind {
                EntryKind::Deny => return AclDecision::DeniedByEntry(i),
                EntryKind::Allow => allowed = true,
            }
        }
        if allowed {
            AclDecision::Granted
        } else {
            AclDecision::NoMatchingEntry
        }
    }

    /// Returns the full set of modes `principal` is granted by this ACL.
    pub fn effective_modes(&self, directory: &Directory, principal: PrincipalId) -> ModeSet {
        AccessMode::ALL
            .into_iter()
            .filter(|m| self.check(directory, principal, *m).granted())
            .collect()
    }

    /// Returns whether any entry names `who` directly.
    pub fn mentions(&self, who: Who) -> bool {
        self.entries.iter().any(|e| e.who == who)
    }
}

impl fmt::Display for Acl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::GroupId;

    fn setup() -> (Directory, PrincipalId, PrincipalId, GroupId) {
        let mut dir = Directory::new();
        let alice = dir.add_principal("alice").unwrap();
        let bob = dir.add_principal("bob").unwrap();
        let staff = dir.add_group("staff").unwrap();
        dir.add_member(staff, alice).unwrap();
        dir.add_member(staff, bob).unwrap();
        (dir, alice, bob, staff)
    }

    #[test]
    fn empty_acl_denies() {
        let (dir, alice, ..) = setup();
        let acl = Acl::new();
        for mode in AccessMode::ALL {
            assert_eq!(acl.check(&dir, alice, mode), AclDecision::NoMatchingEntry);
        }
    }

    #[test]
    fn deny_overrides_allow_regardless_of_order() {
        let (dir, alice, bob, staff) = setup();
        // Deny first.
        let acl = Acl::from_entries([
            AclEntry::deny_principal(bob, AccessMode::Execute),
            AclEntry::allow_group(staff, AccessMode::Execute),
        ]);
        assert!(acl.check(&dir, alice, AccessMode::Execute).granted());
        assert_eq!(
            acl.check(&dir, bob, AccessMode::Execute),
            AclDecision::DeniedByEntry(0)
        );
        // Allow first.
        let acl = Acl::from_entries([
            AclEntry::allow_group(staff, AccessMode::Execute),
            AclEntry::deny_principal(bob, AccessMode::Execute),
        ]);
        assert!(acl.check(&dir, alice, AccessMode::Execute).granted());
        assert_eq!(
            acl.check(&dir, bob, AccessMode::Execute),
            AclDecision::DeniedByEntry(1)
        );
    }

    #[test]
    fn deny_is_mode_specific() {
        let (dir, _, bob, staff) = setup();
        let acl = Acl::from_entries([
            AclEntry::allow_group_modes(staff, ModeSet::parse("rx").unwrap()),
            AclEntry::deny_principal(bob, AccessMode::Execute),
        ]);
        // Bob loses execute but keeps read.
        assert!(!acl.check(&dir, bob, AccessMode::Execute).granted());
        assert!(acl.check(&dir, bob, AccessMode::Read).granted());
    }

    #[test]
    fn everyone_entries() {
        let (dir, alice, bob, _) = setup();
        let acl = Acl::public(ModeSet::parse("rl").unwrap());
        assert!(acl.check(&dir, alice, AccessMode::Read).granted());
        assert!(acl.check(&dir, bob, AccessMode::List).granted());
        assert!(!acl.check(&dir, bob, AccessMode::Write).granted());
        // Unregistered principals are still "everyone".
        assert!(acl
            .check(&dir, PrincipalId::from_raw(999), AccessMode::Read)
            .granted());
    }

    #[test]
    fn deny_everyone_blocks_all() {
        let (dir, alice, _, staff) = setup();
        let acl = Acl::from_entries([
            AclEntry::allow_group(staff, AccessMode::Write),
            AclEntry::deny_everyone(ModeSet::only(AccessMode::Write)),
        ]);
        assert!(!acl.check(&dir, alice, AccessMode::Write).granted());
    }

    #[test]
    fn group_deny_hits_all_members() {
        let (dir, alice, bob, staff) = setup();
        let acl = Acl::from_entries([
            AclEntry::allow_everyone(ModeSet::only(AccessMode::Extend)),
            AclEntry::deny_group(staff, AccessMode::Extend),
        ]);
        assert!(!acl.check(&dir, alice, AccessMode::Extend).granted());
        assert!(!acl.check(&dir, bob, AccessMode::Extend).granted());
        assert!(acl
            .check(&dir, PrincipalId::from_raw(999), AccessMode::Extend)
            .granted());
    }

    #[test]
    fn effective_modes_reflects_decisions() {
        let (dir, alice, bob, staff) = setup();
        let acl = Acl::from_entries([
            AclEntry::allow_group_modes(staff, ModeSet::parse("rwx").unwrap()),
            AclEntry::deny_principal(bob, AccessMode::Write),
        ]);
        assert_eq!(
            acl.effective_modes(&dir, alice),
            ModeSet::parse("rwx").unwrap()
        );
        assert_eq!(
            acl.effective_modes(&dir, bob),
            ModeSet::parse("rx").unwrap()
        );
    }

    #[test]
    fn remove_entry() {
        let (dir, alice, ..) = setup();
        let mut acl = Acl::from_entries([AclEntry::allow_principal(alice, AccessMode::Read)]);
        assert!(acl.remove(5).is_none());
        let removed = acl.remove(0).unwrap();
        assert_eq!(removed.who, Who::Principal(alice));
        assert!(acl.is_empty());
        assert!(!acl.check(&dir, alice, AccessMode::Read).granted());
    }

    #[test]
    fn mentions() {
        let (_, alice, bob, _) = setup();
        let acl = Acl::from_entries([AclEntry::allow_principal(alice, AccessMode::Read)]);
        assert!(acl.mentions(Who::Principal(alice)));
        assert!(!acl.mentions(Who::Principal(bob)));
        assert!(!acl.mentions(Who::Everyone));
    }

    #[test]
    fn display() {
        let acl = Acl::from_entries([
            AclEntry::allow_everyone(ModeSet::only(AccessMode::Read)),
            AclEntry::deny_principal(PrincipalId::from_raw(1), AccessMode::Read),
        ]);
        assert_eq!(acl.to_string(), "[+everyone:r -p1:r]");
    }
}
