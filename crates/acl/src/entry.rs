//! Access control list entries.

use crate::mode::{AccessMode, ModeSet};
use crate::principal::{Directory, GroupId, PrincipalId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whom an ACL entry applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Who {
    /// A single principal.
    Principal(PrincipalId),
    /// Every (transitive) member of a group.
    Group(GroupId),
    /// Every principal, registered or not.
    Everyone,
}

impl Who {
    /// Returns whether this subject designation matches `principal`,
    /// resolving group membership through `directory`.
    pub fn matches(&self, directory: &Directory, principal: PrincipalId) -> bool {
        match self {
            Who::Principal(p) => *p == principal,
            Who::Group(g) => directory.is_member(principal, *g),
            Who::Everyone => true,
        }
    }
}

impl fmt::Display for Who {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Who::Principal(p) => write!(f, "{p}"),
            Who::Group(g) => write!(f, "{g}"),
            Who::Everyone => write!(f, "everyone"),
        }
    }
}

/// Whether an entry grants or denies its modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntryKind {
    /// Positive entry: grants the modes.
    Allow,
    /// Negative entry: denies the modes, overriding any grant.
    Deny,
}

/// One entry of a fully featured access control list: a subject
/// designation, a polarity, and a set of modes.
///
/// # Examples
///
/// ```
/// use extsec_acl::{AccessMode, AclEntry, ModeSet, Who, EntryKind};
///
/// let entry = AclEntry::new(
///     Who::Everyone,
///     EntryKind::Allow,
///     ModeSet::of(&[AccessMode::Read, AccessMode::List]),
/// );
/// assert!(entry.covers(AccessMode::Read));
/// assert!(!entry.covers(AccessMode::Write));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AclEntry {
    /// Whom the entry applies to.
    pub who: Who,
    /// Grant or deny.
    pub kind: EntryKind,
    /// The modes granted or denied.
    pub modes: ModeSet,
}

impl AclEntry {
    /// Creates an entry.
    pub fn new(who: Who, kind: EntryKind, modes: ModeSet) -> Self {
        AclEntry { who, kind, modes }
    }

    /// Convenience: allow a single principal one mode.
    pub fn allow_principal(principal: PrincipalId, mode: AccessMode) -> Self {
        AclEntry::new(
            Who::Principal(principal),
            EntryKind::Allow,
            ModeSet::only(mode),
        )
    }

    /// Convenience: allow a single principal a mode set.
    pub fn allow_principal_modes(principal: PrincipalId, modes: ModeSet) -> Self {
        AclEntry::new(Who::Principal(principal), EntryKind::Allow, modes)
    }

    /// Convenience: deny a single principal one mode.
    pub fn deny_principal(principal: PrincipalId, mode: AccessMode) -> Self {
        AclEntry::new(
            Who::Principal(principal),
            EntryKind::Deny,
            ModeSet::only(mode),
        )
    }

    /// Convenience: deny a single principal a mode set.
    pub fn deny_principal_modes(principal: PrincipalId, modes: ModeSet) -> Self {
        AclEntry::new(Who::Principal(principal), EntryKind::Deny, modes)
    }

    /// Convenience: allow a group one mode.
    pub fn allow_group(group: GroupId, mode: AccessMode) -> Self {
        AclEntry::new(Who::Group(group), EntryKind::Allow, ModeSet::only(mode))
    }

    /// Convenience: allow a group a mode set.
    pub fn allow_group_modes(group: GroupId, modes: ModeSet) -> Self {
        AclEntry::new(Who::Group(group), EntryKind::Allow, modes)
    }

    /// Convenience: deny a group one mode.
    pub fn deny_group(group: GroupId, mode: AccessMode) -> Self {
        AclEntry::new(Who::Group(group), EntryKind::Deny, ModeSet::only(mode))
    }

    /// Convenience: allow everyone a mode set.
    pub fn allow_everyone(modes: ModeSet) -> Self {
        AclEntry::new(Who::Everyone, EntryKind::Allow, modes)
    }

    /// Convenience: deny everyone a mode set.
    pub fn deny_everyone(modes: ModeSet) -> Self {
        AclEntry::new(Who::Everyone, EntryKind::Deny, modes)
    }

    /// Returns whether the entry's mode set covers `mode`.
    pub fn covers(&self, mode: AccessMode) -> bool {
        self.modes.contains(mode)
    }

    /// Returns whether this entry applies to `principal` for `mode`.
    pub fn applies(&self, directory: &Directory, principal: PrincipalId, mode: AccessMode) -> bool {
        self.covers(mode) && self.who.matches(directory, principal)
    }
}

impl fmt::Display for AclEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = match self.kind {
            EntryKind::Allow => '+',
            EntryKind::Deny => '-',
        };
        write!(f, "{sign}{}:{}", self.who, self.modes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn who_matches() {
        let mut dir = Directory::new();
        let a = dir.add_principal("a").unwrap();
        let b = dir.add_principal("b").unwrap();
        let g = dir.add_group("g").unwrap();
        dir.add_member(g, a).unwrap();

        assert!(Who::Principal(a).matches(&dir, a));
        assert!(!Who::Principal(a).matches(&dir, b));
        assert!(Who::Group(g).matches(&dir, a));
        assert!(!Who::Group(g).matches(&dir, b));
        assert!(Who::Everyone.matches(&dir, b));
    }

    #[test]
    fn applies_requires_both_subject_and_mode() {
        let mut dir = Directory::new();
        let a = dir.add_principal("a").unwrap();
        let b = dir.add_principal("b").unwrap();
        let entry = AclEntry::allow_principal(a, AccessMode::Execute);
        assert!(entry.applies(&dir, a, AccessMode::Execute));
        assert!(!entry.applies(&dir, a, AccessMode::Extend));
        assert!(!entry.applies(&dir, b, AccessMode::Execute));
    }

    #[test]
    fn display_format() {
        let entry = AclEntry::deny_principal(PrincipalId::from_raw(3), AccessMode::Write);
        assert_eq!(entry.to_string(), "-p3:w");
        let entry = AclEntry::allow_everyone(ModeSet::parse("rl").unwrap());
        assert_eq!(entry.to_string(), "+everyone:rl");
    }
}
