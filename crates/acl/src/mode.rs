//! Access modes and mode sets.
//!
//! The paper (§2.1) enumerates the modes directly: read, write,
//! write-append, administrate, "with the possible addition of delete and
//! list", plus the two extension-specific modes **execute** (call on a
//! service) and **extend** (specialize a service).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single access mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum AccessMode {
    /// Observe the contents of an object.
    Read = 0,
    /// Destructively modify the contents of an object.
    Write = 1,
    /// Append to an object without observing or destroying existing
    /// contents ("to better limit how objects can be modified").
    WriteAppend = 2,
    /// Call on a system service (the first way extensions interact with
    /// the rest of the system).
    Execute = 3,
    /// Extend (specialize) a system service (the second way extensions
    /// interact with the rest of the system).
    Extend = 4,
    /// Change the object's access control list itself.
    Administrate = 5,
    /// Delete the object.
    Delete = 6,
    /// List a container's entries (visibility of directory/interface
    /// members).
    List = 7,
}

impl AccessMode {
    /// All modes, in declaration order.
    pub const ALL: [AccessMode; 8] = [
        AccessMode::Read,
        AccessMode::Write,
        AccessMode::WriteAppend,
        AccessMode::Execute,
        AccessMode::Extend,
        AccessMode::Administrate,
        AccessMode::Delete,
        AccessMode::List,
    ];

    /// Returns the short symbolic name used in ACL dumps.
    pub fn symbol(self) -> &'static str {
        match self {
            AccessMode::Read => "r",
            AccessMode::Write => "w",
            AccessMode::WriteAppend => "a",
            AccessMode::Execute => "x",
            AccessMode::Extend => "e",
            AccessMode::Administrate => "A",
            AccessMode::Delete => "d",
            AccessMode::List => "l",
        }
    }

    /// Parses a single-character symbol back into a mode.
    pub fn from_symbol(c: char) -> Option<AccessMode> {
        Some(match c {
            'r' => AccessMode::Read,
            'w' => AccessMode::Write,
            'a' => AccessMode::WriteAppend,
            'x' => AccessMode::Execute,
            'e' => AccessMode::Extend,
            'A' => AccessMode::Administrate,
            'd' => AccessMode::Delete,
            'l' => AccessMode::List,
            _ => return None,
        })
    }

    const fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessMode::Read => "read",
            AccessMode::Write => "write",
            AccessMode::WriteAppend => "write-append",
            AccessMode::Execute => "execute",
            AccessMode::Extend => "extend",
            AccessMode::Administrate => "administrate",
            AccessMode::Delete => "delete",
            AccessMode::List => "list",
        };
        f.write_str(s)
    }
}

/// A set of access modes, stored as a bitmask.
///
/// # Examples
///
/// ```
/// use extsec_acl::{AccessMode, ModeSet};
///
/// let rw = ModeSet::of(&[AccessMode::Read, AccessMode::Write]);
/// assert!(rw.contains(AccessMode::Read));
/// assert!(!rw.contains(AccessMode::Execute));
/// assert_eq!(rw.symbols(), "rw");
/// assert_eq!(ModeSet::parse("rwx").unwrap(), rw.with(AccessMode::Execute));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModeSet(u8);

impl ModeSet {
    /// The empty mode set.
    pub const EMPTY: ModeSet = ModeSet(0);

    /// Creates an empty mode set.
    pub const fn new() -> Self {
        ModeSet(0)
    }

    /// Creates a set holding every mode.
    pub fn all() -> Self {
        ModeSet::of(&AccessMode::ALL)
    }

    /// Creates a set from a slice of modes.
    pub fn of(modes: &[AccessMode]) -> Self {
        let mut set = ModeSet::new();
        for &m in modes {
            set.insert(m);
        }
        set
    }

    /// Creates a set with a single mode.
    pub const fn only(mode: AccessMode) -> Self {
        ModeSet(mode.bit())
    }

    /// Inserts a mode.
    pub fn insert(&mut self, mode: AccessMode) {
        self.0 |= mode.bit();
    }

    /// Removes a mode.
    pub fn remove(&mut self, mode: AccessMode) {
        self.0 &= !mode.bit();
    }

    /// Returns a copy with `mode` added.
    pub const fn with(self, mode: AccessMode) -> Self {
        ModeSet(self.0 | mode.bit())
    }

    /// Returns a copy with `mode` removed.
    pub const fn without(self, mode: AccessMode) -> Self {
        ModeSet(self.0 & !mode.bit())
    }

    /// Returns whether the set contains `mode`.
    pub const fn contains(self, mode: AccessMode) -> bool {
        self.0 & mode.bit() != 0
    }

    /// Returns whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns the union of the two sets.
    pub const fn union(self, other: ModeSet) -> ModeSet {
        ModeSet(self.0 | other.0)
    }

    /// Returns the intersection of the two sets.
    pub const fn intersection(self, other: ModeSet) -> ModeSet {
        ModeSet(self.0 & other.0)
    }

    /// Returns the number of modes in the set.
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over the member modes.
    pub fn iter(self) -> impl Iterator<Item = AccessMode> {
        AccessMode::ALL
            .into_iter()
            .filter(move |m| self.contains(*m))
    }

    /// Renders the set as its symbol string (e.g. `"rwx"`).
    pub fn symbols(self) -> String {
        self.iter().map(|m| m.symbol()).collect()
    }

    /// Parses a symbol string; returns `None` on any unknown character.
    pub fn parse(s: &str) -> Option<ModeSet> {
        let mut set = ModeSet::new();
        for c in s.chars() {
            set.insert(AccessMode::from_symbol(c)?);
        }
        Some(set)
    }
}

impl FromIterator<AccessMode> for ModeSet {
    fn from_iter<I: IntoIterator<Item = AccessMode>>(iter: I) -> Self {
        let mut set = ModeSet::new();
        for m in iter {
            set.insert(m);
        }
        set
    }
}

impl fmt::Display for ModeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.symbols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut set = ModeSet::new();
        set.insert(AccessMode::Extend);
        assert!(set.contains(AccessMode::Extend));
        assert!(!set.contains(AccessMode::Execute));
        set.remove(AccessMode::Extend);
        assert!(set.is_empty());
    }

    #[test]
    fn all_contains_every_mode() {
        let all = ModeSet::all();
        for m in AccessMode::ALL {
            assert!(all.contains(m));
        }
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn symbols_round_trip() {
        let set = ModeSet::of(&[AccessMode::Read, AccessMode::Extend, AccessMode::List]);
        assert_eq!(ModeSet::parse(&set.symbols()), Some(set));
        assert_eq!(ModeSet::parse("rz"), None);
        assert_eq!(ModeSet::parse(""), Some(ModeSet::EMPTY));
    }

    #[test]
    fn mode_symbol_round_trip() {
        for m in AccessMode::ALL {
            let sym = m.symbol().chars().next().unwrap();
            assert_eq!(AccessMode::from_symbol(sym), Some(m));
        }
        assert_eq!(AccessMode::from_symbol('?'), None);
    }

    #[test]
    fn union_intersection() {
        let a = ModeSet::of(&[AccessMode::Read, AccessMode::Write]);
        let b = ModeSet::of(&[AccessMode::Write, AccessMode::Execute]);
        assert_eq!(
            a.union(b),
            ModeSet::of(&[AccessMode::Read, AccessMode::Write, AccessMode::Execute])
        );
        assert_eq!(a.intersection(b), ModeSet::only(AccessMode::Write));
    }

    #[test]
    fn with_without_are_pure() {
        let base = ModeSet::only(AccessMode::Read);
        let more = base.with(AccessMode::Write);
        assert!(!base.contains(AccessMode::Write));
        assert!(more.contains(AccessMode::Write));
        assert_eq!(more.without(AccessMode::Write), base);
    }

    #[test]
    fn iter_visits_declaration_order() {
        let set = ModeSet::of(&[AccessMode::List, AccessMode::Read]);
        let modes: Vec<AccessMode> = set.iter().collect();
        assert_eq!(modes, vec![AccessMode::Read, AccessMode::List]);
    }

    #[test]
    fn execute_and_extend_are_distinct() {
        // The heart of §2.1: calling and extending are separate rights.
        let call_only = ModeSet::only(AccessMode::Execute);
        assert!(call_only.contains(AccessMode::Execute));
        assert!(!call_only.contains(AccessMode::Extend));
    }
}
