//! P2 — property tests: ACL decision soundness (DESIGN.md §4).

use extsec_acl::{
    AccessMode, Acl, AclDecision, AclEntry, Directory, EntryKind, ModeSet, PrincipalId, Who,
};
use proptest::prelude::*;

const N_PRINCIPALS: u32 = 8;
const N_GROUPS: u32 = 4;

/// Builds a directory with `N_PRINCIPALS` principals and `N_GROUPS` groups
/// whose memberships are driven by `memberships` (pairs of group index ×
/// principal index).
fn build_directory(memberships: &[(u8, u8)]) -> Directory {
    let mut dir = Directory::new();
    for i in 0..N_PRINCIPALS {
        dir.add_principal(format!("p{i}")).unwrap();
    }
    let mut groups = Vec::new();
    for i in 0..N_GROUPS {
        groups.push(dir.add_group(format!("g{i}")).unwrap());
    }
    for &(g, p) in memberships {
        let g = groups[(g as usize) % groups.len()];
        let p = PrincipalId::from_raw((p as u32) % N_PRINCIPALS);
        dir.add_member(g, p).unwrap();
    }
    dir
}

fn arb_mode() -> impl Strategy<Value = AccessMode> {
    prop::sample::select(AccessMode::ALL.to_vec())
}

fn arb_who() -> impl Strategy<Value = Who> {
    prop_oneof![
        (0..N_PRINCIPALS).prop_map(|p| Who::Principal(PrincipalId::from_raw(p))),
        (0..N_GROUPS).prop_map(|g| Who::Group(extsec_acl::GroupId::from_raw(g))),
        Just(Who::Everyone),
    ]
}

fn arb_entry() -> impl Strategy<Value = AclEntry> {
    (
        arb_who(),
        prop::bool::ANY,
        proptest::collection::vec(arb_mode(), 1..4),
    )
        .prop_map(|(who, allow, modes)| {
            AclEntry::new(
                who,
                if allow {
                    EntryKind::Allow
                } else {
                    EntryKind::Deny
                },
                ModeSet::of(&modes),
            )
        })
}

fn arb_acl() -> impl Strategy<Value = Acl> {
    proptest::collection::vec(arb_entry(), 0..12).prop_map(Acl::from_entries)
}

fn arb_memberships() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..4, 0u8..8), 0..16)
}

proptest! {
    /// Default deny: an ACL with no allow entries grants nothing.
    #[test]
    fn no_allow_no_access(
        memberships in arb_memberships(),
        entries in proptest::collection::vec(arb_entry(), 0..8),
        p in 0..N_PRINCIPALS,
        mode in arb_mode(),
    ) {
        let dir = build_directory(&memberships);
        let deny_only: Vec<AclEntry> = entries
            .into_iter()
            .map(|mut e| { e.kind = EntryKind::Deny; e })
            .collect();
        let acl = Acl::from_entries(deny_only);
        prop_assert!(!acl.check(&dir, PrincipalId::from_raw(p), mode).granted());
    }

    /// Negative dominance: adding a matching deny entry can never grant
    /// access that was denied, and always revokes a prior grant.
    #[test]
    fn deny_is_dominant_and_monotone(
        memberships in arb_memberships(),
        acl in arb_acl(),
        p in 0..N_PRINCIPALS,
        mode in arb_mode(),
        position in 0usize..16,
    ) {
        let dir = build_directory(&memberships);
        let principal = PrincipalId::from_raw(p);
        let mut entries = acl.entries().to_vec();
        let deny = AclEntry::deny_principal(principal, mode);
        let pos = position.min(entries.len());
        entries.insert(pos, deny);
        let stricter = Acl::from_entries(entries);
        prop_assert!(!stricter.check(&dir, principal, mode).granted());
    }

    /// Adding an allow entry never revokes an existing grant for others.
    #[test]
    fn allow_is_monotone_for_grants(
        memberships in arb_memberships(),
        acl in arb_acl(),
        extra_who in arb_who(),
        extra_modes in proptest::collection::vec(arb_mode(), 1..3),
        p in 0..N_PRINCIPALS,
        mode in arb_mode(),
    ) {
        let dir = build_directory(&memberships);
        let principal = PrincipalId::from_raw(p);
        let before = acl.check(&dir, principal, mode).granted();
        let mut entries = acl.entries().to_vec();
        entries.push(AclEntry::new(extra_who, EntryKind::Allow, ModeSet::of(&extra_modes)));
        let wider = Acl::from_entries(entries);
        if before {
            prop_assert!(wider.check(&dir, principal, mode).granted());
        }
    }

    /// Entry order never affects the outcome (only which deny entry is
    /// reported).
    #[test]
    fn order_independence(
        memberships in arb_memberships(),
        acl in arb_acl(),
        p in 0..N_PRINCIPALS,
        mode in arb_mode(),
    ) {
        let dir = build_directory(&memberships);
        let principal = PrincipalId::from_raw(p);
        let forward = acl.check(&dir, principal, mode).granted();
        let mut reversed = acl.entries().to_vec();
        reversed.reverse();
        let backward = Acl::from_entries(reversed).check(&dir, principal, mode).granted();
        prop_assert_eq!(forward, backward);
    }

    /// Group grants extend to every member, unless individually denied.
    #[test]
    fn group_closure(
        memberships in arb_memberships(),
        g in 0..N_GROUPS,
        mode in arb_mode(),
    ) {
        let dir = build_directory(&memberships);
        let group = extsec_acl::GroupId::from_raw(g);
        let acl = Acl::from_entries([AclEntry::allow_group(group, mode)]);
        for p in 0..N_PRINCIPALS {
            let principal = PrincipalId::from_raw(p);
            let expected = dir.is_member(principal, group);
            prop_assert_eq!(acl.check(&dir, principal, mode).granted(), expected);
        }
    }

    /// `effective_modes` agrees with `check` mode by mode.
    #[test]
    fn effective_modes_agrees(
        memberships in arb_memberships(),
        acl in arb_acl(),
        p in 0..N_PRINCIPALS,
    ) {
        let dir = build_directory(&memberships);
        let principal = PrincipalId::from_raw(p);
        let effective = acl.effective_modes(&dir, principal);
        for mode in AccessMode::ALL {
            prop_assert_eq!(
                effective.contains(mode),
                acl.check(&dir, principal, mode).granted()
            );
        }
    }

    /// A reported deny always points at a real matching deny entry.
    #[test]
    fn reported_deny_entry_is_accurate(
        memberships in arb_memberships(),
        acl in arb_acl(),
        p in 0..N_PRINCIPALS,
        mode in arb_mode(),
    ) {
        let dir = build_directory(&memberships);
        let principal = PrincipalId::from_raw(p);
        if let AclDecision::DeniedByEntry(i) = acl.check(&dir, principal, mode) {
            let entry = acl.entries()[i];
            prop_assert_eq!(entry.kind, EntryKind::Deny);
            prop_assert!(entry.applies(&dir, principal, mode));
        }
    }
}
