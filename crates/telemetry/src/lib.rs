//! Runtime telemetry for the check pipeline.
//!
//! The reference monitor mediates *every* cross-extension interaction
//! (PAPER.md), which makes it both the natural choke point for security
//! and the natural vantage point for observability: stage timings,
//! access-mode mix, per-service operation counts, and dispatch outcomes
//! all flow through it. This crate provides the recording machinery —
//! [`ShardedCounter`]s and log-scale [`LatencyHistogram`]s behind a
//! single [`Telemetry`] handle — under two rules:
//!
//! 1. **Disabled telemetry is near-free.** Every recording entry point
//!    starts with one relaxed atomic load of the `enabled` flag and
//!    returns immediately when it is off. No clock reads, no allocation,
//!    no stores.
//! 2. **Enabled telemetry never blocks.** All state is relaxed atomics;
//!    recording is wait-free and snapshotting is a racy-but-monotone read
//!    (each counter in a [`TelemetrySnapshot`] never decreases across
//!    successive snapshots, and a histogram's `count` always equals the
//!    sum of its buckets).
//!
//! The intended calling pattern on a timed stage is
//! `let t = tele.start();` … work … `tele.finish(Stage::Acl, t);` —
//! `start` returns `None` when disabled so the disabled path never
//! touches the clock.

mod counter;
mod histogram;
mod sink;
mod snapshot;

pub use counter::ShardedCounter;
pub use histogram::{HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use sink::{JsonSink, JsonSnapshot, JsonStage, LastSnapshotSink, TelemetrySink};
pub use snapshot::{AuditSnapshot, StageSnapshot, TelemetrySnapshot};

use extsec_acl::AccessMode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A timed stage of the check pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Name resolution (path walk through the protected name space).
    Resolve = 0,
    /// Decision-cache probe (hit or miss).
    Cache = 1,
    /// Discretionary ACL evaluation at the resolved node.
    Acl = 2,
    /// Mandatory flow check against the lattice.
    Mac = 3,
    /// Audit-record append.
    Audit = 4,
    /// A whole `check` call, end to end.
    Check = 5,
    /// Lifetime of a pinned [`MonitorView`]: one pin, one trace.
    ViewSpan = 6,
}

impl Stage {
    /// All stages, in declaration order.
    pub const ALL: [Stage; 7] = [
        Stage::Resolve,
        Stage::Cache,
        Stage::Acl,
        Stage::Mac,
        Stage::Audit,
        Stage::Check,
        Stage::ViewSpan,
    ];

    /// Number of stages.
    pub const COUNT: usize = Stage::ALL.len();

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Resolve => "resolve",
            Stage::Cache => "cache",
            Stage::Acl => "acl",
            Stage::Mac => "mac",
            Stage::Audit => "audit",
            Stage::Check => "check",
            Stage::ViewSpan => "view-span",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A system service observed by per-service operation counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ServiceKind {
    /// File service.
    Fs = 0,
    /// Network buffer service.
    Mbuf = 1,
    /// Network service.
    Net = 2,
    /// Virtual file system switch.
    Vfs = 3,
    /// Console service.
    Console = 4,
    /// Clock service.
    Clock = 5,
    /// Applet host service.
    Applets = 6,
}

impl ServiceKind {
    /// All services, in declaration order.
    pub const ALL: [ServiceKind; 7] = [
        ServiceKind::Fs,
        ServiceKind::Mbuf,
        ServiceKind::Net,
        ServiceKind::Vfs,
        ServiceKind::Console,
        ServiceKind::Clock,
        ServiceKind::Applets,
    ];

    /// Number of services.
    pub const COUNT: usize = ServiceKind::ALL.len();

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ServiceKind::Fs => "fs",
            ServiceKind::Mbuf => "mbuf",
            ServiceKind::Net => "net",
            ServiceKind::Vfs => "vfs",
            ServiceKind::Console => "console",
            ServiceKind::Clock => "clock",
            ServiceKind::Applets => "applets",
        }
    }
}

impl std::fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the extension runtime routed a call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DispatchOutcome {
    /// Routed to a specializing extension selected by the dispatcher.
    Specialized = 0,
    /// Routed to the longest-prefix base service.
    Base = 1,
    /// No service matched the call.
    Unrouted = 2,
    /// An extension body was run by the runtime.
    ExtensionRun = 3,
}

impl DispatchOutcome {
    /// All outcomes, in declaration order.
    pub const ALL: [DispatchOutcome; 4] = [
        DispatchOutcome::Specialized,
        DispatchOutcome::Base,
        DispatchOutcome::Unrouted,
        DispatchOutcome::ExtensionRun,
    ];

    /// Number of outcomes.
    pub const COUNT: usize = DispatchOutcome::ALL.len();

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DispatchOutcome::Specialized => "specialized",
            DispatchOutcome::Base => "base",
            DispatchOutcome::Unrouted => "unrouted",
            DispatchOutcome::ExtensionRun => "extension-run",
        }
    }
}

impl std::fmt::Display for DispatchOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fault class recorded by the extension health ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ExtFault {
    /// The extension trapped at runtime (divide by zero, explicit trap,
    /// a refused syscall, ...).
    Trap = 0,
    /// The extension exhausted its fuel budget.
    Fuel = 1,
    /// A module failed bytecode verification at load time.
    VerifyReject = 2,
    /// A panic crossed the dispatch boundary and was caught there.
    HostPanic = 3,
    /// The extension exhausted its per-execution memory budget.
    Memory = 4,
    /// The extension was preempted by the epoch deadline (wall-clock
    /// bound, independent of fuel).
    Preempted = 5,
}

impl ExtFault {
    /// All fault classes, in declaration order.
    pub const ALL: [ExtFault; 6] = [
        ExtFault::Trap,
        ExtFault::Fuel,
        ExtFault::VerifyReject,
        ExtFault::HostPanic,
        ExtFault::Memory,
        ExtFault::Preempted,
    ];

    /// Number of fault classes.
    pub const COUNT: usize = ExtFault::ALL.len();

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ExtFault::Trap => "trap",
            ExtFault::Fuel => "fuel",
            ExtFault::VerifyReject => "verify-reject",
            ExtFault::HostPanic => "host-panic",
            ExtFault::Memory => "memory",
            ExtFault::Preempted => "preempted",
        }
    }
}

impl std::fmt::Display for ExtFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The recording hub for one monitor's pipeline.
///
/// Collection starts disabled; flip it with [`set_enabled`]. The flag is
/// on the `Telemetry` value itself (not in `MonitorConfig`) so it can be
/// toggled at runtime without publishing a new monitor state.
///
/// [`set_enabled`]: Telemetry::set_enabled
pub struct Telemetry {
    enabled: AtomicBool,
    stages: [LatencyHistogram; Stage::COUNT],
    modes: [ShardedCounter; AccessMode::ALL.len()],
    services: [ShardedCounter; ServiceKind::COUNT],
    dispatch: [ShardedCounter; DispatchOutcome::COUNT],
    ext_faults: [ShardedCounter; ExtFault::COUNT],
    quarantines: ShardedCounter,
    quarantine_denials: ShardedCounter,
    probation_trials: ShardedCounter,
    probation_readmits: ShardedCounter,
    views: ShardedCounter,
    view_ops: ShardedCounter,
    shadow_checks: ShardedCounter,
    shadow_allow_to_deny: ShardedCounter,
    shadow_deny_to_allow: ShardedCounter,
    sinks: RwLock<Vec<Arc<dyn TelemetrySink>>>,
    /// Pulled (never pushed) when a snapshot is taken, so audit-chain
    /// health rides in every snapshot without this crate depending on
    /// the audit types.
    audit_source: RwLock<Option<Arc<dyn Fn() -> AuditSnapshot + Send + Sync>>>,
}

impl Telemetry {
    /// Creates a disabled, zeroed hub.
    pub fn new() -> Self {
        Telemetry {
            enabled: AtomicBool::new(false),
            stages: std::array::from_fn(|_| LatencyHistogram::new()),
            modes: std::array::from_fn(|_| ShardedCounter::new()),
            services: std::array::from_fn(|_| ShardedCounter::new()),
            dispatch: std::array::from_fn(|_| ShardedCounter::new()),
            ext_faults: std::array::from_fn(|_| ShardedCounter::new()),
            quarantines: ShardedCounter::new(),
            quarantine_denials: ShardedCounter::new(),
            probation_trials: ShardedCounter::new(),
            probation_readmits: ShardedCounter::new(),
            views: ShardedCounter::new(),
            view_ops: ShardedCounter::new(),
            shadow_checks: ShardedCounter::new(),
            shadow_allow_to_deny: ShardedCounter::new(),
            shadow_deny_to_allow: ShardedCounter::new(),
            sinks: RwLock::new(Vec::new()),
            audit_source: RwLock::new(None),
        }
    }

    /// A process-wide hub that is permanently disabled. Internal callers
    /// that must re-run an instrumented path without double-counting
    /// (e.g. debug-build cross-checks) record into this instead.
    pub fn disabled() -> &'static Telemetry {
        static DISABLED: OnceLock<Telemetry> = OnceLock::new();
        DISABLED.get_or_init(Telemetry::new)
    }

    /// Whether collection is on. One relaxed load; this is the entire
    /// disabled-path cost of every recording entry point.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns collection on or off. Counts accumulated so far are kept.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Starts a stage timer, or `None` when disabled (no clock read).
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finishes a stage timer started with [`start`](Telemetry::start).
    /// A `None` token (telemetry was off at `start`) records nothing,
    /// even if collection was enabled in between — partial samples would
    /// skew the distribution.
    #[inline]
    pub fn finish(&self, stage: Stage, started: Option<Instant>) {
        if let Some(started) = started {
            self.stages[stage as usize].record(started.elapsed());
        }
    }

    /// Records an externally measured stage duration.
    #[inline]
    pub fn record(&self, stage: Stage, duration: std::time::Duration) {
        if self.enabled() {
            self.stages[stage as usize].record(duration);
        }
    }

    /// Counts one check of `mode`.
    #[inline]
    pub fn count_mode(&self, mode: AccessMode) {
        if self.enabled() {
            self.modes[mode as usize].incr();
        }
    }

    /// Counts one operation against `kind`.
    #[inline]
    pub fn count_service(&self, kind: ServiceKind) {
        if self.enabled() {
            self.services[kind as usize].incr();
        }
    }

    /// Counts one dispatch `outcome`.
    #[inline]
    pub fn count_dispatch(&self, outcome: DispatchOutcome) {
        if self.enabled() {
            self.dispatch[outcome as usize].incr();
        }
    }

    /// Counts one recorded extension fault of class `fault`.
    #[inline]
    pub fn count_ext_fault(&self, fault: ExtFault) {
        if self.enabled() {
            self.ext_faults[fault as usize].incr();
        }
    }

    /// Counts one circuit-breaker trip (an extension entering
    /// quarantine).
    #[inline]
    pub fn count_quarantine(&self) {
        if self.enabled() {
            self.quarantines.incr();
        }
    }

    /// Counts one dispatch refused because the extension is quarantined.
    #[inline]
    pub fn count_quarantine_denial(&self) {
        if self.enabled() {
            self.quarantine_denials.incr();
        }
    }

    /// Counts one probation (half-open) trial dispatch.
    #[inline]
    pub fn count_probation_trial(&self) {
        if self.enabled() {
            self.probation_trials.incr();
        }
    }

    /// Counts one probation trial that succeeded and re-admitted the
    /// extension.
    #[inline]
    pub fn count_probation_readmit(&self) {
        if self.enabled() {
            self.probation_readmits.incr();
        }
    }

    /// Counts one opened monitor view.
    #[inline]
    pub fn count_view(&self) {
        if self.enabled() {
            self.views.incr();
        }
    }

    /// Counts one operation performed through a view.
    #[inline]
    pub fn count_view_op(&self) {
        if self.enabled() {
            self.view_ops.incr();
        }
    }

    /// Counts one check dual-evaluated against a shadowed policy.
    #[inline]
    pub fn count_shadow_check(&self) {
        if self.enabled() {
            self.shadow_checks.incr();
        }
    }

    /// Counts one shadow-mode would-be flip from allow to deny: the
    /// active policy allowed, the shadowed policy would have denied.
    #[inline]
    pub fn count_shadow_allow_to_deny(&self) {
        if self.enabled() {
            self.shadow_allow_to_deny.incr();
        }
    }

    /// Counts one shadow-mode would-be flip from deny to allow.
    #[inline]
    pub fn count_shadow_deny_to_allow(&self) {
        if self.enabled() {
            self.shadow_deny_to_allow.incr();
        }
    }

    /// Takes an immutable snapshot of every counter and histogram.
    /// Never blocks recording; see [`TelemetrySnapshot`] for the
    /// monotonicity guarantees.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            enabled: self.enabled(),
            stages: Stage::ALL
                .into_iter()
                .map(|stage| StageSnapshot {
                    stage,
                    hist: self.stages[stage as usize].snapshot(),
                })
                .collect(),
            modes: AccessMode::ALL
                .into_iter()
                .map(|m| (m, self.modes[m as usize].get()))
                .collect(),
            services: ServiceKind::ALL
                .into_iter()
                .map(|s| (s, self.services[s as usize].get()))
                .collect(),
            dispatch: DispatchOutcome::ALL
                .into_iter()
                .map(|d| (d, self.dispatch[d as usize].get()))
                .collect(),
            ext_faults: ExtFault::ALL
                .into_iter()
                .map(|fault| (fault, self.ext_faults[fault as usize].get()))
                .collect(),
            quarantines: self.quarantines.get(),
            quarantine_denials: self.quarantine_denials.get(),
            probation_trials: self.probation_trials.get(),
            probation_readmits: self.probation_readmits.get(),
            views: self.views.get(),
            view_ops: self.view_ops.get(),
            shadow_checks: self.shadow_checks.get(),
            shadow_allow_to_deny: self.shadow_allow_to_deny.get(),
            shadow_deny_to_allow: self.shadow_deny_to_allow.get(),
            audit: self
                .audit_source
                .read()
                .expect("audit source poisoned")
                .as_ref()
                .map(|source| source()),
        }
    }

    /// Registers the audit-health source consulted by every
    /// [`snapshot`](Telemetry::snapshot). The monitor registers a closure
    /// over its audit ring and (optional) persistent pipeline at
    /// construction; the source runs on the snapshotting thread, never on
    /// a check.
    pub fn set_audit_source(&self, source: Arc<dyn Fn() -> AuditSnapshot + Send + Sync>) {
        *self.audit_source.write().expect("audit source poisoned") = Some(source);
    }

    /// Registers a sink to receive snapshots from [`publish`].
    ///
    /// [`publish`]: Telemetry::publish
    pub fn add_sink(&self, sink: Arc<dyn TelemetrySink>) {
        self.sinks
            .write()
            .expect("sink registry poisoned")
            .push(sink);
    }

    /// Takes one snapshot and exports it to every registered sink,
    /// returning it. Sinks run on the calling thread, never on a check.
    pub fn publish(&self) -> TelemetrySnapshot {
        let snapshot = self.snapshot();
        let sinks = self.sinks.read().expect("sink registry poisoned").clone();
        for sink in sinks {
            sink.export(&snapshot);
        }
        snapshot
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .field("checks", &self.stages[Stage::Check as usize])
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_records_nothing() {
        let tele = Telemetry::new();
        assert!(!tele.enabled());
        assert!(tele.start().is_none());
        tele.finish(Stage::Check, tele.start());
        tele.record(Stage::Acl, Duration::from_nanos(50));
        tele.count_mode(AccessMode::Read);
        tele.count_service(ServiceKind::Fs);
        tele.count_dispatch(DispatchOutcome::Base);
        tele.count_view();
        let snap = tele.snapshot();
        assert_eq!(snap.checks(), 0);
        assert_eq!(snap.stage(Stage::Acl).count, 0);
        assert_eq!(snap.mode(AccessMode::Read), 0);
        assert_eq!(snap.service(ServiceKind::Fs), 0);
        assert_eq!(snap.dispatch(DispatchOutcome::Base), 0);
        assert_eq!(snap.views, 0);
    }

    #[test]
    fn enabled_records_everything() {
        let tele = Telemetry::new();
        tele.set_enabled(true);
        let token = tele.start();
        assert!(token.is_some());
        tele.finish(Stage::Check, token);
        tele.record(Stage::Acl, Duration::from_nanos(64));
        tele.count_mode(AccessMode::Execute);
        tele.count_service(ServiceKind::Net);
        tele.count_dispatch(DispatchOutcome::Specialized);
        tele.count_view();
        tele.count_view_op();
        let snap = tele.snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.checks(), 1);
        assert_eq!(snap.stage(Stage::Acl).count, 1);
        assert_eq!(snap.mode(AccessMode::Execute), 1);
        assert_eq!(snap.service(ServiceKind::Net), 1);
        assert_eq!(snap.dispatch(DispatchOutcome::Specialized), 1);
        assert_eq!(snap.views, 1);
        assert_eq!(snap.view_ops, 1);
    }

    #[test]
    fn stale_token_does_not_record_after_enable() {
        let tele = Telemetry::new();
        let token = tele.start(); // disabled: None
        tele.set_enabled(true);
        tele.finish(Stage::Check, token);
        assert_eq!(tele.snapshot().checks(), 0);
    }

    #[test]
    fn publish_feeds_sinks() {
        let tele = Telemetry::new();
        tele.set_enabled(true);
        let sink = Arc::new(LastSnapshotSink::new());
        tele.add_sink(sink.clone());
        tele.record(Stage::Check, Duration::from_nanos(10));
        let published = tele.publish();
        assert_eq!(sink.last().as_ref(), Some(&published));
        assert_eq!(published.checks(), 1);
    }

    #[test]
    fn display_renders_prose() {
        let tele = Telemetry::new();
        tele.set_enabled(true);
        tele.record(Stage::Check, Duration::from_micros(2));
        tele.record(Stage::Acl, Duration::from_nanos(120));
        tele.count_mode(AccessMode::Read);
        let text = tele.snapshot().to_string();
        assert!(text.contains("telemetry (enabled): 1 checks"), "{text}");
        assert!(text.contains("acl"), "{text}");
        assert!(text.contains("read: 1"), "{text}");
    }

    #[test]
    fn process_wide_disabled_hub_stays_disabled() {
        let hub = Telemetry::disabled();
        hub.record(Stage::Check, Duration::from_nanos(5));
        assert_eq!(hub.snapshot().checks(), 0);
    }
}
