//! Sharded atomic counters.
//!
//! A single shared `AtomicU64` turns every increment into a bounce of one
//! cache line between cores — exactly the serialization the lock-free
//! read path (DESIGN.md §6.7) was built to avoid. A [`ShardedCounter`]
//! spreads increments over a fixed set of cache-line-aligned shards,
//! picked per recording thread, so concurrent checks on different cores
//! increment different lines; reads sum the shards, which is fine because
//! reads happen at snapshot time, not on the hot path.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of independent shards. Power of two so the thread hint masks.
const SHARD_COUNT: usize = 8;

/// One shard, alone on its cache line.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// Hands every recording thread a stable shard preference, spreading
/// threads round-robin over the shard array.
fn shard_hint() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    HINT.with(|h| *h)
}

/// A monotone counter sharded across cache lines.
///
/// Each shard only ever increases, so a sum taken by one observer thread
/// is monotone across successive reads even while writers race.
#[derive(Default)]
pub struct ShardedCounter {
    shards: [Shard; SHARD_COUNT],
}

impl ShardedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        ShardedCounter::default()
    }

    /// Adds `n` to this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_hint() & (SHARD_COUNT - 1)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Increments this thread's shard.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sums the shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ShardedCounter").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_across_threads() {
        let counter = Arc::new(ShardedCounter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        counter.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.get(), 4000);
    }

    #[test]
    fn reads_are_monotone_under_writers() {
        let counter = Arc::new(ShardedCounter::new());
        let writer = {
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..100_000 {
                    counter.incr();
                }
            })
        };
        let mut last = 0;
        for _ in 0..1000 {
            let now = counter.get();
            assert!(now >= last, "counter went backwards: {last} -> {now}");
            last = now;
        }
        writer.join().unwrap();
        assert_eq!(counter.get(), 100_000);
    }
}
