//! Log-scale latency histograms.
//!
//! A latency distribution on the check path spans four orders of
//! magnitude (a warm cache hit is tens of nanoseconds, a cold 256-entry
//! ACL scan is microseconds), so linear buckets waste either resolution
//! or memory. The [`LatencyHistogram`] uses power-of-two buckets over
//! nanoseconds: bucket `b` holds samples in `[2^(b-1), 2^b)` ns, which
//! gives constant relative error (~2x) at every scale in a fixed 40-slot
//! array of relaxed atomics — no allocation, no lock, ever.
//!
//! The observed count is *defined* as the sum of the buckets rather than
//! kept in a separate (and separately-torn) counter, so a concurrent
//! reader's `count` is always consistent with its `buckets` and both are
//! monotone across successive snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Bucket count: `2^39` ns ≈ 9 minutes, far beyond any sane check.
pub const BUCKETS: usize = 40;

/// Index of the bucket holding a sample of `ns` nanoseconds.
#[inline]
fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(BUCKETS - 1)
}

/// A fixed-size power-of-two-bucket histogram of durations.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one sample. Relaxed atomics only; the min/max and total
    /// are updated *before* the bucket, so a reader that observes the
    /// sample in a bucket also observes its contribution to the extremes
    /// on every architecture that preserves single-location ordering.
    #[inline]
    pub fn record(&self, duration: Duration) {
        let ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes an immutable snapshot of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        let min_ns = self.min_ns.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            total_ns: self.total_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 { 0 } else { min_ns },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snap.count)
            .field("mean_ns", &snap.mean_ns())
            .finish()
    }
}

/// An immutable view of one histogram's distribution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples observed (always the sum of `buckets`).
    pub count: u64,
    /// Sum of all sample durations, in nanoseconds.
    pub total_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    /// Power-of-two buckets: `buckets[b]` counts samples in
    /// `[2^(b-1), 2^b)` ns.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (in ns) of the bucket containing the `q`-quantile
    /// sample, `q` in `[0, 1]`. A log-scale histogram answers quantiles
    /// to within its ~2x bucket resolution, which is what capacity
    /// planning needs; 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 { 0 } else { 1u64 << b };
            }
        }
        self.max_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn snapshot_reflects_samples() {
        let hist = LatencyHistogram::new();
        hist.record(Duration::from_nanos(100));
        hist.record(Duration::from_nanos(300));
        hist.record(Duration::from_micros(10));
        let snap = hist.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.total_ns, 100 + 300 + 10_000);
        assert_eq!(snap.min_ns, 100);
        assert_eq!(snap.max_ns, 10_000);
        assert_eq!(snap.count, snap.buckets.iter().sum::<u64>());
        assert_eq!(snap.mean_ns(), (100 + 300 + 10_000) / 3);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let hist = LatencyHistogram::new();
        for _ in 0..99 {
            hist.record(Duration::from_nanos(100)); // bucket 7: [64, 128)
        }
        hist.record(Duration::from_micros(100)); // bucket 17
        let snap = hist.snapshot();
        assert_eq!(snap.quantile_ns(0.5), 128);
        assert_eq!(snap.quantile_ns(0.99), 128);
        assert_eq!(snap.quantile_ns(1.0), 1 << 17);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min_ns, 0);
        assert_eq!(snap.max_ns, 0);
        assert_eq!(snap.mean_ns(), 0);
        assert_eq!(snap.quantile_ns(0.5), 0);
    }
}
