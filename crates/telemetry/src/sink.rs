//! Pluggable snapshot exporters.

use crate::TelemetrySnapshot;
use std::sync::Mutex;

/// A destination for telemetry snapshots.
///
/// Sinks are pulled, not pushed: the pipeline never calls a sink from the
/// hot path. [`Telemetry::publish`](crate::Telemetry::publish) takes one
/// snapshot and hands the same immutable value to every registered sink,
/// so an expensive exporter costs the caller of `publish`, never a check.
pub trait TelemetrySink: Send + Sync {
    /// Exports one snapshot.
    fn export(&self, snapshot: &TelemetrySnapshot);
}

/// A sink that keeps the most recent snapshot in memory, for tests and
/// for polling-style exporters that want the latest value on demand.
#[derive(Default)]
pub struct LastSnapshotSink {
    last: Mutex<Option<TelemetrySnapshot>>,
}

impl LastSnapshotSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        LastSnapshotSink::default()
    }

    /// The most recently published snapshot, if any.
    pub fn last(&self) -> Option<TelemetrySnapshot> {
        self.last.lock().expect("snapshot sink poisoned").clone()
    }
}

impl TelemetrySink for LastSnapshotSink {
    fn export(&self, snapshot: &TelemetrySnapshot) {
        *self.last.lock().expect("snapshot sink poisoned") = Some(snapshot.clone());
    }
}
