//! Pluggable snapshot exporters.

use crate::{AuditSnapshot, TelemetrySnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A destination for telemetry snapshots.
///
/// Sinks are pulled, not pushed: the pipeline never calls a sink from the
/// hot path. [`Telemetry::publish`](crate::Telemetry::publish) takes one
/// snapshot and hands the same immutable value to every registered sink,
/// so an expensive exporter costs the caller of `publish`, never a check.
pub trait TelemetrySink: Send + Sync {
    /// Exports one snapshot.
    fn export(&self, snapshot: &TelemetrySnapshot);
}

/// A sink that keeps the most recent snapshot in memory, for tests and
/// for polling-style exporters that want the latest value on demand.
#[derive(Default)]
pub struct LastSnapshotSink {
    last: Mutex<Option<TelemetrySnapshot>>,
}

impl LastSnapshotSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        LastSnapshotSink::default()
    }

    /// The most recently published snapshot, if any.
    pub fn last(&self) -> Option<TelemetrySnapshot> {
        self.last.lock().expect("snapshot sink poisoned").clone()
    }
}

impl TelemetrySink for LastSnapshotSink {
    fn export(&self, snapshot: &TelemetrySnapshot) {
        *self.last.lock().expect("snapshot sink poisoned") = Some(snapshot.clone());
    }
}

/// One stage's distribution, flattened to the summary statistics worth
/// shipping off-process (full bucket arrays stay in-memory).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonStage {
    /// The stage's short name (see [`Stage::name`](crate::Stage::name)).
    pub stage: String,
    /// How many times the stage fired.
    pub count: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: u64,
    /// Median latency in nanoseconds (log₂-bucket resolution).
    pub p50_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// The largest observed sample in nanoseconds.
    pub max_ns: u64,
}

/// A [`TelemetrySnapshot`] reshaped for JSON: stages are summarized and
/// the per-mode/service/dispatch counters become name-keyed maps, so the
/// document stands on its own without the enum orderings.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonSnapshot {
    /// Whether collection was enabled at snapshot time.
    pub enabled: bool,
    /// Total checks observed.
    pub checks: u64,
    /// Monitor views opened.
    pub views: u64,
    /// Operations performed through views.
    pub view_ops: u64,
    /// Per-stage latency summaries, in [`Stage::ALL`](crate::Stage::ALL)
    /// order.
    pub stages: Vec<JsonStage>,
    /// Checks per access mode, keyed by mode name.
    pub modes: BTreeMap<String, u64>,
    /// Operations per service, keyed by service name.
    pub services: BTreeMap<String, u64>,
    /// Dispatch routings per outcome, keyed by outcome name.
    pub dispatch: BTreeMap<String, u64>,
    /// Extension faults recorded by the health ledger, keyed by fault
    /// class name.
    pub ext_faults: BTreeMap<String, u64>,
    /// Circuit-breaker trips (extensions entering quarantine).
    pub quarantines: u64,
    /// Dispatches refused because the extension was quarantined.
    pub quarantine_denials: u64,
    /// Probation (half-open) trial dispatches.
    pub probation_trials: u64,
    /// Probation trials that re-admitted the extension.
    pub probation_readmits: u64,
    /// Checks dual-evaluated against a shadowed policy bundle.
    pub shadow_checks: u64,
    /// Shadow-mode would-be flips from allow to deny.
    pub shadow_allow_to_deny: u64,
    /// Shadow-mode would-be flips from deny to allow.
    pub shadow_deny_to_allow: u64,
    /// Audit-chain health (ring, sink, persistent pipeline), when the
    /// hub has an audit source registered.
    pub audit: Option<AuditSnapshot>,
}

impl From<&TelemetrySnapshot> for JsonSnapshot {
    fn from(snapshot: &TelemetrySnapshot) -> Self {
        JsonSnapshot {
            enabled: snapshot.enabled,
            checks: snapshot.checks(),
            views: snapshot.views,
            view_ops: snapshot.view_ops,
            stages: snapshot
                .stages
                .iter()
                .map(|s| JsonStage {
                    stage: s.stage.name().to_string(),
                    count: s.hist.count,
                    mean_ns: s.hist.mean_ns(),
                    p50_ns: s.hist.quantile_ns(0.5),
                    p99_ns: s.hist.quantile_ns(0.99),
                    max_ns: s.hist.max_ns,
                })
                .collect(),
            modes: snapshot
                .modes
                .iter()
                .map(|(m, n)| (m.to_string(), *n))
                .collect(),
            services: snapshot
                .services
                .iter()
                .map(|(s, n)| (s.name().to_string(), *n))
                .collect(),
            dispatch: snapshot
                .dispatch
                .iter()
                .map(|(d, n)| (d.name().to_string(), *n))
                .collect(),
            ext_faults: snapshot
                .ext_faults
                .iter()
                .map(|(fault, n)| (fault.name().to_string(), *n))
                .collect(),
            quarantines: snapshot.quarantines,
            quarantine_denials: snapshot.quarantine_denials,
            probation_trials: snapshot.probation_trials,
            probation_readmits: snapshot.probation_readmits,
            shadow_checks: snapshot.shadow_checks,
            shadow_allow_to_deny: snapshot.shadow_allow_to_deny,
            shadow_deny_to_allow: snapshot.shadow_deny_to_allow,
            audit: snapshot.audit.clone(),
        }
    }
}

/// A sink rendering every published snapshot to a JSON document — the
/// bridge between the in-process pull path and anything file- or
/// wire-shaped (the server's snapshot opcode ships exactly this form).
#[derive(Default)]
pub struct JsonSink {
    last: Mutex<Option<String>>,
}

impl JsonSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        JsonSink::default()
    }

    /// The most recently exported JSON document, if any.
    pub fn last_json(&self) -> Option<String> {
        self.last.lock().expect("json sink poisoned").clone()
    }
}

impl TelemetrySink for JsonSink {
    fn export(&self, snapshot: &TelemetrySnapshot) {
        let json = serde_json::to_string(&JsonSnapshot::from(snapshot))
            .expect("telemetry snapshots always serialize");
        *self.last.lock().expect("json sink poisoned") = Some(json);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DispatchOutcome, ServiceKind, Stage, Telemetry};
    use extsec_acl::AccessMode;
    use std::sync::Arc;
    use std::time::Duration;

    /// The JSON document round-trips (`to_string` → `from_str` is the
    /// identity on [`JsonSnapshot`]) and carries the hub's counts.
    #[test]
    fn json_round_trips() {
        let tele = Telemetry::new();
        tele.set_enabled(true);
        tele.record(Stage::Check, Duration::from_nanos(900));
        tele.record(Stage::Acl, Duration::from_nanos(120));
        tele.count_mode(AccessMode::Execute);
        tele.count_service(ServiceKind::Fs);
        tele.count_dispatch(DispatchOutcome::Base);
        let shaped = JsonSnapshot::from(&tele.snapshot());
        let json = serde_json::to_string(&shaped).unwrap();
        let parsed: JsonSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, shaped);
        assert_eq!(parsed.checks, 1);
        assert_eq!(parsed.modes["execute"], 1);
        assert_eq!(parsed.services["fs"], 1);
        assert_eq!(parsed.dispatch["base"], 1);
    }

    #[test]
    fn sink_exports_on_publish() {
        let tele = Telemetry::new();
        tele.set_enabled(true);
        let sink = Arc::new(JsonSink::new());
        tele.add_sink(sink.clone());
        assert_eq!(sink.last_json(), None);
        tele.record(Stage::Check, Duration::from_nanos(64));
        tele.publish();
        let json = sink.last_json().expect("publish reached the sink");
        let parsed: JsonSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.checks, 1);
        assert!(parsed.enabled);
    }
}
