//! Immutable telemetry snapshots and their prose rendering.

use crate::histogram::HistogramSnapshot;
use crate::{DispatchOutcome, ExtFault, ServiceKind, Stage};
use extsec_acl::AccessMode;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Audit-chain health at snapshot time: the in-memory ring, the optional
/// channel sink, and the persistent pipeline (when attached). Produced by
/// the audit source a monitor registers with
/// [`Telemetry::set_audit_source`](crate::Telemetry::set_audit_source);
/// the telemetry crate itself stays decoupled from the audit types.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditSnapshot {
    /// The ring's configured capacity.
    pub ring_capacity: u64,
    /// Events currently retained in the ring.
    pub ring_retained: u64,
    /// Events evicted from the ring to stay under capacity.
    pub ring_dropped: u64,
    /// Channel-sink refusals due to backpressure (consumer lagging).
    pub sink_full: u64,
    /// Channel-sink refusals due to a dead consumer.
    pub sink_disconnected: u64,
    /// Whether a persistent audit pipeline is attached.
    pub pipeline_attached: bool,
    /// Events accepted onto the pipeline queue.
    pub pipeline_enqueued: u64,
    /// Events shed at the pipeline queue (later declared as gaps).
    pub pipeline_shed: u64,
    /// Stragglers dropped after their loss was already declared.
    pub pipeline_late_dropped: u64,
    /// Event entries persisted into chained segments.
    pub pipeline_persisted: u64,
    /// Gap entries persisted.
    pub pipeline_gap_records: u64,
    /// Total sequence numbers covered by persisted gaps.
    pub pipeline_gap_missing: u64,
    /// Segments sealed into the manifest.
    pub pipeline_segments_sealed: u64,
    /// Store I/O failures observed by the drainer.
    pub pipeline_io_errors: u64,
    /// Events currently queued or reorder-buffered.
    pub pipeline_queue_depth: u64,
    /// The next sequence number the pipeline expects.
    pub pipeline_next_seq: u64,
}

/// One stage's distribution at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Which pipeline stage this is.
    pub stage: Stage,
    /// The stage's latency distribution; `hist.count` is how many times
    /// the stage fired.
    pub hist: HistogramSnapshot,
}

/// An immutable, internally consistent view of every telemetry counter
/// and histogram, exported alongside
/// `cache_stats()`/`audit_stats()`. Taking a snapshot never blocks the
/// pipeline; all counters are monotone, so fields from two successive
/// snapshots of the same [`Telemetry`](crate::Telemetry) never decrease.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySnapshot {
    /// Whether collection was enabled when the snapshot was taken.
    pub enabled: bool,
    /// Per-stage latency distributions, in [`Stage::ALL`] order.
    pub stages: Vec<StageSnapshot>,
    /// Checks seen per access mode, in [`AccessMode::ALL`] order.
    pub modes: Vec<(AccessMode, u64)>,
    /// Operations seen per service, in [`ServiceKind::ALL`] order.
    pub services: Vec<(ServiceKind, u64)>,
    /// Call routings per outcome, in [`DispatchOutcome::ALL`] order.
    pub dispatch: Vec<(DispatchOutcome, u64)>,
    /// Extension faults recorded by the health ledger, in
    /// [`ExtFault::ALL`] order.
    pub ext_faults: Vec<(ExtFault, u64)>,
    /// Circuit-breaker trips (extensions entering quarantine).
    pub quarantines: u64,
    /// Dispatches refused because the extension was quarantined.
    pub quarantine_denials: u64,
    /// Probation (half-open) trial dispatches.
    pub probation_trials: u64,
    /// Probation trials that succeeded and re-admitted the extension.
    pub probation_readmits: u64,
    /// Monitor views (pinned snapshots) opened.
    pub views: u64,
    /// Operations performed through a view (one pin, many steps).
    pub view_ops: u64,
    /// Checks dual-evaluated against a shadowed policy bundle.
    pub shadow_checks: u64,
    /// Shadow-mode would-be flips from allow to deny.
    pub shadow_allow_to_deny: u64,
    /// Shadow-mode would-be flips from deny to allow.
    pub shadow_deny_to_allow: u64,
    /// Audit-chain health, when the hub has an audit source registered
    /// (the monitor registers one at construction).
    pub audit: Option<AuditSnapshot>,
}

impl TelemetrySnapshot {
    /// The distribution of one stage.
    pub fn stage(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage as usize].hist
    }

    /// Checks seen for one access mode.
    pub fn mode(&self, mode: AccessMode) -> u64 {
        self.modes[mode as usize].1
    }

    /// Operations seen by one service.
    pub fn service(&self, kind: ServiceKind) -> u64 {
        self.services[kind as usize].1
    }

    /// Call routings with one outcome.
    pub fn dispatch(&self, outcome: DispatchOutcome) -> u64 {
        self.dispatch[outcome as usize].1
    }

    /// Extension faults recorded for one class.
    pub fn ext_fault(&self, fault: ExtFault) -> u64 {
        self.ext_faults[fault as usize].1
    }

    /// Total checks observed (the `Check` stage count).
    pub fn checks(&self) -> u64 {
        self.stage(Stage::Check).count
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "telemetry ({}): {} checks, {} views ({} ops through views)",
            if self.enabled { "enabled" } else { "disabled" },
            self.checks(),
            self.views,
            self.view_ops,
        )?;
        writeln!(f, "  stage timings (count, mean, p50, p99, max):")?;
        for s in &self.stages {
            if s.hist.count == 0 {
                continue;
            }
            writeln!(
                f,
                "    {:<10} {:>10} x {:>8} mean, {:>8} p50, {:>8} p99, {:>8} max",
                s.stage.name(),
                s.hist.count,
                fmt_ns(s.hist.mean_ns()),
                fmt_ns(s.hist.quantile_ns(0.5)),
                fmt_ns(s.hist.quantile_ns(0.99)),
                fmt_ns(s.hist.max_ns),
            )?;
        }
        let modes: Vec<String> = self
            .modes
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(m, n)| format!("{m}: {n}"))
            .collect();
        if !modes.is_empty() {
            writeln!(f, "  checks by mode: {}", modes.join(", "))?;
        }
        let services: Vec<String> = self
            .services
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(s, n)| format!("{}: {n}", s.name()))
            .collect();
        if !services.is_empty() {
            writeln!(f, "  service operations: {}", services.join(", "))?;
        }
        let dispatch: Vec<String> = self
            .dispatch
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(d, n)| format!("{}: {n}", d.name()))
            .collect();
        if !dispatch.is_empty() {
            writeln!(f, "  call dispatch: {}", dispatch.join(", "))?;
        }
        let faults: Vec<String> = self
            .ext_faults
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(fault, n)| format!("{}: {n}", fault.name()))
            .collect();
        if !faults.is_empty() {
            writeln!(f, "  extension faults: {}", faults.join(", "))?;
        }
        if self.quarantines > 0 || self.quarantine_denials > 0 {
            writeln!(
                f,
                "  quarantine: {} trips, {} denials, {} trials ({} re-admitted)",
                self.quarantines,
                self.quarantine_denials,
                self.probation_trials,
                self.probation_readmits,
            )?;
        }
        if self.shadow_checks > 0 {
            writeln!(
                f,
                "  shadow: {} dual-evaluated, {} allow→deny, {} deny→allow",
                self.shadow_checks, self.shadow_allow_to_deny, self.shadow_deny_to_allow,
            )?;
        }
        if let Some(audit) = &self.audit {
            writeln!(
                f,
                "  audit ring: {}/{} retained, {} evicted, sink {} full / {} disconnected",
                audit.ring_retained,
                audit.ring_capacity,
                audit.ring_dropped,
                audit.sink_full,
                audit.sink_disconnected,
            )?;
            if audit.pipeline_attached {
                writeln!(
                    f,
                    "  audit pipeline: {} enqueued, {} shed, {} persisted \
                     (+{} gap entries covering {} seqs), {} sealed, {} queued, next seq {}",
                    audit.pipeline_enqueued,
                    audit.pipeline_shed,
                    audit.pipeline_persisted,
                    audit.pipeline_gap_records,
                    audit.pipeline_gap_missing,
                    audit.pipeline_segments_sealed,
                    audit.pipeline_queue_depth,
                    audit.pipeline_next_seq,
                )?;
                if audit.pipeline_io_errors > 0 {
                    writeln!(
                        f,
                        "  audit pipeline IO ERRORS: {}",
                        audit.pipeline_io_errors
                    )?;
                }
            }
        }
        Ok(())
    }
}
