//! The applet/thread registry — the *ThreadMurder* surface.
//!
//! The paper (§1.2) recounts McGraw & Felten's ThreadMurder applet, which
//! "kills the threads of all other applets that are running in the same
//! sandbox": the Java sandbox isolated applets from the *system* but not
//! from *each other*. This service reproduces the attack surface: applets
//! register logical threads, and a `kill` operation terminates a thread by
//! name.
//!
//! Under the extsec model every registered thread is a protected object at
//! `/obj/threads/<name>` — killing requires the `delete` mode on that
//! node, which only the owner (or an administrator grant) holds, and the
//! mandatory category separation keeps applets from even *seeing* each
//! other's threads when their classes are incomparable. The T1 attack
//! matrix drives exactly this code path.
//!
//! Operations (mounted at `/svc/threads`): `spawn(name) -> ()`,
//! `kill(name)`, `list() -> names`, `alive(name) -> bool`, `count() ->
//! int`.

use crate::install::{self, visible_container};
use extsec_ext::{CallCtx, Service, ServiceError};
use extsec_namespace::{NodeKind, NsPath, Protection};
use extsec_refmon::{MonitorError, ReferenceMonitor, ServiceKind, Subject, ThreadId};
use extsec_vm::Value;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// The name-space root of thread objects.
pub const THREADS_ROOT: &str = "/obj/threads";
/// The service mount prefix.
pub const THREADS_SERVICE: &str = "/svc/threads";

/// One registered applet thread.
#[derive(Clone, Debug)]
pub struct AppletThread {
    /// The logical thread.
    pub thread: ThreadId,
    /// The owning principal.
    pub owner: extsec_acl::PrincipalId,
    /// Whether the thread is still running.
    pub alive: bool,
}

/// The applet/thread registry service.
pub struct AppletService {
    threads: RwLock<BTreeMap<String, AppletThread>>,
}

impl AppletService {
    /// Creates an empty registry.
    pub fn new() -> Self {
        AppletService {
            threads: RwLock::new(BTreeMap::new()),
        }
    }

    /// Installs the service's procedure nodes and the `/obj/threads`
    /// container.
    pub fn install(
        monitor: &ReferenceMonitor,
        op_protection: impl Fn(&str) -> Protection,
    ) -> Result<(), MonitorError> {
        let prefix: NsPath = THREADS_SERVICE.parse().expect("constant path");
        let ops = ["spawn", "kill", "list", "alive", "count"];
        let procs: Vec<(&str, Protection)> =
            ops.iter().map(|op| (*op, op_protection(op))).collect();
        install::install_procedures(monitor, &prefix, &procs)?;
        monitor.bootstrap(|ns| {
            let root: NsPath = THREADS_ROOT.parse().expect("constant path");
            let mut prot = visible_container();
            // Anyone may register (append) a thread; killing is governed
            // by the per-thread node.
            prot.acl.push(extsec_acl::AclEntry::allow_everyone(
                extsec_acl::ModeSet::only(extsec_acl::AccessMode::WriteAppend),
            ));
            ns.ensure_path(&root, NodeKind::Directory, &prot)?;
            Ok(())
        })
    }

    /// Installs with every operation publicly executable.
    pub fn install_public(monitor: &ReferenceMonitor) -> Result<(), MonitorError> {
        Self::install(monitor, |_| install::public_procedure())
    }

    fn node_path(name: &str) -> Result<NsPath, ServiceError> {
        let root: NsPath = THREADS_ROOT.parse().expect("constant path");
        root.join(name)
            .map_err(|e| ServiceError::BadArgs(format!("bad thread name: {e}")))
    }

    /// Registers a thread named `name` owned by `subject`.
    ///
    /// The registry is a *trusted subject* in the MLS sense: `/obj/threads`
    /// holds entries at every label, so inserting the node bypasses the
    /// container's flow check (which would otherwise forbid any non-bottom
    /// subject from registering). The node itself still carries the
    /// creator's ACL and label, so killing and listing stay fully
    /// mediated.
    pub fn spawn(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        name: &str,
    ) -> Result<ThreadId, ServiceError> {
        let root: NsPath = THREADS_ROOT.parse().expect("constant path");
        let _ = Self::node_path(name)?; // validate the name
        monitor
            .bootstrap(|ns| {
                let parent = ns.resolve(&root)?;
                ns.insert_at(
                    parent,
                    name,
                    NodeKind::Object,
                    install::creator_protection(subject),
                )?;
                Ok(())
            })
            .map_err(|e| match e {
                MonitorError::Ns(extsec_namespace::NsError::AlreadyExists(p)) => {
                    ServiceError::Failed(format!("{p}: already exists"))
                }
                other => ServiceError::from(other),
            })?;
        let thread = ThreadId::fresh();
        self.threads.write().insert(
            name.to_string(),
            AppletThread {
                thread,
                owner: subject.principal,
                alive: true,
            },
        );
        Ok(thread)
    }

    /// Kills the thread named `name`; requires `delete` on its node
    /// (creator-held by default). The killed thread's node is removed.
    pub fn kill(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        name: &str,
    ) -> Result<(), ServiceError> {
        let path = Self::node_path(name)?;
        monitor.remove(subject, &path)?;
        match self.threads.write().get_mut(name) {
            Some(t) => {
                t.alive = false;
                Ok(())
            }
            None => Err(ServiceError::NotFound(format!("thread {name:?}"))),
        }
    }

    /// Lists the thread names visible to `subject` (per-node read
    /// filtering: only threads whose node the subject could observe).
    pub fn list(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
    ) -> Result<Vec<String>, ServiceError> {
        let root: NsPath = THREADS_ROOT.parse().expect("constant path");
        // One pinned snapshot for the list and the per-node filter, so
        // concurrent administration cannot make the filter disagree with
        // the listing it filters.
        let view = monitor.view();
        let names = view.list(subject, &root)?;
        Ok(names
            .into_iter()
            .filter(|name| {
                Self::node_path(name)
                    .map(|path| {
                        view.check(subject, &path, extsec_acl::AccessMode::Read)
                            .allowed()
                    })
                    .unwrap_or(false)
            })
            .collect())
    }

    /// Returns whether the named thread is alive (owner-visible check is
    /// the caller's responsibility; this is registry state).
    pub fn alive(&self, name: &str) -> Option<bool> {
        self.threads.read().get(name).map(|t| t.alive)
    }

    /// Returns the number of live threads.
    pub fn live_count(&self) -> usize {
        self.threads.read().values().filter(|t| t.alive).count()
    }
}

impl Default for AppletService {
    fn default() -> Self {
        AppletService::new()
    }
}

impl Service for AppletService {
    fn name(&self) -> &str {
        "threads"
    }

    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        op: &str,
        args: &[Value],
    ) -> Result<Option<Value>, ServiceError> {
        ctx.monitor.telemetry().count_service(ServiceKind::Applets);
        if let Some(fault) = extsec_faults::fire("svc.applets") {
            return Err(ServiceError::Failed(fault.to_string()));
        }
        let arg = |i: usize| -> Result<&str, ServiceError> {
            args.get(i)
                .and_then(Value::as_str)
                .ok_or_else(|| ServiceError::BadArgs(format!("argument {i} must be a string")))
        };
        match op {
            "spawn" => {
                self.spawn(ctx.monitor, ctx.subject, arg(0)?)?;
                Ok(None)
            }
            "kill" => {
                self.kill(ctx.monitor, ctx.subject, arg(0)?)?;
                Ok(None)
            }
            "list" => {
                let names = self.list(ctx.monitor, ctx.subject)?;
                Ok(Some(Value::Str(names.join("\n"))))
            }
            "alive" => {
                let name = arg(0)?;
                let alive = self
                    .alive(name)
                    .ok_or_else(|| ServiceError::NotFound(format!("thread {name:?}")))?;
                Ok(Some(Value::Bool(alive)))
            }
            "count" => Ok(Some(Value::Int(self.live_count() as i64))),
            other => Err(ServiceError::NoSuchOperation(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extsec_acl::PrincipalId;
    use extsec_mac::{Lattice, SecurityClass};
    use extsec_refmon::{DenyReason, MonitorBuilder};
    use std::sync::Arc;

    struct Fx {
        monitor: Arc<ReferenceMonitor>,
        svc: AppletService,
        alice: PrincipalId,
        bob: PrincipalId,
    }

    fn fixture() -> Fx {
        let lattice = Lattice::build(["low"], ["d1", "d2"]).unwrap();
        let mut builder = MonitorBuilder::new(lattice);
        let alice = builder.add_principal("alice").unwrap();
        let bob = builder.add_principal("bob").unwrap();
        let monitor = builder.build();
        AppletService::install_public(&monitor).unwrap();
        Fx {
            monitor,
            svc: AppletService::new(),
            alice,
            bob,
        }
    }

    #[test]
    fn spawn_and_kill_own_thread() {
        let fx = fixture();
        let alice = Subject::new(fx.alice, SecurityClass::bottom());
        fx.svc.spawn(&fx.monitor, &alice, "worker").unwrap();
        assert_eq!(fx.svc.alive("worker"), Some(true));
        assert_eq!(fx.svc.live_count(), 1);
        fx.svc.kill(&fx.monitor, &alice, "worker").unwrap();
        assert_eq!(fx.svc.alive("worker"), Some(false));
        assert_eq!(fx.svc.live_count(), 0);
    }

    #[test]
    fn threadmurder_is_blocked() {
        let fx = fixture();
        let alice = Subject::new(fx.alice, SecurityClass::bottom());
        let bob = Subject::new(fx.bob, SecurityClass::bottom());
        fx.svc.spawn(&fx.monitor, &alice, "victim").unwrap();
        // Bob (the murderer) cannot delete alice's thread node.
        let e = fx.svc.kill(&fx.monitor, &bob, "victim").unwrap_err();
        assert_eq!(e, ServiceError::Denied(DenyReason::DacNoEntry));
        assert_eq!(fx.svc.alive("victim"), Some(true));
    }

    #[test]
    fn category_separation_hides_threads() {
        let fx = fixture();
        let d1 = fx.monitor.lattice(|l| l.parse_class("low:{d1}").unwrap());
        let d2 = fx.monitor.lattice(|l| l.parse_class("low:{d2}").unwrap());
        let alice = Subject::new(fx.alice, d1);
        let bob = Subject::new(fx.bob, d2);
        fx.svc.spawn(&fx.monitor, &alice, "a-thread").unwrap();
        fx.svc.spawn(&fx.monitor, &bob, "b-thread").unwrap();
        // Each sees only its own thread: the other's node label is
        // incomparable, so read is denied and list filters it out.
        assert_eq!(fx.svc.list(&fx.monitor, &alice).unwrap(), vec!["a-thread"]);
        assert_eq!(fx.svc.list(&fx.monitor, &bob).unwrap(), vec!["b-thread"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let fx = fixture();
        let alice = Subject::new(fx.alice, SecurityClass::bottom());
        fx.svc.spawn(&fx.monitor, &alice, "t").unwrap();
        let e = fx.svc.spawn(&fx.monitor, &alice, "t").unwrap_err();
        assert!(matches!(e, ServiceError::Failed(_)), "got {e:?}");
    }

    #[test]
    fn bad_names_rejected() {
        let fx = fixture();
        let alice = Subject::new(fx.alice, SecurityClass::bottom());
        assert!(fx.svc.spawn(&fx.monitor, &alice, "a/b").is_err());
        assert!(fx.svc.spawn(&fx.monitor, &alice, "").is_err());
    }

    #[test]
    fn kill_missing_thread() {
        let fx = fixture();
        let alice = Subject::new(fx.alice, SecurityClass::bottom());
        let e = fx.svc.kill(&fx.monitor, &alice, "ghost").unwrap_err();
        assert!(matches!(e, ServiceError::Denied(DenyReason::NotFound(_))));
    }
}
