//! The mbuf (message buffer) pool service.
//!
//! The paper's §1.1 example has a new file system "use existing services
//! (such as mbuf management) and build on them". This is that service: a
//! pool of byte buffers with integer handles, per-principal ownership and
//! quotas. Buffers are kernel-internal resources rather than named
//! objects, so ownership is enforced by the service itself (a TCB
//! component); reaching the service's *procedures* is what the monitor
//! guards.
//!
//! Operations (mounted at `/svc/mbuf`): `alloc(size) -> handle`,
//! `write(handle, data)`, `append(handle, data)`, `read(handle) -> data`,
//! `free(handle)`, `usage() -> bytes`.

use crate::install;
use bytes::BytesMut;
use extsec_acl::PrincipalId;
use extsec_ext::{CallCtx, Service, ServiceError};
use extsec_namespace::{NsPath, Protection};
use extsec_refmon::{MonitorError, ReferenceMonitor, ServiceKind};
use extsec_vm::Value;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// The service mount prefix.
pub const MBUF_SERVICE: &str = "/svc/mbuf";

/// Default per-principal quota in bytes.
pub const DEFAULT_QUOTA: usize = 64 * 1024;

struct Buffer {
    owner: PrincipalId,
    data: BytesMut,
    capacity: usize,
}

struct PoolState {
    buffers: BTreeMap<i64, Buffer>,
    usage: BTreeMap<PrincipalId, usize>,
    next_handle: i64,
}

/// The mbuf pool service.
pub struct MbufService {
    state: Mutex<PoolState>,
    quota: usize,
}

impl MbufService {
    /// Creates a pool with the default quota.
    pub fn new() -> Self {
        Self::with_quota(DEFAULT_QUOTA)
    }

    /// Creates a pool with a per-principal byte quota.
    pub fn with_quota(quota: usize) -> Self {
        MbufService {
            state: Mutex::new(PoolState {
                buffers: BTreeMap::new(),
                usage: BTreeMap::new(),
                next_handle: 1,
            }),
            quota,
        }
    }

    /// Installs the service's procedure nodes.
    pub fn install(
        monitor: &ReferenceMonitor,
        op_protection: impl Fn(&str) -> Protection,
    ) -> Result<(), MonitorError> {
        let prefix: NsPath = MBUF_SERVICE.parse().expect("constant path");
        let ops = ["alloc", "write", "append", "read", "free", "usage"];
        let procs: Vec<(&str, Protection)> =
            ops.iter().map(|op| (*op, op_protection(op))).collect();
        install::install_procedures(monitor, &prefix, &procs)
    }

    /// Installs with every operation publicly executable.
    pub fn install_public(monitor: &ReferenceMonitor) -> Result<(), MonitorError> {
        Self::install(monitor, |_| install::public_procedure())
    }

    /// Allocates a buffer of `size` bytes for `owner`.
    pub fn alloc(&self, owner: PrincipalId, size: usize) -> Result<i64, ServiceError> {
        let mut state = self.state.lock();
        let used = state.usage.get(&owner).copied().unwrap_or(0);
        if used + size > self.quota {
            return Err(ServiceError::Failed(format!(
                "quota exceeded: {used} + {size} > {}",
                self.quota
            )));
        }
        let handle = state.next_handle;
        state.next_handle += 1;
        state.buffers.insert(
            handle,
            Buffer {
                owner,
                data: BytesMut::with_capacity(size),
                capacity: size,
            },
        );
        *state.usage.entry(owner).or_insert(0) += size;
        Ok(handle)
    }

    /// Frees a buffer; only the owner may free it.
    pub fn free(&self, owner: PrincipalId, handle: i64) -> Result<(), ServiceError> {
        let mut state = self.state.lock();
        let Some(buffer) = state.buffers.get(&handle) else {
            return Err(ServiceError::NotFound(format!("mbuf {handle}")));
        };
        if buffer.owner != owner {
            return Err(ServiceError::Failed("not the buffer owner".into()));
        }
        let capacity = buffer.capacity;
        state.buffers.remove(&handle);
        if let Some(used) = state.usage.get_mut(&owner) {
            *used = used.saturating_sub(capacity);
        }
        Ok(())
    }

    /// Overwrites a buffer's contents; only the owner may write.
    pub fn write(&self, owner: PrincipalId, handle: i64, data: &[u8]) -> Result<(), ServiceError> {
        let mut state = self.state.lock();
        let Some(buffer) = state.buffers.get_mut(&handle) else {
            return Err(ServiceError::NotFound(format!("mbuf {handle}")));
        };
        if buffer.owner != owner {
            return Err(ServiceError::Failed("not the buffer owner".into()));
        }
        if data.len() > buffer.capacity {
            return Err(ServiceError::Failed(format!(
                "buffer overflow: {} > {}",
                data.len(),
                buffer.capacity
            )));
        }
        buffer.data.clear();
        buffer.data.extend_from_slice(data);
        Ok(())
    }

    /// Appends to a buffer; only the owner may append.
    pub fn append(&self, owner: PrincipalId, handle: i64, data: &[u8]) -> Result<(), ServiceError> {
        let mut state = self.state.lock();
        let Some(buffer) = state.buffers.get_mut(&handle) else {
            return Err(ServiceError::NotFound(format!("mbuf {handle}")));
        };
        if buffer.owner != owner {
            return Err(ServiceError::Failed("not the buffer owner".into()));
        }
        if buffer.data.len() + data.len() > buffer.capacity {
            return Err(ServiceError::Failed(format!(
                "buffer overflow: {} + {} > {}",
                buffer.data.len(),
                data.len(),
                buffer.capacity
            )));
        }
        buffer.data.extend_from_slice(data);
        Ok(())
    }

    /// Reads a buffer; only the owner may read.
    pub fn read(&self, owner: PrincipalId, handle: i64) -> Result<Vec<u8>, ServiceError> {
        let state = self.state.lock();
        let Some(buffer) = state.buffers.get(&handle) else {
            return Err(ServiceError::NotFound(format!("mbuf {handle}")));
        };
        if buffer.owner != owner {
            return Err(ServiceError::Failed("not the buffer owner".into()));
        }
        Ok(buffer.data.to_vec())
    }

    /// Returns the bytes currently reserved by `owner`.
    pub fn usage(&self, owner: PrincipalId) -> usize {
        self.state.lock().usage.get(&owner).copied().unwrap_or(0)
    }

    fn arg_int(args: &[Value], i: usize) -> Result<i64, ServiceError> {
        args.get(i)
            .and_then(Value::as_int)
            .ok_or_else(|| ServiceError::BadArgs(format!("argument {i} must be an int")))
    }

    fn arg_str(args: &[Value], i: usize) -> Result<&str, ServiceError> {
        args.get(i)
            .and_then(Value::as_str)
            .ok_or_else(|| ServiceError::BadArgs(format!("argument {i} must be a string")))
    }
}

impl Default for MbufService {
    fn default() -> Self {
        MbufService::new()
    }
}

impl Service for MbufService {
    fn name(&self) -> &str {
        "mbuf"
    }

    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        op: &str,
        args: &[Value],
    ) -> Result<Option<Value>, ServiceError> {
        ctx.monitor.telemetry().count_service(ServiceKind::Mbuf);
        if let Some(fault) = extsec_faults::fire("svc.mbuf") {
            return Err(ServiceError::Failed(fault.to_string()));
        }
        let who = ctx.subject.principal;
        match op {
            "alloc" => {
                let size = Self::arg_int(args, 0)?;
                if size < 0 {
                    return Err(ServiceError::BadArgs("size must be non-negative".into()));
                }
                let handle = self.alloc(who, size as usize)?;
                Ok(Some(Value::Int(handle)))
            }
            "write" => {
                let handle = Self::arg_int(args, 0)?;
                let data = Self::arg_str(args, 1)?;
                self.write(who, handle, data.as_bytes())?;
                Ok(None)
            }
            "append" => {
                let handle = Self::arg_int(args, 0)?;
                let data = Self::arg_str(args, 1)?;
                self.append(who, handle, data.as_bytes())?;
                Ok(None)
            }
            "read" => {
                let handle = Self::arg_int(args, 0)?;
                let data = self.read(who, handle)?;
                let text = String::from_utf8(data)
                    .map_err(|_| ServiceError::Failed("buffer is not valid UTF-8".into()))?;
                Ok(Some(Value::Str(text)))
            }
            "free" => {
                self.free(who, Self::arg_int(args, 0)?)?;
                Ok(None)
            }
            "usage" => Ok(Some(Value::Int(self.usage(who) as i64))),
            other => Err(ServiceError::NoSuchOperation(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(raw: u32) -> PrincipalId {
        PrincipalId::from_raw(raw)
    }

    #[test]
    fn alloc_write_read_free() {
        let pool = MbufService::with_quota(1024);
        let h = pool.alloc(p(1), 16).unwrap();
        pool.write(p(1), h, b"hello").unwrap();
        assert_eq!(pool.read(p(1), h).unwrap(), b"hello");
        pool.append(p(1), h, b" world").unwrap();
        assert_eq!(pool.read(p(1), h).unwrap(), b"hello world");
        assert_eq!(pool.usage(p(1)), 16);
        pool.free(p(1), h).unwrap();
        assert_eq!(pool.usage(p(1)), 0);
        assert!(matches!(pool.read(p(1), h), Err(ServiceError::NotFound(_))));
    }

    #[test]
    fn ownership_enforced() {
        let pool = MbufService::new();
        let h = pool.alloc(p(1), 16).unwrap();
        assert!(pool.write(p(2), h, b"x").is_err());
        assert!(pool.read(p(2), h).is_err());
        assert!(pool.free(p(2), h).is_err());
        // Owner still works.
        pool.write(p(1), h, b"x").unwrap();
    }

    #[test]
    fn quota_enforced_per_principal() {
        let pool = MbufService::with_quota(100);
        pool.alloc(p(1), 80).unwrap();
        assert!(pool.alloc(p(1), 40).is_err());
        // Another principal has its own quota.
        pool.alloc(p(2), 80).unwrap();
        // Freeing restores headroom.
    }

    #[test]
    fn capacity_enforced() {
        let pool = MbufService::new();
        let h = pool.alloc(p(1), 4).unwrap();
        assert!(pool.write(p(1), h, b"too long").is_err());
        pool.write(p(1), h, b"1234").unwrap();
        assert!(pool.append(p(1), h, b"5").is_err());
    }

    #[test]
    fn free_restores_quota() {
        let pool = MbufService::with_quota(100);
        let h = pool.alloc(p(1), 100).unwrap();
        assert!(pool.alloc(p(1), 1).is_err());
        pool.free(p(1), h).unwrap();
        pool.alloc(p(1), 100).unwrap();
    }
}
