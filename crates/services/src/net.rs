//! The loopback network service — labeled message ports.
//!
//! The paper's survey includes Inferno, extensibility "for distributed
//! services"; a network endpoint is just another named, labeled object.
//! This service provides in-process message ports registered under
//! `/obj/net/<name>`:
//!
//! * `send(port, msg)` requires `write-append` on the port node —
//!   sending is a blind append, so MAC allows sending *up* (a low
//!   process can feed a high port),
//! * `recv(port)` requires `read` — receiving observes, so only
//!   dominating subjects drain a port,
//! * together a port labeled above its writers is a **data diode**: the
//!   classic one-way channel the lattice model is built to provide, and
//!   a second end-to-end witness for the P3 flow property.
//!
//! Operations (mounted at `/svc/net`): `open(name)`, `send(name, msg)`,
//! `recv(name) -> msg`, `pending(name) -> int`, `close(name)`.

use crate::install::{self, visible_container};
use extsec_acl::AccessMode;
use extsec_ext::{CallCtx, Service, ServiceError};
use extsec_namespace::{NodeKind, NsPath, Protection};
use extsec_refmon::{MonitorError, ReferenceMonitor, ServiceKind, Subject};
use extsec_vm::Value;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};

/// The name-space root of port objects.
pub const NET_ROOT: &str = "/obj/net";
/// The service mount prefix.
pub const NET_SERVICE: &str = "/svc/net";
/// Maximum queued messages per port.
pub const MAX_QUEUE: usize = 1024;

/// The loopback network service.
pub struct NetService {
    queues: Mutex<BTreeMap<String, VecDeque<String>>>,
}

impl NetService {
    /// Creates a service with no ports.
    pub fn new() -> Self {
        NetService {
            queues: Mutex::new(BTreeMap::new()),
        }
    }

    /// Installs the service's procedure nodes and the `/obj/net` root.
    pub fn install(
        monitor: &ReferenceMonitor,
        op_protection: impl Fn(&str) -> Protection,
    ) -> Result<(), MonitorError> {
        let prefix: NsPath = NET_SERVICE.parse().expect("constant path");
        let ops = ["open", "send", "recv", "pending", "close"];
        let procs: Vec<(&str, Protection)> =
            ops.iter().map(|op| (*op, op_protection(op))).collect();
        install::install_procedures(monitor, &prefix, &procs)?;
        monitor.bootstrap(|ns| {
            ns.ensure_path(
                &NET_ROOT.parse().expect("constant path"),
                NodeKind::Directory,
                &visible_container(),
            )?;
            Ok(())
        })
    }

    /// Installs with every operation publicly executable.
    pub fn install_public(monitor: &ReferenceMonitor) -> Result<(), MonitorError> {
        Self::install(monitor, |_| install::public_procedure())
    }

    fn node_path(name: &str) -> Result<NsPath, ServiceError> {
        let root: NsPath = NET_ROOT.parse().expect("constant path");
        root.join(name)
            .map_err(|e| ServiceError::BadArgs(format!("bad port name: {e}")))
    }

    /// Opens a port owned (and labeled) by `subject`. Like the applet
    /// registry, the service is a trusted labeler: the port node carries
    /// the creator's class regardless of the container's label.
    pub fn open(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        name: &str,
    ) -> Result<(), ServiceError> {
        let _ = Self::node_path(name)?;
        let root: NsPath = NET_ROOT.parse().expect("constant path");
        monitor
            .bootstrap(|ns| {
                let parent = ns.resolve(&root)?;
                let mut prot = install::creator_protection(subject);
                // Ports are public send targets by default; receipt stays
                // creator-held. MAC still gates both directions.
                prot.acl.push(extsec_acl::AclEntry::allow_everyone(
                    extsec_acl::ModeSet::only(AccessMode::WriteAppend),
                ));
                ns.insert_at(parent, name, NodeKind::Object, prot)?;
                Ok(())
            })
            .map_err(|e| match e {
                MonitorError::Ns(extsec_namespace::NsError::AlreadyExists(p)) => {
                    ServiceError::Failed(format!("{p}: already exists"))
                }
                other => ServiceError::from(other),
            })?;
        self.queues.lock().insert(name.to_string(), VecDeque::new());
        Ok(())
    }

    /// Sends a message to `name`; requires `write-append` on the port.
    pub fn send(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        name: &str,
        msg: &str,
    ) -> Result<(), ServiceError> {
        let path = Self::node_path(name)?;
        monitor.require(subject, &path, AccessMode::WriteAppend)?;
        let mut queues = self.queues.lock();
        let queue = queues
            .get_mut(name)
            .ok_or_else(|| ServiceError::NotFound(format!("port {name:?}")))?;
        if queue.len() >= MAX_QUEUE {
            return Err(ServiceError::Failed(format!("port {name:?} is full")));
        }
        queue.push_back(msg.to_string());
        Ok(())
    }

    /// Receives the oldest message from `name`; requires `read`.
    pub fn recv(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        name: &str,
    ) -> Result<Option<String>, ServiceError> {
        let path = Self::node_path(name)?;
        monitor.require(subject, &path, AccessMode::Read)?;
        let mut queues = self.queues.lock();
        let queue = queues
            .get_mut(name)
            .ok_or_else(|| ServiceError::NotFound(format!("port {name:?}")))?;
        Ok(queue.pop_front())
    }

    /// Returns the number of queued messages; requires `read`.
    pub fn pending(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        name: &str,
    ) -> Result<usize, ServiceError> {
        let path = Self::node_path(name)?;
        monitor.require(subject, &path, AccessMode::Read)?;
        let queues = self.queues.lock();
        queues
            .get(name)
            .map(VecDeque::len)
            .ok_or_else(|| ServiceError::NotFound(format!("port {name:?}")))
    }

    /// Closes (deletes) a port; requires `delete` on the node.
    pub fn close(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        name: &str,
    ) -> Result<(), ServiceError> {
        let path = Self::node_path(name)?;
        monitor.remove(subject, &path)?;
        self.queues.lock().remove(name);
        Ok(())
    }
}

impl Default for NetService {
    fn default() -> Self {
        NetService::new()
    }
}

impl Service for NetService {
    fn name(&self) -> &str {
        "net"
    }

    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        op: &str,
        args: &[Value],
    ) -> Result<Option<Value>, ServiceError> {
        ctx.monitor.telemetry().count_service(ServiceKind::Net);
        if let Some(fault) = extsec_faults::fire("svc.net") {
            return Err(ServiceError::Failed(fault.to_string()));
        }
        let arg = |i: usize| -> Result<&str, ServiceError> {
            args.get(i)
                .and_then(Value::as_str)
                .ok_or_else(|| ServiceError::BadArgs(format!("argument {i} must be a string")))
        };
        match op {
            "open" => {
                self.open(ctx.monitor, ctx.subject, arg(0)?)?;
                Ok(None)
            }
            "send" => {
                self.send(ctx.monitor, ctx.subject, arg(0)?, arg(1)?)?;
                Ok(None)
            }
            "recv" => {
                let msg = self.recv(ctx.monitor, ctx.subject, arg(0)?)?;
                Ok(Some(Value::Str(msg.unwrap_or_default())))
            }
            "pending" => {
                let n = self.pending(ctx.monitor, ctx.subject, arg(0)?)?;
                Ok(Some(Value::Int(n as i64)))
            }
            "close" => {
                self.close(ctx.monitor, ctx.subject, arg(0)?)?;
                Ok(None)
            }
            other => Err(ServiceError::NoSuchOperation(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extsec_acl::PrincipalId;
    use extsec_mac::{Lattice, SecurityClass};
    use extsec_refmon::{DenyReason, MonitorBuilder};
    use std::sync::Arc;

    struct Fx {
        monitor: Arc<ReferenceMonitor>,
        net: NetService,
        low: Subject,
        high: Subject,
    }

    fn fixture() -> Fx {
        let lattice = Lattice::build(["low", "high"], ["k"]).unwrap();
        let mut builder = MonitorBuilder::new(lattice.clone());
        let l = builder.add_principal("lowproc").unwrap();
        let h = builder.add_principal("highproc").unwrap();
        let monitor = builder.build();
        NetService::install_public(&monitor).unwrap();
        Fx {
            monitor,
            net: NetService::new(),
            low: Subject::new(l, SecurityClass::bottom()),
            high: Subject::new(h, lattice.parse_class("high").unwrap()),
        }
    }

    #[test]
    fn open_send_recv_same_class() {
        let fx = fixture();
        fx.net.open(&fx.monitor, &fx.low, "chat").unwrap();
        fx.net.send(&fx.monitor, &fx.low, "chat", "hello").unwrap();
        fx.net.send(&fx.monitor, &fx.low, "chat", "world").unwrap();
        assert_eq!(fx.net.pending(&fx.monitor, &fx.low, "chat").unwrap(), 2);
        assert_eq!(
            fx.net.recv(&fx.monitor, &fx.low, "chat").unwrap(),
            Some("hello".to_string())
        );
        assert_eq!(
            fx.net.recv(&fx.monitor, &fx.low, "chat").unwrap(),
            Some("world".to_string())
        );
        assert_eq!(fx.net.recv(&fx.monitor, &fx.low, "chat").unwrap(), None);
    }

    #[test]
    fn diode_low_to_high() {
        // A high-owned port: low senders can feed it (append up) but can
        // never drain or even count it; the high owner reads.
        let fx = fixture();
        fx.net.open(&fx.monitor, &fx.high, "uplink").unwrap();
        fx.net
            .send(&fx.monitor, &fx.low, "uplink", "telemetry")
            .unwrap();
        // Low cannot receive or observe queue length (the creator-only
        // ACL already denies; see `diode_is_mandatory_not_just_acl` for
        // the pure-MAC witness).
        let e = fx.net.recv(&fx.monitor, &fx.low, "uplink").unwrap_err();
        assert!(matches!(e, ServiceError::Denied(_)));
        let e = fx.net.pending(&fx.monitor, &fx.low, "uplink").unwrap_err();
        assert!(matches!(e, ServiceError::Denied(_)));
        // High drains.
        assert_eq!(
            fx.net.recv(&fx.monitor, &fx.high, "uplink").unwrap(),
            Some("telemetry".to_string())
        );
    }

    #[test]
    fn diode_is_mandatory_not_just_acl() {
        // Even with a wide-open ACL, the label alone keeps low readers
        // out: the one-way property is mandatory, not discretionary.
        let fx = fixture();
        fx.net.open(&fx.monitor, &fx.high, "uplink").unwrap();
        let path = NetService::node_path("uplink").unwrap();
        fx.monitor
            .bootstrap(|ns| {
                let id = ns.resolve(&path)?;
                ns.update_protection(id, |prot| {
                    prot.acl.push(extsec_acl::AclEntry::allow_everyone(
                        extsec_acl::ModeSet::parse("rwa").unwrap(),
                    ));
                })?;
                Ok(())
            })
            .unwrap();
        fx.net.send(&fx.monitor, &fx.low, "uplink", "m").unwrap();
        let e = fx.net.recv(&fx.monitor, &fx.low, "uplink").unwrap_err();
        assert_eq!(e, ServiceError::Denied(DenyReason::MacFlow));
        assert_eq!(
            fx.net.recv(&fx.monitor, &fx.high, "uplink").unwrap(),
            Some("m".to_string())
        );
    }

    #[test]
    fn no_downlink() {
        // The reverse direction: a low-owned port cannot be *sent to* by
        // high (that would be a write-down) — the diode is one-way.
        let fx = fixture();
        fx.net.open(&fx.monitor, &fx.low, "downlink").unwrap();
        let e = fx
            .net
            .send(&fx.monitor, &fx.high, "downlink", "leak")
            .unwrap_err();
        assert_eq!(e, ServiceError::Denied(DenyReason::MacFlow));
        // Low-to-low still fine.
        fx.net.send(&fx.monitor, &fx.low, "downlink", "ok").unwrap();
    }

    #[test]
    fn close_requires_delete() {
        let fx = fixture();
        fx.net.open(&fx.monitor, &fx.high, "p").unwrap();
        // The low process cannot close the high port.
        let e = fx.net.close(&fx.monitor, &fx.low, "p").unwrap_err();
        assert!(matches!(e, ServiceError::Denied(_)));
        fx.net.close(&fx.monitor, &fx.high, "p").unwrap();
        assert!(matches!(
            fx.net.send(&fx.monitor, &fx.high, "p", "x"),
            Err(ServiceError::Denied(DenyReason::NotFound(_)))
        ));
    }

    #[test]
    fn queue_bound() {
        let fx = fixture();
        fx.net.open(&fx.monitor, &fx.low, "q").unwrap();
        for i in 0..MAX_QUEUE {
            fx.net
                .send(&fx.monitor, &fx.low, "q", &i.to_string())
                .unwrap();
        }
        assert!(matches!(
            fx.net.send(&fx.monitor, &fx.low, "q", "overflow"),
            Err(ServiceError::Failed(_))
        ));
    }

    #[test]
    fn duplicate_port_rejected() {
        let fx = fixture();
        fx.net.open(&fx.monitor, &fx.low, "p").unwrap();
        assert!(matches!(
            fx.net.open(&fx.monitor, &fx.low, "p"),
            Err(ServiceError::Failed(_))
        ));
    }

    #[test]
    fn principals_do_not_matter_only_labels_and_acls() {
        // Two distinct principals at the same class: the ACL gives
        // everyone write-append, so both send; receive stays with the
        // creator via the ACL.
        let fx = fixture();
        let other = fx
            .monitor
            .directory_mut(|d| d.add_principal("other").unwrap());
        let other_low = Subject::new(other, SecurityClass::bottom());
        fx.net.open(&fx.monitor, &fx.low, "shared").unwrap();
        fx.net
            .send(&fx.monitor, &other_low, "shared", "hi")
            .unwrap();
        let e = fx.net.recv(&fx.monitor, &other_low, "shared").unwrap_err();
        assert_eq!(e, ServiceError::Denied(DenyReason::DacNoEntry));
        let _ = PrincipalId::from_raw(0);
    }
}
