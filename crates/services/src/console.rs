//! The console (append-only output) service.
//!
//! Operations (mounted at `/svc/console`): `print(line)`,
//! `lines() -> int`. Output is retained in memory for tests and examples
//! ([`ConsoleService::take_output`]). Each line is tagged with the
//! printing principal so examples can show interleaved output.

use crate::install;
use extsec_acl::PrincipalId;
use extsec_ext::{CallCtx, Service, ServiceError};
use extsec_namespace::{NsPath, Protection};
use extsec_refmon::{MonitorError, ReferenceMonitor, ServiceKind};
use extsec_vm::Value;
use parking_lot::Mutex;

/// The service mount prefix.
pub const CONSOLE_SERVICE: &str = "/svc/console";

/// The console service.
pub struct ConsoleService {
    lines: Mutex<Vec<(PrincipalId, String)>>,
    echo_to_stdout: bool,
}

impl ConsoleService {
    /// Creates a console that retains output silently.
    pub fn new() -> Self {
        ConsoleService {
            lines: Mutex::new(Vec::new()),
            echo_to_stdout: false,
        }
    }

    /// Creates a console that also echoes to the process stdout (used by
    /// the runnable examples).
    pub fn echoing() -> Self {
        ConsoleService {
            lines: Mutex::new(Vec::new()),
            echo_to_stdout: true,
        }
    }

    /// Installs the service's procedure nodes.
    pub fn install(
        monitor: &ReferenceMonitor,
        op_protection: impl Fn(&str) -> Protection,
    ) -> Result<(), MonitorError> {
        let prefix: NsPath = CONSOLE_SERVICE.parse().expect("constant path");
        let procs = [
            ("print", op_protection("print")),
            ("lines", op_protection("lines")),
        ];
        install::install_procedures(monitor, &prefix, &procs)
    }

    /// Installs with every operation publicly executable.
    pub fn install_public(monitor: &ReferenceMonitor) -> Result<(), MonitorError> {
        Self::install(monitor, |_| install::public_procedure())
    }

    /// Appends a line.
    pub fn print(&self, who: PrincipalId, line: &str) {
        if self.echo_to_stdout {
            println!("[{who}] {line}");
        }
        self.lines.lock().push((who, line.to_string()));
    }

    /// Returns and clears the retained output.
    pub fn take_output(&self) -> Vec<(PrincipalId, String)> {
        std::mem::take(&mut self.lines.lock())
    }

    /// Returns the number of retained lines.
    pub fn len(&self) -> usize {
        self.lines.lock().len()
    }

    /// Returns whether no lines are retained.
    pub fn is_empty(&self) -> bool {
        self.lines.lock().is_empty()
    }
}

impl Default for ConsoleService {
    fn default() -> Self {
        ConsoleService::new()
    }
}

impl Service for ConsoleService {
    fn name(&self) -> &str {
        "console"
    }

    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        op: &str,
        args: &[Value],
    ) -> Result<Option<Value>, ServiceError> {
        ctx.monitor.telemetry().count_service(ServiceKind::Console);
        if let Some(fault) = extsec_faults::fire("svc.console") {
            return Err(ServiceError::Failed(fault.to_string()));
        }
        match op {
            "print" => {
                let line = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| ServiceError::BadArgs("print takes a string".into()))?;
                self.print(ctx.subject.principal, line);
                Ok(None)
            }
            "lines" => Ok(Some(Value::Int(self.len() as i64))),
            other => Err(ServiceError::NoSuchOperation(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_and_take() {
        let console = ConsoleService::new();
        console.print(PrincipalId::from_raw(1), "hello");
        console.print(PrincipalId::from_raw(2), "world");
        assert_eq!(console.len(), 2);
        let out = console.take_output();
        assert_eq!(out[0], (PrincipalId::from_raw(1), "hello".to_string()));
        assert!(console.is_empty());
    }
}
