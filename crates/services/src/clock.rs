//! The logical clock service.
//!
//! Operations (mounted at `/svc/clock`): `now() -> int` (a monotonically
//! increasing logical tick, advanced on every read), `ticks() -> int`
//! (the current value without advancing). A logical clock keeps the
//! simulation deterministic.

use crate::install;
use extsec_ext::{CallCtx, Service, ServiceError};
use extsec_namespace::{NsPath, Protection};
use extsec_refmon::{MonitorError, ReferenceMonitor, ServiceKind};
use extsec_vm::Value;
use std::sync::atomic::{AtomicI64, Ordering};

/// The service mount prefix.
pub const CLOCK_SERVICE: &str = "/svc/clock";

/// The logical clock service.
pub struct ClockService {
    ticks: AtomicI64,
}

impl ClockService {
    /// Creates a clock at tick zero.
    pub fn new() -> Self {
        ClockService {
            ticks: AtomicI64::new(0),
        }
    }

    /// Installs the service's procedure nodes.
    pub fn install(
        monitor: &ReferenceMonitor,
        op_protection: impl Fn(&str) -> Protection,
    ) -> Result<(), MonitorError> {
        let prefix: NsPath = CLOCK_SERVICE.parse().expect("constant path");
        let procs = [
            ("now", op_protection("now")),
            ("ticks", op_protection("ticks")),
        ];
        install::install_procedures(monitor, &prefix, &procs)
    }

    /// Installs with every operation publicly executable.
    pub fn install_public(monitor: &ReferenceMonitor) -> Result<(), MonitorError> {
        Self::install(monitor, |_| install::public_procedure())
    }

    /// Advances and returns the logical time.
    pub fn now(&self) -> i64 {
        self.ticks.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Returns the current tick without advancing.
    pub fn ticks(&self) -> i64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

impl Default for ClockService {
    fn default() -> Self {
        ClockService::new()
    }
}

impl Service for ClockService {
    fn name(&self) -> &str {
        "clock"
    }

    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        op: &str,
        _args: &[Value],
    ) -> Result<Option<Value>, ServiceError> {
        ctx.monitor.telemetry().count_service(ServiceKind::Clock);
        if let Some(fault) = extsec_faults::fire("svc.clock") {
            return Err(ServiceError::Failed(fault.to_string()));
        }
        match op {
            "now" => Ok(Some(Value::Int(self.now()))),
            "ticks" => Ok(Some(Value::Int(self.ticks()))),
            other => Err(ServiceError::NoSuchOperation(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_advance() {
        let clock = ClockService::new();
        assert_eq!(clock.ticks(), 0);
        assert_eq!(clock.now(), 1);
        assert_eq!(clock.now(), 2);
        assert_eq!(clock.ticks(), 2);
    }
}
