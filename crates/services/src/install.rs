//! Shared installation helpers for services.

use extsec_acl::{AccessMode, Acl, AclEntry, ModeSet};
use extsec_mac::SecurityClass;
use extsec_namespace::{NodeKind, NsPath, Protection};
use extsec_refmon::{MonitorError, ReferenceMonitor, Subject};

/// Protection for interior nodes that must be traversable by everyone:
/// public `list`, bottom label.
pub fn visible_container() -> Protection {
    Protection::new(
        Acl::public(ModeSet::only(AccessMode::List)),
        SecurityClass::bottom(),
    )
}

/// Protection for a procedure node executable by everyone.
pub fn public_procedure() -> Protection {
    Protection::new(
        Acl::public(ModeSet::only(AccessMode::Execute)),
        SecurityClass::bottom(),
    )
}

/// Installs a service's procedure leaves under `prefix`, creating the
/// interior path with [`visible_container`] protection (TCB operation).
///
/// `procs` pairs each procedure name with its protection.
pub fn install_procedures(
    monitor: &ReferenceMonitor,
    prefix: &NsPath,
    procs: &[(&str, Protection)],
) -> Result<(), MonitorError> {
    monitor.bootstrap(|ns| {
        ns.ensure_path(prefix, NodeKind::Domain, &visible_container())?;
        for (name, protection) in procs {
            ns.insert(prefix, name, NodeKind::Procedure, protection.clone())?;
        }
        Ok(())
    })
}

/// The default protection of an object created by `subject`: the creator
/// gets the full data-object mode set (read, write, write-append, delete,
/// list, administrate), and the object is labelled with the creator's
/// current security class, so information the subject produces stays at
/// the subject's class.
pub fn creator_protection(subject: &Subject) -> Protection {
    let modes = ModeSet::of(&[
        AccessMode::Read,
        AccessMode::Write,
        AccessMode::WriteAppend,
        AccessMode::Delete,
        AccessMode::List,
        AccessMode::Administrate,
    ]);
    Protection::new(
        Acl::from_entries([AclEntry::allow_principal_modes(subject.principal, modes)]),
        subject.class.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use extsec_acl::PrincipalId;
    use extsec_mac::Lattice;
    use extsec_refmon::MonitorBuilder;

    #[test]
    fn install_creates_nodes() {
        let lattice = Lattice::build(["low"], Vec::<String>::new()).unwrap();
        let monitor = MonitorBuilder::new(lattice).build();
        let prefix: NsPath = "/svc/demo".parse().unwrap();
        install_procedures(
            &monitor,
            &prefix,
            &[("a", public_procedure()), ("b", public_procedure())],
        )
        .unwrap();
        assert!(monitor.inspect(|ns| ns.resolve(&"/svc/demo/a".parse().unwrap()).is_ok()));
        assert!(monitor.inspect(|ns| ns.resolve(&"/svc/demo/b".parse().unwrap()).is_ok()));
    }

    #[test]
    fn creator_protection_grants_creator_only() {
        let subject = Subject::new(PrincipalId::from_raw(3), SecurityClass::bottom());
        let prot = creator_protection(&subject);
        assert_eq!(prot.label, subject.class);
        assert_eq!(prot.acl.len(), 1);
    }
}
