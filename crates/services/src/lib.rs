//! Simulated system services for the extensible system.
//!
//! The paper's model only matters when there is something to protect.
//! This crate provides the services every example in the paper leans on,
//! all registered in the universal name space and all guarded by the same
//! reference monitor:
//!
//! * [`fs`] — an in-memory file system whose file and directory metadata
//!   *are* name-space nodes under `/obj/fs`, so file protection and
//!   extension protection are literally the same mechanism (§2.3: "a
//!   single, universal name space that integrates all named objects").
//! * [`mbuf`] — a buffer-pool manager (the paper's §1.1 example of an
//!   existing service a new file system builds on), with per-principal
//!   quotas.
//! * [`applets`] — the applet/thread registry: threads are first-class
//!   protected objects under `/obj/threads`, which is exactly the surface
//!   the published *ThreadMurder* attack abused in the Java sandbox
//!   (§1.2).
//! * [`net`] — labeled loopback message ports; a port labeled above its
//!   writers is a one-way data diode, the lattice model's signature
//!   construction.
//! * [`console`] — an append-only output service.
//! * [`clock`] — a logical clock.
//! * [`vfs`] — the extensible virtual-file-system interface whose
//!   `open`/`read`/`write` procedures extensions specialize with new file
//!   system types (§1.1's motivating example).
//!
//! Each service has an `install` routine that creates its procedure nodes
//! (and object roots) in the name space with caller-supplied ACLs, and a
//! [`Service`](extsec_ext::Service) implementation that the
//! [`ExtRuntime`](extsec_ext::ExtRuntime) mounts at the service prefix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod applets;
pub mod clock;
pub mod console;
pub mod fs;
pub mod install;
pub mod mbuf;
pub mod net;
pub mod vfs;

pub use applets::AppletService;
pub use clock::ClockService;
pub use console::ConsoleService;
pub use fs::FsService;
pub use mbuf::MbufService;
pub use net::NetService;
pub use vfs::VfsService;
