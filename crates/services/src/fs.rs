//! The in-memory file system service.
//!
//! File and directory **metadata lives in the universal name space** under
//! `/obj/fs`: every file is an `Object` leaf with its own ACL and label,
//! every directory a `Directory` container. The service only stores the
//! contents; all protection decisions go through the reference monitor
//! against those nodes — precisely the paper's §2.3 point that one name
//! space and one protection facility can cover files and extensions
//! alike.
//!
//! Service operations (mounted at `/svc/fs`):
//!
//! | op | args | check on the file node |
//! |---|---|---|
//! | `create` | path, contents | `write-append` on the parent directory |
//! | `mkdir` | path | `write-append` on the parent directory |
//! | `read` | path | `read` |
//! | `write` | path, contents | `write` |
//! | `append` | path, contents | `write-append` |
//! | `delete` | path | `delete` |
//! | `list` | path | `list` |
//! | `stat` | path | `read` |
//!
//! Newly created files are labelled with the creating subject's class and
//! ACL'd to the creator ([`install::creator_protection`]); administrators
//! can re-ACL them afterwards through the monitor.

use crate::install::{self, visible_container};
use extsec_acl::AccessMode;
use extsec_ext::{CallCtx, Service, ServiceError};
use extsec_namespace::{NodeKind, NsPath, Protection};
use extsec_refmon::{MonitorError, ReferenceMonitor, ServiceKind, Subject};
use extsec_vm::Value;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// The name-space root of all file objects.
pub const FS_ROOT: &str = "/obj/fs";
/// The service mount prefix.
pub const FS_SERVICE: &str = "/svc/fs";

/// The in-memory file system service.
pub struct FsService {
    contents: RwLock<BTreeMap<NsPath, String>>,
}

impl FsService {
    /// Creates an empty file system.
    pub fn new() -> Self {
        FsService {
            contents: RwLock::new(BTreeMap::new()),
        }
    }

    /// Installs the service's procedure nodes (with the given per-op
    /// protections) and the `/obj/fs` root.
    pub fn install(
        monitor: &ReferenceMonitor,
        op_protection: impl Fn(&str) -> Protection,
    ) -> Result<(), MonitorError> {
        let prefix: NsPath = FS_SERVICE.parse().expect("constant path");
        let ops = [
            "create", "mkdir", "read", "write", "append", "delete", "list", "stat",
        ];
        let procs: Vec<(&str, Protection)> =
            ops.iter().map(|op| (*op, op_protection(op))).collect();
        install::install_procedures(monitor, &prefix, &procs)?;
        monitor.bootstrap(|ns| {
            ns.ensure_path(
                &FS_ROOT.parse().expect("constant path"),
                NodeKind::Directory,
                &visible_container(),
            )?;
            Ok(())
        })
    }

    /// Installs with every operation publicly executable (per-file ACLs
    /// still apply; this only opens the service interface itself).
    pub fn install_public(monitor: &ReferenceMonitor) -> Result<(), MonitorError> {
        Self::install(monitor, |_| install::public_procedure())
    }

    /// Maps a user path string (e.g. `"home/alice/notes"`) to its node
    /// path under [`FS_ROOT`].
    pub fn node_path(user_path: &str) -> Result<NsPath, ServiceError> {
        let root: NsPath = FS_ROOT.parse().expect("constant path");
        let trimmed = user_path.trim_matches('/');
        if trimmed.is_empty() {
            return Ok(root);
        }
        let mut path = root;
        for component in trimmed.split('/') {
            path = path
                .join(component)
                .map_err(|e| ServiceError::BadArgs(format!("bad path: {e}")))?;
        }
        Ok(path)
    }

    /// Creates a file with explicit protection, bypassing access checks
    /// (TCB operation for scenario setup): interior directories are
    /// created as needed with clones of `dir_protection`.
    pub fn bootstrap_file(
        &self,
        monitor: &ReferenceMonitor,
        user_path: &str,
        contents: &str,
        protection: Protection,
        dir_protection: &Protection,
    ) -> Result<(), ServiceError> {
        let (parent, name, path) = Self::split_for_create(user_path)?;
        monitor
            .bootstrap(|ns| {
                let parent_id = ns.ensure_path(&parent, NodeKind::Directory, dir_protection)?;
                ns.insert_at(parent_id, &name, NodeKind::Object, protection)?;
                Ok(())
            })
            .map_err(ServiceError::from)?;
        self.contents.write().insert(path, contents.to_string());
        Ok(())
    }

    /// Splits a user path into (parent node path, leaf name, full node
    /// path) for creation, rejecting the fs root itself.
    fn split_for_create(user_path: &str) -> Result<(NsPath, String, NsPath), ServiceError> {
        let path = Self::node_path(user_path)?;
        let root: NsPath = FS_ROOT.parse().expect("constant path");
        if path == root {
            return Err(ServiceError::BadArgs("cannot create the fs root".into()));
        }
        let parent = path.parent().expect("deeper than the fs root");
        let name = path.leaf().expect("non-root path has a leaf").to_string();
        Ok((parent, name, path))
    }

    fn arg_str(args: &[Value], i: usize) -> Result<&str, ServiceError> {
        args.get(i)
            .and_then(Value::as_str)
            .ok_or_else(|| ServiceError::BadArgs(format!("argument {i} must be a string")))
    }

    /// Creates a file as `subject` (used by both the service op and
    /// direct host-level calls in tests/examples).
    pub fn create_file(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        user_path: &str,
        contents: &str,
    ) -> Result<(), ServiceError> {
        let (parent, name, path) = Self::split_for_create(user_path)?;
        monitor.create(
            subject,
            &parent,
            &name,
            NodeKind::Object,
            install::creator_protection(subject),
        )?;
        self.contents.write().insert(path, contents.to_string());
        Ok(())
    }

    /// Creates a directory as `subject`.
    pub fn mkdir(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        user_path: &str,
    ) -> Result<(), ServiceError> {
        let (parent, name, _path) = Self::split_for_create(user_path)?;
        monitor.create(
            subject,
            &parent,
            &name,
            NodeKind::Directory,
            install::creator_protection(subject),
        )?;
        Ok(())
    }

    /// Reads a file as `subject`.
    pub fn read_file(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        user_path: &str,
    ) -> Result<String, ServiceError> {
        let path = Self::node_path(user_path)?;
        monitor.require(subject, &path, AccessMode::Read)?;
        self.contents
            .read()
            .get(&path)
            .cloned()
            .ok_or_else(|| ServiceError::NotFound(user_path.to_string()))
    }

    /// Overwrites a file as `subject`.
    pub fn write_file(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        user_path: &str,
        contents: &str,
    ) -> Result<(), ServiceError> {
        let path = Self::node_path(user_path)?;
        monitor.require(subject, &path, AccessMode::Write)?;
        match self.contents.write().get_mut(&path) {
            Some(slot) => {
                *slot = contents.to_string();
                Ok(())
            }
            None => Err(ServiceError::NotFound(user_path.to_string())),
        }
    }

    /// Appends to a file as `subject` — the blind write-up mode.
    pub fn append_file(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        user_path: &str,
        contents: &str,
    ) -> Result<(), ServiceError> {
        let path = Self::node_path(user_path)?;
        monitor.require(subject, &path, AccessMode::WriteAppend)?;
        match self.contents.write().get_mut(&path) {
            Some(slot) => {
                slot.push_str(contents);
                Ok(())
            }
            None => Err(ServiceError::NotFound(user_path.to_string())),
        }
    }

    /// Deletes a file as `subject`.
    pub fn delete_file(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        user_path: &str,
    ) -> Result<(), ServiceError> {
        let path = Self::node_path(user_path)?;
        monitor.remove(subject, &path)?;
        self.contents.write().remove(&path);
        Ok(())
    }

    /// Lists a directory as `subject`.
    pub fn list_dir(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        user_path: &str,
    ) -> Result<Vec<String>, ServiceError> {
        let path = Self::node_path(user_path)?;
        Ok(monitor.list(subject, &path)?)
    }
}

impl Default for FsService {
    fn default() -> Self {
        FsService::new()
    }
}

impl Service for FsService {
    fn name(&self) -> &str {
        "fs"
    }

    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        op: &str,
        args: &[Value],
    ) -> Result<Option<Value>, ServiceError> {
        ctx.monitor.telemetry().count_service(ServiceKind::Fs);
        if let Some(fault) = extsec_faults::fire("svc.fs") {
            return Err(ServiceError::Failed(fault.to_string()));
        }
        let monitor = ctx.monitor.as_ref();
        match op {
            "create" => {
                let path = Self::arg_str(args, 0)?;
                let contents = Self::arg_str(args, 1)?;
                self.create_file(monitor, ctx.subject, path, contents)?;
                Ok(None)
            }
            "mkdir" => {
                self.mkdir(monitor, ctx.subject, Self::arg_str(args, 0)?)?;
                Ok(None)
            }
            "read" => {
                let s = self.read_file(monitor, ctx.subject, Self::arg_str(args, 0)?)?;
                Ok(Some(Value::Str(s)))
            }
            "write" => {
                let path = Self::arg_str(args, 0)?;
                let contents = Self::arg_str(args, 1)?;
                self.write_file(monitor, ctx.subject, path, contents)?;
                Ok(None)
            }
            "append" => {
                let path = Self::arg_str(args, 0)?;
                let contents = Self::arg_str(args, 1)?;
                self.append_file(monitor, ctx.subject, path, contents)?;
                Ok(None)
            }
            "delete" => {
                self.delete_file(monitor, ctx.subject, Self::arg_str(args, 0)?)?;
                Ok(None)
            }
            "list" => {
                let names = self.list_dir(monitor, ctx.subject, Self::arg_str(args, 0)?)?;
                Ok(Some(Value::Str(names.join("\n"))))
            }
            "stat" => {
                let path = Self::arg_str(args, 0)?;
                let contents = self.read_file(monitor, ctx.subject, path)?;
                Ok(Some(Value::Int(contents.len() as i64)))
            }
            other => Err(ServiceError::NoSuchOperation(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extsec_acl::{AclEntry, PrincipalId};
    use extsec_mac::{Lattice, SecurityClass};
    use extsec_refmon::{DenyReason, MonitorBuilder};
    use std::sync::Arc;

    struct Fx {
        monitor: Arc<ReferenceMonitor>,
        fs: FsService,
        alice: PrincipalId,
        bob: PrincipalId,
    }

    fn fixture() -> Fx {
        let lattice = Lattice::build(["low", "high"], ["c0"]).unwrap();
        let mut builder = MonitorBuilder::new(lattice);
        let alice = builder.add_principal("alice").unwrap();
        let bob = builder.add_principal("bob").unwrap();
        let monitor = builder.build();
        FsService::install_public(&monitor).unwrap();
        // Make the fs root world-writable so tests can create files.
        monitor
            .bootstrap(|ns| {
                let id = ns.resolve(&FS_ROOT.parse().unwrap())?;
                ns.update_protection(id, |prot| {
                    prot.acl
                        .push(AclEntry::allow_everyone(extsec_acl::ModeSet::of(&[
                            AccessMode::WriteAppend,
                            AccessMode::List,
                        ])));
                })?;
                Ok(())
            })
            .unwrap();
        Fx {
            monitor,
            fs: FsService::new(),
            alice,
            bob,
        }
    }

    fn bottom(p: PrincipalId) -> Subject {
        Subject::new(p, SecurityClass::bottom())
    }

    #[test]
    fn create_read_write_cycle() {
        let fx = fixture();
        let alice = bottom(fx.alice);
        fx.fs
            .create_file(&fx.monitor, &alice, "notes", "hello")
            .unwrap();
        assert_eq!(
            fx.fs.read_file(&fx.monitor, &alice, "notes").unwrap(),
            "hello"
        );
        fx.fs
            .write_file(&fx.monitor, &alice, "notes", "bye")
            .unwrap();
        assert_eq!(
            fx.fs.read_file(&fx.monitor, &alice, "notes").unwrap(),
            "bye"
        );
        fx.fs
            .append_file(&fx.monitor, &alice, "notes", "!")
            .unwrap();
        assert_eq!(
            fx.fs.read_file(&fx.monitor, &alice, "notes").unwrap(),
            "bye!"
        );
    }

    #[test]
    fn other_principals_are_denied_by_creator_acl() {
        let fx = fixture();
        let alice = bottom(fx.alice);
        let bob = bottom(fx.bob);
        fx.fs
            .create_file(&fx.monitor, &alice, "private", "secret")
            .unwrap();
        let e = fx.fs.read_file(&fx.monitor, &bob, "private").unwrap_err();
        assert_eq!(e, ServiceError::Denied(DenyReason::DacNoEntry));
        let e = fx
            .fs
            .write_file(&fx.monitor, &bob, "private", "x")
            .unwrap_err();
        assert_eq!(e, ServiceError::Denied(DenyReason::DacNoEntry));
        let e = fx.fs.delete_file(&fx.monitor, &bob, "private").unwrap_err();
        assert_eq!(e, ServiceError::Denied(DenyReason::DacNoEntry));
    }

    #[test]
    fn mac_label_follows_creator() {
        let fx = fixture();
        let high = fx.monitor.lattice(|l| l.parse_class("high").unwrap());
        let alice_high = Subject::new(fx.alice, high.clone());
        // Creating into the bottom-labelled root from high would be a
        // write-down (correctly denied); give alice a high directory.
        let e = fx
            .fs
            .create_file(&fx.monitor, &alice_high, "updoc", "classified")
            .unwrap_err();
        assert_eq!(e, ServiceError::Denied(DenyReason::MacFlow));
        fx.monitor
            .bootstrap(|ns| {
                let root = ns.resolve(&FS_ROOT.parse().unwrap())?;
                let mut prot = crate::install::creator_protection(&alice_high);
                prot.label = high.clone();
                ns.insert_at(root, "vault", extsec_namespace::NodeKind::Directory, prot)?;
                Ok(())
            })
            .unwrap();
        fx.fs
            .create_file(&fx.monitor, &alice_high, "vault/updoc", "classified")
            .unwrap();
        // Even alice herself, at low, cannot reach the high file: the
        // high directory is not even visible to her.
        let alice_low = bottom(fx.alice);
        let e = fx
            .fs
            .read_file(&fx.monitor, &alice_low, "vault/updoc")
            .unwrap_err();
        assert!(
            matches!(e, ServiceError::Denied(DenyReason::NotVisibleMac(_))),
            "got {e:?}"
        );
        // At high, she can.
        assert_eq!(
            fx.fs
                .read_file(&fx.monitor, &alice_high, "vault/updoc")
                .unwrap(),
            "classified"
        );
    }

    #[test]
    fn directories_nest() {
        let fx = fixture();
        let alice = bottom(fx.alice);
        fx.fs.mkdir(&fx.monitor, &alice, "home").unwrap();
        fx.fs
            .create_file(&fx.monitor, &alice, "home/one", "1")
            .unwrap();
        fx.fs
            .create_file(&fx.monitor, &alice, "home/two", "2")
            .unwrap();
        assert_eq!(
            fx.fs.list_dir(&fx.monitor, &alice, "home").unwrap(),
            vec!["one", "two"]
        );
    }

    #[test]
    fn delete_removes_node_and_contents() {
        let fx = fixture();
        let alice = bottom(fx.alice);
        fx.fs.create_file(&fx.monitor, &alice, "tmp", "x").unwrap();
        fx.fs.delete_file(&fx.monitor, &alice, "tmp").unwrap();
        let e = fx.fs.read_file(&fx.monitor, &alice, "tmp").unwrap_err();
        // The node is gone, so the monitor reports not-found.
        assert!(matches!(e, ServiceError::Denied(DenyReason::NotFound(_))));
    }

    #[test]
    fn bad_paths_rejected() {
        let fx = fixture();
        let alice = bottom(fx.alice);
        let e = fx.fs.create_file(&fx.monitor, &alice, "", "x").unwrap_err();
        assert!(matches!(e, ServiceError::BadArgs(_)));
        let e = fx
            .fs
            .create_file(&fx.monitor, &alice, "a/../b", "x")
            .unwrap_err();
        assert!(matches!(e, ServiceError::BadArgs(_)));
    }

    #[test]
    fn node_path_mapping() {
        assert_eq!(
            FsService::node_path("a/b").unwrap().to_string(),
            "/obj/fs/a/b"
        );
        assert_eq!(
            FsService::node_path("/a/").unwrap().to_string(),
            "/obj/fs/a"
        );
        assert_eq!(FsService::node_path("").unwrap().to_string(), "/obj/fs");
    }
}
