//! The extensible virtual file system — the paper's §1.1 example.
//!
//! > "an extension can be used to provide a new file system that is not
//! > supported by the original system. To implement this file system, the
//! > extension ... uses existing services (such as mbuf management) and
//! > builds on them. At the same time, to access the new file system, a
//! > user invokes the existing, general file system interfaces which have
//! > been extended (or specialized) by the extension."
//!
//! The VFS mounts at `/svc/vfs` and ships one built-in type, `mem`. New
//! types plug in via the **extend** mechanism:
//!
//! 1. the extension (or its administrator) calls
//!    `register_type(name)`, which creates the *extensible* interface
//!    node `/svc/vfs/types/<name>` — guarded by `write-append` on
//!    `/svc/vfs/types`;
//! 2. the extension registers an exported handler on that node through
//!    [`ExtRuntime::extend`](extsec_ext::ExtRuntime::extend) — guarded by
//!    the `extend` mode;
//! 3. users keep calling the ordinary `read`/`write` operations; when the
//!    path resolves to a mount of the new type, the VFS re-enters the
//!    runtime on the type's interface node, and class-aware dispatch
//!    selects the extension's handler.
//!
//! Handler convention: `handle(op: str, path: str, data: str) -> str`
//! (`op` ∈ `read`/`write`/`open`; the return value is the read data, or
//! ignored for writes).

use crate::install::{self, visible_container};
use extsec_ext::{CallCtx, Service, ServiceError};
use extsec_namespace::{NodeKind, NsPath, Protection};
use extsec_refmon::{MonitorError, ReferenceMonitor, ServiceKind, Subject};
use extsec_vm::Value;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// The service mount prefix.
pub const VFS_SERVICE: &str = "/svc/vfs";
/// The container of per-type interface nodes.
pub const VFS_TYPES: &str = "/svc/vfs/types";
/// The built-in file-system type.
pub const BUILTIN_TYPE: &str = "mem";

struct VfsState {
    /// mountpoint (first path component) → fs type name.
    mounts: BTreeMap<String, String>,
    /// Contents of the built-in `mem` type, keyed by full user path.
    mem: BTreeMap<String, String>,
}

/// The extensible VFS service.
pub struct VfsService {
    state: RwLock<VfsState>,
}

impl VfsService {
    /// Creates a VFS with no mounts.
    pub fn new() -> Self {
        VfsService {
            state: RwLock::new(VfsState {
                mounts: BTreeMap::new(),
                mem: BTreeMap::new(),
            }),
        }
    }

    /// Installs the service's procedure nodes and the types container.
    pub fn install(
        monitor: &ReferenceMonitor,
        op_protection: impl Fn(&str) -> Protection,
    ) -> Result<(), MonitorError> {
        let prefix: NsPath = VFS_SERVICE.parse().expect("constant path");
        let ops = [
            "mount",
            "register_type",
            "open",
            "read",
            "write",
            "list_mounts",
        ];
        let procs: Vec<(&str, Protection)> =
            ops.iter().map(|op| (*op, op_protection(op))).collect();
        install::install_procedures(monitor, &prefix, &procs)?;
        monitor.bootstrap(|ns| {
            ns.ensure_path(
                &VFS_TYPES.parse().expect("constant path"),
                NodeKind::Interface,
                &visible_container(),
            )?;
            Ok(())
        })
    }

    /// Installs with every operation publicly executable.
    pub fn install_public(monitor: &ReferenceMonitor) -> Result<(), MonitorError> {
        Self::install(monitor, |_| install::public_procedure())
    }

    /// Registers a new file-system type: creates the extensible interface
    /// node `/svc/vfs/types/<name>` as `subject`. The node's protection
    /// comes from the subject ([`install::creator_protection`]) plus
    /// public execute (any caller may be routed through it) and
    /// creator-held extend.
    pub fn register_type(
        &self,
        monitor: &ReferenceMonitor,
        subject: &Subject,
        name: &str,
    ) -> Result<(), ServiceError> {
        let types: NsPath = VFS_TYPES.parse().expect("constant path");
        let mut protection = install::creator_protection(subject);
        protection.acl.push(extsec_acl::AclEntry::allow_everyone(
            extsec_acl::ModeSet::only(extsec_acl::AccessMode::Execute),
        ));
        protection.acl.push(extsec_acl::AclEntry::allow_principal(
            subject.principal,
            extsec_acl::AccessMode::Extend,
        ));
        let id = monitor.create(subject, &types, name, NodeKind::Procedure, protection)?;
        monitor
            .bootstrap(|ns| ns.set_extensible(id, true))
            .map_err(ServiceError::from)?;
        Ok(())
    }

    /// Mounts `fstype` at `mountpoint` (a single path component).
    pub fn mount(&self, mountpoint: &str, fstype: &str) -> Result<(), ServiceError> {
        if !NsPath::valid_component(mountpoint) {
            return Err(ServiceError::BadArgs(format!(
                "bad mountpoint {mountpoint:?}"
            )));
        }
        let mut state = self.state.write();
        if state.mounts.contains_key(mountpoint) {
            return Err(ServiceError::Failed(format!(
                "mountpoint {mountpoint:?} already in use"
            )));
        }
        state
            .mounts
            .insert(mountpoint.to_string(), fstype.to_string());
        Ok(())
    }

    /// Returns the mounts as `(mountpoint, fstype)` pairs.
    pub fn mounts(&self) -> Vec<(String, String)> {
        self.state
            .read()
            .mounts
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Splits a user path into `(fstype, mount-relative path)`.
    fn mount_type_of(&self, user_path: &str) -> Result<(String, String), ServiceError> {
        let trimmed = user_path.trim_matches('/');
        let (first, rest) = match trimmed.split_once('/') {
            Some((first, rest)) => (first, rest),
            None => (trimmed, ""),
        };
        let fstype = self
            .state
            .read()
            .mounts
            .get(first)
            .cloned()
            .ok_or_else(|| ServiceError::NotFound(format!("no mount covers {user_path:?}")))?;
        Ok((fstype, rest.to_string()))
    }

    /// Performs `op` on `user_path`, routing to the built-in type or
    /// re-entering the runtime for extension-provided types.
    fn route(
        &self,
        ctx: &CallCtx<'_>,
        op: &str,
        user_path: &str,
        data: &str,
    ) -> Result<Option<Value>, ServiceError> {
        let (fstype, rel_path) = self.mount_type_of(user_path)?;
        if fstype == BUILTIN_TYPE {
            let mut state = self.state.write();
            return match op {
                "open" => Ok(Some(Value::Bool(state.mem.contains_key(user_path)))),
                "read" => state
                    .mem
                    .get(user_path)
                    .map(|s| Some(Value::Str(s.clone())))
                    .ok_or_else(|| ServiceError::NotFound(user_path.to_string())),
                "write" => {
                    state.mem.insert(user_path.to_string(), data.to_string());
                    Ok(None)
                }
                other => Err(ServiceError::NoSuchOperation(other.to_string())),
            };
        }
        // Extension-provided type: re-enter the runtime on the type's
        // interface node; dispatch selects the handler by caller class.
        // The handler sees the mount-relative path and its string result
        // is passed through verbatim (for `write`, handlers may return a
        // token — e.g. logfs returns the record handle).
        let Some(reenter) = ctx.reenter else {
            return Err(ServiceError::Failed(
                "no runtime available to dispatch the mounted type".into(),
            ));
        };
        let iface: NsPath = format!("{VFS_TYPES}/{fstype}")
            .parse()
            .map_err(|_| ServiceError::Failed(format!("bad type name {fstype:?}")))?;
        reenter.call(
            ctx.subject,
            &iface,
            &[
                Value::Str(op.to_string()),
                Value::Str(rel_path),
                Value::Str(data.to_string()),
            ],
        )
    }
}

impl Default for VfsService {
    fn default() -> Self {
        VfsService::new()
    }
}

impl Service for VfsService {
    fn name(&self) -> &str {
        "vfs"
    }

    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        op: &str,
        args: &[Value],
    ) -> Result<Option<Value>, ServiceError> {
        ctx.monitor.telemetry().count_service(ServiceKind::Vfs);
        if let Some(fault) = extsec_faults::fire("svc.vfs") {
            return Err(ServiceError::Failed(fault.to_string()));
        }
        let arg = |i: usize| -> Result<&str, ServiceError> {
            args.get(i)
                .and_then(Value::as_str)
                .ok_or_else(|| ServiceError::BadArgs(format!("argument {i} must be a string")))
        };
        match op {
            "mount" => {
                self.mount(arg(0)?, arg(1)?)?;
                Ok(None)
            }
            "register_type" => {
                self.register_type(ctx.monitor, ctx.subject, arg(0)?)?;
                Ok(None)
            }
            "open" => self.route(ctx, "open", arg(0)?, ""),
            "read" => self.route(ctx, "read", arg(0)?, ""),
            "write" => self.route(ctx, "write", arg(0)?, arg(1)?),
            "list_mounts" => {
                let mounts = self
                    .mounts()
                    .into_iter()
                    .map(|(m, t)| format!("{m}={t}"))
                    .collect::<Vec<_>>()
                    .join("\n");
                Ok(Some(Value::Str(mounts)))
            }
            // Calls routed to /svc/vfs/types/<name> with no registered
            // handler fall through to the base service; report cleanly.
            other if other.starts_with("types/") => Err(ServiceError::Failed(format!(
                "no handler registered for file-system type {:?}",
                other.trim_start_matches("types/")
            ))),
            other => Err(ServiceError::NoSuchOperation(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mounts_validate() {
        let vfs = VfsService::new();
        vfs.mount("logs", "logfs").unwrap();
        assert!(vfs.mount("logs", "other").is_err());
        assert!(vfs.mount("a/b", "x").is_err());
        assert_eq!(vfs.mounts(), vec![("logs".into(), "logfs".into())]);
    }

    #[test]
    fn mount_type_lookup() {
        let vfs = VfsService::new();
        vfs.mount("home", BUILTIN_TYPE).unwrap();
        assert_eq!(
            vfs.mount_type_of("home/notes").unwrap(),
            (BUILTIN_TYPE.to_string(), "notes".to_string())
        );
        assert!(vfs.mount_type_of("nope/x").is_err());
    }
}
