//! The guided campaign explorer.
//!
//! A seeded weighted walk over the op vocabulary, biased toward
//! (principal, leaf) pairs whose decisions recently flipped — the
//! neighbourhoods where revocation, relabel, and group churn interact
//! with the decision cache. Every generated op is recorded before it is
//! applied, so the instant a violation fires the [`Campaign`] in hand
//! replays it.

use crate::invariant::Violation;
use crate::op::{Campaign, Mutant, Op, Storm};
use crate::rng::Rng;
use crate::session::{Session, SessionStats};
use crate::world::WorldSpec;
use extsec_core::{AccessMode, FaultStats, ModeSet};

/// Explorer configuration: seed, step budget, and the fault environment.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Seed for the op-generation stream (independent of the world
    /// seed and the storm seed).
    pub seed: u64,
    /// Maximum ops to generate before declaring the campaign clean.
    pub steps: usize,
    /// Optional random fault storm to run the campaign under.
    pub storm: Option<Storm>,
    /// Planted mutants (scripted fail-open bugs) to arm.
    pub mutants: Vec<Mutant>,
}

impl ExploreConfig {
    /// A storm-free, mutant-free exploration.
    pub fn clean(seed: u64, steps: usize) -> Self {
        ExploreConfig {
            seed,
            steps,
            storm: None,
            mutants: Vec::new(),
        }
    }
}

/// What an exploration produced: the recorded campaign (its `expect`
/// field set iff a violation fired), the violation, the session's
/// counters, and the fault plan's injection stats.
#[derive(Debug)]
pub struct Outcome {
    /// The replayable campaign, ops up to and including the violating
    /// step.
    pub campaign: Campaign,
    /// The first violation detected, if any.
    pub violation: Option<Violation>,
    /// Probe/grant/denial/flip counters.
    pub stats: SessionStats,
    /// What the installed fault plan injected (zero when no plan).
    pub faults: FaultStats,
}

/// Runs one guided exploration of up to `cfg.steps` ops against a fresh
/// world built from `spec`. Deterministic: the same `(spec, cfg)` pair
/// reproduces the identical op sequence and outcome, byte for byte.
pub fn explore(spec: &WorldSpec, cfg: &ExploreConfig) -> Outcome {
    let mut campaign = Campaign {
        spec: spec.clone(),
        seed: cfg.seed,
        storm: cfg.storm,
        mutants: cfg.mutants.clone(),
        expect: None,
        ops: Vec::new(),
    };
    let plan = campaign.build_plan();
    let mut session = Session::start(spec, plan, cfg.storm.is_some());
    let mut rng = Rng::new(cfg.seed);
    let mut violation = None;
    for _ in 0..cfg.steps {
        let op = next_op(&mut rng, &session);
        campaign.ops.push(op.clone());
        if let Err(v) = session.apply(&op) {
            campaign.expect = Some(v.invariant);
            violation = Some(v);
            break;
        }
    }
    // Final audit sweep: the chain and its gap accounting must still
    // verify after the last op, not just at the periodic checkpoints.
    if violation.is_none() {
        if let Err(v) = session.check_audit() {
            campaign.expect = Some(v.invariant);
            violation = Some(v);
        }
    }
    let faults = session.finish();
    Outcome {
        campaign,
        violation,
        stats: session.stats,
        faults,
    }
}

/// Mode palettes for generated grants/forbids and checks.
const GRANT_MODES: [&str; 5] = ["r", "rx", "rwx", "x", "rl"];
const FORBID_MODES: [&str; 3] = ["w", "r", "x"];
const CLOCK_STEPS_MS: [u64; 4] = [50, 200, 500, 1000];

fn parse_modes(s: &str) -> ModeSet {
    ModeSet::parse(s).expect("static mode palette")
}

fn check_mode(rng: &mut Rng) -> AccessMode {
    // Observe-heavy, like real workloads; writes and lists keep the
    // lattice's other flow directions exercised.
    match rng.below(10) {
        0..=4 => AccessMode::Read,
        5..=7 => AccessMode::Execute,
        8 => AccessMode::Write,
        _ => AccessMode::List,
    }
}

/// Picks the (principal, leaf) focus for a probe-like op: half the
/// time a recently flipped pair from the session's hot ring, otherwise
/// uniform.
fn focus(rng: &mut Rng, session: &Session) -> (usize, usize) {
    if !session.hot.is_empty() && rng.chance(1, 2) {
        session.hot[rng.below(session.hot.len())]
    } else {
        (
            rng.below(session.world.principals.len()),
            rng.below(session.world.leaves.len()),
        )
    }
}

/// The weighted op generator. Weights favour checks (the invariant
/// surface), revocation/grant churn (the stale-grant surface), and
/// extension dispatch (the quarantine surface).
fn next_op(rng: &mut Rng, session: &Session) -> Op {
    let world = &session.world;
    // (cumulative-weight, op-kind) table; one draw picks the kind.
    const WEIGHTS: [(u32, u8); 16] = [
        (30, 0), // Check
        (12, 1), // Grant
        (12, 2), // Revoke
        (5, 3),  // Forbid
        (7, 4),  // Relabel
        (4, 5),  // Join
        (4, 6),  // Leave
        (4, 7),  // Create
        (2, 8),  // Remove
        (3, 9),  // Install
        (2, 15), // InstallHog
        (9, 10), // RunExt
        (4, 11), // Clock
        (3, 12), // Burst
        (2, 14), // BundleCycle
        (1, 13), // AddPrincipal
    ];
    let total: u32 = WEIGHTS.iter().map(|(w, _)| w).sum();
    let mut draw = (rng.next() % total as u64) as u32;
    let mut kind = 0u8;
    for (w, k) in WEIGHTS {
        if draw < w {
            kind = k;
            break;
        }
        draw -= w;
    }
    match kind {
        0 => {
            let (principal, leaf) = focus(rng, session);
            Op::Check {
                principal,
                leaf,
                mode: check_mode(rng),
            }
        }
        1 => {
            let (principal, leaf) = focus(rng, session);
            Op::Grant {
                leaf,
                principal,
                modes: parse_modes(GRANT_MODES[rng.below(GRANT_MODES.len())]),
            }
        }
        2 => {
            // Prefer revoking a principal the leaf actually grants:
            // a meaty revocation seeds the ledger, a vacuous one is a
            // no-op.
            let leaf = rng.below(world.leaves.len());
            let granted = world.granted_principals(&world.leaves[leaf]);
            let principal = if granted.is_empty() {
                rng.below(world.principals.len())
            } else {
                granted[rng.below(granted.len())]
            };
            Op::Revoke { leaf, principal }
        }
        3 => {
            let (principal, leaf) = focus(rng, session);
            Op::Forbid {
                leaf,
                principal,
                modes: parse_modes(FORBID_MODES[rng.below(FORBID_MODES.len())]),
            }
        }
        4 => Op::Relabel {
            leaf: rng.below(world.leaves.len()),
            class: rng.below(world.palette.len()),
        },
        5 => Op::Join {
            principal: rng.below(world.principals.len()),
            group: rng.below(world.depts.len()),
        },
        6 => Op::Leave {
            principal: rng.below(world.principals.len()),
            group: rng.below(world.depts.len()),
        },
        7 => Op::Create {
            domain: rng.below(world.domains.len()),
            class: rng.below(world.palette.len()),
        },
        8 => Op::Remove {
            leaf: rng.below(world.leaves.len()),
        },
        9 => Op::Install {
            owner: rng.below(world.principals.len()),
            hostile: rng.chance(1, 2),
        },
        15 => Op::InstallHog {
            owner: rng.below(world.principals.len()),
        },
        10 => Op::RunExt {
            ext: rng.below(world.extensions.len().max(1)),
        },
        11 => Op::Clock {
            ms: CLOCK_STEPS_MS[rng.below(CLOCK_STEPS_MS.len())],
        },
        12 => {
            let (principal, leaf) = focus(rng, session);
            Op::Burst {
                principal,
                leaf,
                mode: check_mode(rng),
            }
        }
        14 => {
            let (principal, leaf) = focus(rng, session);
            Op::BundleCycle { leaf, principal }
        }
        _ => Op::AddPrincipal,
    }
}
