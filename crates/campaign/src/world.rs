//! Deterministic scenario generator: campus and app-store worlds built
//! from a [`WorldSpec`], at populations from a handful of principals up
//! to 10^6. The same generator seeds the explorer's starting states and
//! the F15 scale harness, so "the world the invariants were checked in"
//! and "the world the benchmarks measure" are one artifact.

use extsec_core::acl::DirectoryError;
use extsec_core::{
    AccessMode, Acl, AclEntry, CategoryId, ExtError, ExtRuntime, ExtensionId, ExtensionManifest,
    GroupId, HealthConfig, Lattice, MachineLimits, ModeSet, MonitorBuilder, NodeKind, NsPath,
    Origin, PrincipalId, Protection, ReferenceMonitor, SecurityClass, Subject, TrustLevel, Who,
};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which flavour of world to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// A campus: departments as categories, `public < internal <
    /// restricted` trust levels, department file trees.
    Campus,
    /// An app store: vendors as categories, `sandbox < store < system`
    /// trust levels, per-vendor app trees.
    AppStore,
}

impl Profile {
    fn level_names(self) -> [&'static str; 3] {
        match self {
            Profile::Campus => ["public", "internal", "restricted"],
            Profile::AppStore => ["sandbox", "store", "system"],
        }
    }

    fn category_prefix(self) -> &'static str {
        match self {
            Profile::Campus => "dept",
            Profile::AppStore => "vendor",
        }
    }

    fn root(self) -> &'static str {
        match self {
            Profile::Campus => "campus",
            Profile::AppStore => "store",
        }
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Profile::Campus => write!(f, "campus"),
            Profile::AppStore => write!(f, "app-store"),
        }
    }
}

impl FromStr for Profile {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "campus" => Ok(Profile::Campus),
            "app-store" => Ok(Profile::AppStore),
            other => Err(format!("unknown profile {other:?}")),
        }
    }
}

/// The deterministic recipe for a generated world. Equal specs build
/// byte-for-byte identical worlds (same ids, same paths, same policies).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorldSpec {
    /// World flavour.
    pub profile: Profile,
    /// Number of ordinary principals (`p0..`), not counting the admin.
    pub principals: usize,
    /// Number of departments/vendors — both the lattice categories and
    /// the principal groups.
    pub departments: usize,
    /// Interior namespace depth below the profile root.
    pub depth: usize,
    /// Branching factor of the interior tree.
    pub branching: usize,
    /// Number of leaf objects hung off the deepest directories.
    pub leaves: usize,
    /// Seed for the generator's own deterministic choices.
    pub seed: u64,
}

impl WorldSpec {
    /// A small campus world, sized for explorer campaigns.
    pub fn campus(seed: u64) -> Self {
        WorldSpec {
            profile: Profile::Campus,
            principals: 8,
            departments: 3,
            depth: 3,
            branching: 2,
            leaves: 12,
            seed,
        }
    }

    /// A small app-store world, sized for explorer campaigns.
    pub fn app_store(seed: u64) -> Self {
        WorldSpec {
            profile: Profile::AppStore,
            principals: 10,
            departments: 4,
            depth: 2,
            branching: 3,
            leaves: 9,
            seed,
        }
    }

    /// A scale-harness world: `principals` principals with deep
    /// namespaces and layered policies (the F15 configuration).
    pub fn scaled(profile: Profile, principals: usize, seed: u64) -> Self {
        WorldSpec {
            profile,
            principals,
            departments: 16,
            depth: 4,
            branching: 8,
            leaves: (principals / 20).max(50),
            seed,
        }
    }
}

impl fmt::Display for WorldSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} principals={} departments={} depth={} branching={} leaves={} seed={}",
            self.profile,
            self.principals,
            self.departments,
            self.depth,
            self.branching,
            self.leaves,
            self.seed
        )
    }
}

impl FromStr for WorldSpec {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut words = s.split_whitespace();
        let profile: Profile = words.next().ok_or("empty world spec")?.parse()?;
        let mut spec = WorldSpec {
            profile,
            principals: 0,
            departments: 1,
            depth: 1,
            branching: 1,
            leaves: 1,
            seed: 0,
        };
        for word in words {
            let (key, value) = word
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {word:?}"))?;
            let n: u64 = value
                .parse()
                .map_err(|e| format!("bad value for {key}: {e}"))?;
            match key {
                "principals" => spec.principals = n as usize,
                "departments" => spec.departments = n as usize,
                "depth" => spec.depth = n as usize,
                "branching" => spec.branching = n as usize,
                "leaves" => spec.leaves = n as usize,
                "seed" => spec.seed = n,
                other => return Err(format!("unknown world key {other:?}")),
            }
        }
        if spec.principals == 0 || spec.leaves == 0 || spec.departments == 0 {
            return Err("world needs at least one principal, leaf, and department".into());
        }
        Ok(spec)
    }
}

/// What [`World::build_timed`] measured — the F15 build-side numbers.
#[derive(Clone, Copy, Debug)]
pub struct BuildStats {
    /// Principals registered (admin included).
    pub principals: usize,
    /// Name-space nodes created.
    pub nodes: usize,
    /// Wall-clock build time.
    pub build: Duration,
}

/// A generated world: monitor, extension runtime, and the dramatis
/// personae the campaign operations index into.
///
/// Index vectors only ever grow during a campaign (removed leaves keep
/// their slot and simply stop resolving), so an operation recorded
/// against one world state stays meaningful — if blunted — after
/// minimization removes the operations that came before it.
pub struct World {
    /// The spec this world was built from.
    pub spec: WorldSpec,
    /// The reference monitor over the generated namespace.
    pub monitor: Arc<ReferenceMonitor>,
    /// The extension runtime (quarantine breaker armed with a tight
    /// budget so campaigns exercise it).
    pub runtime: Arc<ExtRuntime>,
    /// The distinguished administrator, holder of `Administrate` on
    /// every generated leaf.
    pub admin: PrincipalId,
    /// Ordinary principals; campaign ops address them by index.
    pub principals: Vec<PrincipalId>,
    /// The group every principal belongs to.
    pub everyone: GroupId,
    /// Department/vendor groups; principal `i` starts in `depts[i % d]`.
    pub depts: Vec<GroupId>,
    /// The deepest interior directories (creation sites for new leaves).
    pub domains: Vec<NsPath>,
    /// Leaf objects; campaign ops address them by index.
    pub leaves: Vec<NsPath>,
    /// Installed extensions with their owner's principal index and kind.
    pub extensions: Vec<(ExtensionId, usize, ExtKind)>,
    /// Lattice-valid classes for relabel/create operations.
    pub palette: Vec<SecurityClass>,
    levels: Vec<TrustLevel>,
    index: HashMap<PrincipalId, usize>,
    created: u64,
}

/// What flavour of extension a campaign installed — decides which
/// invariant its dispatches are checked against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtKind {
    /// Well-behaved: returns 1.
    Calm,
    /// Spins until the fuel meter traps it.
    Hostile,
    /// Grows a string past the world's per-execution byte budget; a
    /// dispatch that runs to completion means the memory limit was
    /// silently skipped (the `vm.mem.limit_skip` mutant).
    Hog,
}

/// A well-behaved extension: returns 1.
const CALM_SRC: &str =
    "module calm\nfunc main() -> int\n  push_int 1\n  ret\nend\nexport main = main\n";
/// A hostile extension: spins until the fuel meter traps it.
const HOSTILE_SRC: &str =
    "module hostile\nfunc main()\nlabel spin\n  jump spin\nend\nexport main = main\n";
/// A memory hog: appends 16 bytes to a string 2048 times (32 KiB of
/// accounted heap, double the world's budget), then returns. Cheap in
/// fuel, so only `Trap::OutOfMemory` — or a planted mutant letting it
/// finish — can decide its outcome.
const HOG_SRC: &str = "module hog
func main() -> int
  locals s: str, i: int
  push_int 0
  store_local i
  label grow
  load_local s
  push_str \"0123456789abcdef\"
  concat
  store_local s
  load_local i
  push_int 1
  add
  store_local i
  load_local i
  push_int 2048
  lt
  jump_if grow
  push_int 1
  ret
end
export main = main
";

/// The per-execution byte budget campaign worlds run extensions under:
/// small enough that [`HOG_SRC`] is cut off in a few hundred
/// iterations, roomy for every legitimate campaign extension.
const WORLD_MEMORY_BYTES: u64 = 16 * 1024;

impl World {
    /// Builds the world described by `spec`. Deterministic: equal specs
    /// yield identical worlds.
    pub fn build(spec: &WorldSpec) -> World {
        World::build_timed(spec).0
    }

    /// Builds the world and reports the F15 build-side measurements.
    pub fn build_timed(spec: &WorldSpec) -> (World, BuildStats) {
        let start = Instant::now();
        let departments = spec.departments.max(1);
        let lattice = Lattice::build(
            spec.profile.level_names(),
            (0..departments).map(|d| format!("{}{d}", spec.profile.category_prefix())),
        )
        .expect("world lattice");
        let levels: Vec<TrustLevel> = spec
            .profile
            .level_names()
            .iter()
            .map(|name| lattice.level(name).expect("world level"))
            .collect();

        let mut builder = MonitorBuilder::new(lattice);
        let admin = builder.add_principal("admin").expect("admin principal");
        let principals: Vec<PrincipalId> = (0..spec.principals)
            .map(|i| builder.add_principal(format!("p{i}")).expect("principal"))
            .collect();
        let everyone = builder.add_group("everyone").expect("everyone group");
        let depts: Vec<GroupId> = (0..departments)
            .map(|d| {
                builder
                    .add_group(format!("{}{d}", spec.profile.category_prefix()))
                    .expect("department group")
            })
            .collect();
        for (i, p) in principals.iter().enumerate() {
            builder.add_member(everyone, *p).expect("everyone member");
            builder
                .add_member(depts[i % departments], *p)
                .expect("department member");
        }
        let monitor = builder.build();

        // The interior tree: `domains` deepest directories addressed by
        // their base-`branching` digit strings, all publicly listable so
        // layering comes from leaf policies (interior churn is a
        // campaign op, not a build-time feature).
        let fanout = spec
            .branching
            .max(1)
            .saturating_pow(spec.depth.min(8) as u32)
            .min(4096);
        let ndomains = (spec.leaves / 8).clamp(1, fanout);
        let mut domains = Vec::with_capacity(ndomains);
        for j in 0..ndomains {
            let mut path = format!("/{}", spec.profile.root());
            let mut digits = Vec::with_capacity(spec.depth);
            let mut v = j;
            for _ in 0..spec.depth.max(1) {
                digits.push(v % spec.branching.max(1));
                v /= spec.branching.max(1);
            }
            for digit in digits.iter().rev() {
                path.push_str(&format!("/d{digit}"));
            }
            domains.push(path.parse::<NsPath>().expect("domain path"));
        }

        let runtime = ExtRuntime::new(Arc::clone(&monitor));
        runtime.set_health_config(HealthConfig {
            fault_budget: 2,
            window: Duration::from_secs(3600),
            cooldown: Duration::from_secs(30),
        });
        runtime.set_machine_limits(MachineLimits {
            memory_bytes: WORLD_MEMORY_BYTES,
            ..MachineLimits::default()
        });
        let mut world = World {
            spec: spec.clone(),
            monitor,
            runtime,
            admin,
            principals,
            everyone,
            depts,
            domains,
            leaves: Vec::with_capacity(spec.leaves),
            extensions: Vec::new(),
            palette: Vec::new(),
            levels,
            index: HashMap::new(),
            created: 0,
        };
        world.index = world
            .principals
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, i))
            .collect();
        world.palette = world.build_palette();

        let leaf_protections: Vec<Protection> =
            (0..spec.leaves).map(|i| world.leaf_protection(i)).collect();
        let domains = world.domains.clone();
        world
            .monitor
            .bootstrap(|ns| {
                let visible = Protection::new(
                    Acl::public(ModeSet::only(AccessMode::List)),
                    SecurityClass::bottom(),
                );
                let mut domain_ids = Vec::with_capacity(domains.len());
                for path in &domains {
                    domain_ids.push(ns.ensure_path(path, NodeKind::Directory, &visible)?);
                }
                for (i, prot) in leaf_protections.iter().enumerate() {
                    ns.insert_at(
                        domain_ids[i % domain_ids.len()],
                        &format!("o{i}"),
                        NodeKind::Procedure,
                        prot.clone(),
                    )?;
                }
                Ok(())
            })
            .expect("world namespace");
        for (i, domain) in (0..spec.leaves).map(|i| (i, &world.domains[i % world.domains.len()])) {
            let path = format!("{domain}/o{i}")
                .parse::<NsPath>()
                .expect("leaf path");
            world.leaves.push(path);
        }

        let stats = BuildStats {
            principals: world.principals.len() + 1,
            nodes: world.monitor.inspect(|ns| ns.len()),
            build: start.elapsed(),
        };
        (world, stats)
    }

    fn build_palette(&self) -> Vec<SecurityClass> {
        let d = self.spec.departments.max(1);
        let mut palette = Vec::new();
        for (li, lvl) in self.levels.iter().enumerate() {
            palette.push(SecurityClass::new(*lvl, std::iter::empty().collect()));
            palette.push(SecurityClass::new(
                *lvl,
                [CategoryId::from_index((li % d) as u16)]
                    .into_iter()
                    .collect(),
            ));
            if d > 1 {
                palette.push(SecurityClass::new(
                    *lvl,
                    [CategoryId::from_index(0), CategoryId::from_index(1)]
                        .into_iter()
                        .collect(),
                ));
            }
        }
        palette
    }

    /// The layered policy of generated leaf `i`: an admin entry, a
    /// department grant, one per-principal grant, periodic negative
    /// entries, and a deterministic MAC label.
    fn leaf_protection(&self, i: usize) -> Protection {
        let d = self.spec.departments.max(1);
        let np = self.principals.len().max(1);
        let mut acl = Acl::from_entries([
            AclEntry::allow_principal_modes(self.admin, ModeSet::all()),
            AclEntry::allow_group_modes(self.depts[i % d], ModeSet::parse("rx").unwrap()),
            AclEntry::allow_principal_modes(
                self.principals[i % np],
                ModeSet::parse("rwx").unwrap(),
            ),
        ]);
        if i.is_multiple_of(5) {
            acl.push(AclEntry::deny_group(
                self.depts[(i + 1) % d],
                AccessMode::Write,
            ));
        }
        Protection::new(acl, self.leaf_label(i))
    }

    fn leaf_label(&self, i: usize) -> SecurityClass {
        let lvl = [0, 0, 1, 0, 1, 0, 2, 1][i % 8].min(self.levels.len() - 1);
        let cats: Vec<CategoryId> = if i.is_multiple_of(3) {
            Vec::new()
        } else {
            vec![CategoryId::from_index(
                (i % self.spec.departments.max(1)) as u16,
            )]
        };
        SecurityClass::new(self.levels[lvl], cats.into_iter().collect())
    }

    /// The fixed security class of principal `i` (mostly mid-level with
    /// the principal's own department; a sprinkling of low- and
    /// high-clearance subjects).
    pub fn class_of(&self, i: usize) -> SecurityClass {
        let d = self.spec.departments.max(1);
        let lvl = [1, 1, 0, 1, 1, 2, 1, 1][i % 8].min(self.levels.len() - 1);
        let mut cats = vec![CategoryId::from_index((i % d) as u16)];
        if i % 16 == 5 {
            cats.push(CategoryId::from_index(((i + 1) % d) as u16));
        }
        SecurityClass::new(self.levels[lvl], cats.into_iter().collect())
    }

    /// The subject for principal index `i` (indices wrap).
    pub fn subject(&self, i: usize) -> Subject {
        let i = i % self.principals.len().max(1);
        Subject::new(self.principals[i], self.class_of(i))
    }

    /// The administrator acting at exactly `label` — `Administrate`
    /// maps to an observe-and-modify flow check, which requires class
    /// equality with the node being administered.
    pub fn admin_subject(&self, label: &SecurityClass) -> Subject {
        Subject::new(self.admin, label.clone())
    }

    /// Maps a principal id back to its campaign index.
    pub fn principal_index(&self, p: PrincipalId) -> Option<usize> {
        self.index.get(&p).copied()
    }

    /// Registers a fresh principal (joins `everyone` and a department),
    /// returning its index.
    pub fn add_principal(&mut self) -> usize {
        let n = self.principals.len();
        let everyone = self.everyone;
        let dept = self.depts[n % self.depts.len()];
        let id = self
            .monitor
            .directory_mut(|d| {
                let id = d.add_principal(format!("px{n}"))?;
                d.add_member(everyone, id)?;
                d.add_member(dept, id)?;
                Ok::<_, DirectoryError>(id)
            })
            .expect("fresh principal");
        self.principals.push(id);
        self.index.insert(id, n);
        n
    }

    /// Creates a fresh leaf under `domains[domain]` with palette class
    /// `class` (TCB operation). Returns the new leaf's index, or `None`
    /// if the insert failed (e.g. an injected namespace fault).
    pub fn create_leaf(&mut self, domain: usize, class: usize) -> Option<usize> {
        let domain = &self.domains[domain % self.domains.len()];
        let name = format!("n{}", self.created);
        self.created += 1;
        let d = self.spec.departments.max(1);
        let serial = self.created as usize;
        let prot = Protection::new(
            Acl::from_entries([
                AclEntry::allow_principal_modes(self.admin, ModeSet::all()),
                AclEntry::allow_group_modes(self.depts[serial % d], ModeSet::parse("rx").unwrap()),
            ]),
            self.palette[class % self.palette.len()].clone(),
        );
        let path: NsPath = format!("{domain}/{name}").parse().expect("leaf path");
        let inserted = self
            .monitor
            .bootstrap(|ns| {
                let parent = ns.resolve(domain)?;
                ns.insert_at(parent, &name, NodeKind::Procedure, prot)?;
                Ok(())
            })
            .is_ok();
        if !inserted {
            return None;
        }
        self.leaves.push(path);
        Some(self.leaves.len() - 1)
    }

    /// Loads an extension of `kind` owned by principal index `owner`;
    /// hostile ones spin until the fuel meter traps them and hogs grow
    /// past the byte budget — both feed the quarantine breaker during
    /// campaigns.
    pub fn install_ext(&mut self, owner: usize, kind: ExtKind) -> Result<ExtensionId, ExtError> {
        let owner = owner % self.principals.len().max(1);
        let src = match kind {
            ExtKind::Calm => CALM_SRC,
            ExtKind::Hostile => HOSTILE_SRC,
            ExtKind::Hog => HOG_SRC,
        };
        let module = extsec_core::vm::asm::assemble(src).expect("extension source");
        let n = self.extensions.len();
        let id = self.runtime.load(
            module,
            ExtensionManifest {
                name: format!("e{n}"),
                principal: self.principals[owner],
                origin: if kind == ExtKind::Calm {
                    Origin::Local
                } else {
                    Origin::Remote("campaign.adversary".into())
                },
                static_class: None,
            },
        )?;
        self.extensions.push((id, owner, kind));
        Ok(id)
    }

    /// The per-principal allow entries of `path`'s ACL, as campaign
    /// principal indices — the revocation candidates.
    pub fn granted_principals(&self, path: &NsPath) -> Vec<usize> {
        let Ok(prot) = self.monitor.protection_of(path) else {
            return Vec::new();
        };
        prot.acl
            .entries()
            .iter()
            .filter_map(|e| match e.who {
                Who::Principal(p) if p != self.admin => self.principal_index(p),
                _ => None,
            })
            .collect()
    }
}
