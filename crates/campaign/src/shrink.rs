//! Replay and automatic campaign minimization.
//!
//! Every violation an exploration finds is shrunk with delta debugging
//! (ddmin): remove chunks of the op list, replay, and keep any removal
//! under which the *same invariant* still fires. The result is a short,
//! human-readable campaign suitable for `tests/corpus/`.

use crate::invariant::Violation;
use crate::op::Campaign;
use crate::session::Session;

/// Replays a recorded campaign from scratch — fresh world, fresh fault
/// plan — and returns the first violation, if the campaign still
/// produces one. Deterministic for a fixed campaign text.
pub fn replay(campaign: &Campaign) -> Option<Violation> {
    let plan = campaign.build_plan();
    let mut session = Session::start(&campaign.spec, plan, campaign.storm.is_some());
    let mut violation = None;
    for op in &campaign.ops {
        if let Err(v) = session.apply(op) {
            violation = Some(v);
            break;
        }
    }
    // Mirror the explorer's end-of-campaign audit sweep, so a campaign
    // whose violation fired there still reproduces under replay.
    if violation.is_none() {
        violation = session.check_audit().err();
    }
    session.finish();
    violation
}

/// What minimization did: the shrunk campaign and how many replays it
/// spent.
#[derive(Debug)]
pub struct MinimizeReport {
    /// The minimized campaign (ops are a subsequence of the input's;
    /// `expect` is preserved).
    pub campaign: Campaign,
    /// Replays spent shrinking.
    pub replays: usize,
}

/// Shrinks `campaign` to a locally minimal op list that still violates
/// the same invariant (`campaign.expect`; if unset, any violation
/// counts), spending at most `max_replays` replays. The returned
/// campaign always still reproduces.
pub fn minimize(campaign: &Campaign, max_replays: usize) -> MinimizeReport {
    let mut best = campaign.clone();
    let mut replays = 0usize;
    let target = campaign.expect;
    let still_fails = |candidate: &Campaign, replays: &mut usize| -> bool {
        *replays += 1;
        match replay(candidate) {
            Some(v) => target.is_none_or(|t| v.invariant == t),
            None => false,
        }
    };

    // Classic ddmin over chunk complements.
    let mut chunks = 2usize;
    while best.ops.len() > 1 && chunks <= best.ops.len() && replays < max_replays {
        let chunk = best.ops.len().div_ceil(chunks);
        let mut shrunk = false;
        let mut start = 0usize;
        while start < best.ops.len() && replays < max_replays {
            let end = (start + chunk).min(best.ops.len());
            let mut candidate = best.clone();
            candidate.ops.drain(start..end);
            if !candidate.ops.is_empty() && still_fails(&candidate, &mut replays) {
                best = candidate;
                shrunk = true;
                // Re-chunk against the shorter list; keep scanning from
                // the same offset.
                chunks = chunks.max(2).min(best.ops.len().max(2));
            } else {
                start = end;
            }
        }
        if !shrunk {
            if chunk == 1 {
                break;
            }
            chunks = (chunks * 2).min(best.ops.len());
        }
    }

    // Final singleton sweep, back to front, to catch stragglers.
    let mut i = best.ops.len();
    while i > 0 && replays < max_replays {
        i -= 1;
        if best.ops.len() <= 1 {
            break;
        }
        let mut candidate = best.clone();
        candidate.ops.remove(i);
        if still_fails(&candidate, &mut replays) {
            best = candidate;
        }
    }

    MinimizeReport {
        campaign: best,
        replays,
    }
}
