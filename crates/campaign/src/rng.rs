//! The explorer's own deterministic generator: a splitmix64 stream, so
//! campaign generation is byte-for-byte reproducible from the seed with
//! no dependence on an external RNG crate's version.

pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Self {
        Rng(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// A uniform index in `0..n` (`n` must be non-zero).
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// True with probability `num`/`den`.
    pub(crate) fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next() % den < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next(), c.next());
    }
}
