//! Adversarial campaign explorer and deterministic scenario generator.
//!
//! The paper's central claim is that the access-control mechanisms stay
//! sound under *sequences* of hostile actions — extension installs,
//! policy mutations, revocations — not just single checks. This crate
//! searches that reachable policy-state space:
//!
//! * [`world`] — a deterministic scenario generator building campus and
//!   app-store worlds from a [`WorldSpec`] (10^1–10^6 principals, deep
//!   namespaces, layered DAC + MAC policies). The same generator is the
//!   explorer's starting state and the F15 scale harness.
//! * [`op`] — the campaign vocabulary: principal/group churn, node
//!   creation and removal, grants, negative entries, guarded
//!   revocations, relabels, extension install/run/quarantine churn,
//!   logical clock advances, and (concurrent) checks. A [`Campaign`] is
//!   a spec + seed + step list with a text codec, so every failure is a
//!   replayable artifact (`tests/corpus/`).
//! * [`invariant`] — the machine-checked invariants: no stale grant
//!   after revoke, no MAC lattice-flow violation on an allowed check,
//!   no quarantine bypass, decision-cache coherence against the
//!   uncached oracle, fail-closed under injected faults, and audit
//!   gap-freedom (the session's hash-chained audit log verifies with
//!   every sequence number persisted or gap-declared).
//! * [`explorer`] — guided traversal: weighted operation selection
//!   biased toward (principal, leaf) pairs whose decisions recently
//!   flipped, with every probe checked against all invariants.
//! * [`shrink`] — ddmin-style campaign minimization: a violating
//!   campaign shrinks to a minimal step list that still reproduces the
//!   same invariant violation.
//!
//! Campaigns optionally run under a fault *storm* (`crates/faults`,
//! fail-closed by contract) and/or with planted *mutants* — known-bad
//! fail-open bugs like a silently skipped revocation — which only
//! scripted plans can arm. DESIGN.md §6.11 documents the model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rng;

pub mod explorer;
pub mod invariant;
pub mod op;
pub mod session;
pub mod shrink;
pub mod world;

pub use explorer::{explore, ExploreConfig, Outcome};
pub use invariant::{
    audit_gap_free, coherent, fail_closed, is_injected_denial, mac_flow, quarantine_honoured,
    resource_bounded, Invariant, RevocationLedger, Violation,
};
pub use op::{Campaign, Mutant, Op, Storm};
pub use session::{Session, SessionStats};
pub use shrink::{minimize, replay, MinimizeReport};
pub use world::{ExtKind, Profile, World, WorldSpec};
