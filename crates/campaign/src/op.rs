//! The campaign vocabulary and its text codec.
//!
//! A [`Campaign`] is a fully replayable artifact: world spec, explorer
//! seed, optional fault storm, optional planted mutants, the invariant
//! the campaign is expected to violate (if any), and the operation
//! list. The text form (`Campaign::to_text`/`Campaign::parse`) is what
//! `tests/corpus/` checks in, so every past violation stays a
//! regression test a human can read.

use crate::invariant::Invariant;
use crate::world::WorldSpec;
use extsec_core::{AccessMode, FaultAction, FaultPlan, ModeSet};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Mutex;

/// One campaign step. Entities are addressed by index into the world's
/// grow-only vectors; replay wraps indices (`i % len`), so an operation
/// survives minimization removing the steps that created its target —
/// it may be blunted into a no-op, never into a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Register a fresh principal (joins `everyone` and a department).
    AddPrincipal,
    /// Add principal `principal` to department group `group`.
    Join {
        /// Principal index.
        principal: usize,
        /// Department group index.
        group: usize,
    },
    /// Remove principal `principal` from department group `group`.
    Leave {
        /// Principal index.
        principal: usize,
        /// Department group index.
        group: usize,
    },
    /// Create a fresh leaf under a domain with a palette class (TCB).
    Create {
        /// Domain index.
        domain: usize,
        /// Palette class index.
        class: usize,
    },
    /// Remove a leaf from the namespace (TCB).
    Remove {
        /// Leaf index.
        leaf: usize,
    },
    /// Append a positive ACL entry for a principal (TCB grant).
    Grant {
        /// Leaf index.
        leaf: usize,
        /// Principal index.
        principal: usize,
        /// Modes granted.
        modes: ModeSet,
    },
    /// Append a negative ACL entry for a principal (TCB).
    Forbid {
        /// Leaf index.
        leaf: usize,
        /// Principal index.
        principal: usize,
        /// Modes denied.
        modes: ModeSet,
    },
    /// The *guarded* revocation: the administrator replaces the leaf's
    /// ACL with every entry mentioning the principal removed, through
    /// [`set_acl`](extsec_core::ReferenceMonitor::set_acl). On success
    /// the revocation ledger records the expected ACL — the stale-grant
    /// invariant's ground truth.
    Revoke {
        /// Leaf index.
        leaf: usize,
        /// Principal index whose direct entries are removed.
        principal: usize,
    },
    /// Relabel a leaf to a palette class (TCB).
    Relabel {
        /// Leaf index.
        leaf: usize,
        /// Palette class index.
        class: usize,
    },
    /// Load a calm or hostile extension owned by a principal.
    Install {
        /// Owner principal index.
        owner: usize,
        /// Hostile extensions spin until the fuel meter traps them.
        hostile: bool,
    },
    /// Load a memory-hog extension owned by a principal; its dispatches
    /// are checked against the resource-bounds invariant.
    InstallHog {
        /// Owner principal index.
        owner: usize,
    },
    /// Dispatch an installed extension as its owner; checked against
    /// the quarantine-bypass invariant.
    RunExt {
        /// Extension index.
        ext: usize,
    },
    /// Advance the health ledger's logical clock.
    Clock {
        /// Milliseconds to advance.
        ms: u64,
    },
    /// A probed check: cached decision vs uncached oracle, MAC flow
    /// re-derivation, and the revocation ledger.
    Check {
        /// Principal index.
        principal: usize,
        /// Leaf index.
        leaf: usize,
        /// Access mode requested.
        mode: AccessMode,
    },
    /// A full policy-bundle lifecycle against one (leaf, principal)
    /// pair: stage a one-edit diff granting the principal read on the
    /// leaf, shadow it across a probe, activate, probe, then roll back.
    BundleCycle {
        /// Leaf index.
        leaf: usize,
        /// Principal index the staged diff grants.
        principal: usize,
    },
    /// A 3-thread concurrent burst of the same check against a fixed
    /// uncached oracle — the F9 lock-free read path under campaign load.
    Burst {
        /// Principal index.
        principal: usize,
        /// Leaf index.
        leaf: usize,
        /// Access mode requested.
        mode: AccessMode,
    },
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::AddPrincipal => write!(f, "add-principal"),
            Op::Join { principal, group } => write!(f, "join principal={principal} group={group}"),
            Op::Leave { principal, group } => {
                write!(f, "leave principal={principal} group={group}")
            }
            Op::Create { domain, class } => write!(f, "create domain={domain} class={class}"),
            Op::Remove { leaf } => write!(f, "remove leaf={leaf}"),
            Op::Grant {
                leaf,
                principal,
                modes,
            } => write!(
                f,
                "grant leaf={leaf} principal={principal} modes={}",
                modes.symbols()
            ),
            Op::Forbid {
                leaf,
                principal,
                modes,
            } => write!(
                f,
                "forbid leaf={leaf} principal={principal} modes={}",
                modes.symbols()
            ),
            Op::Revoke { leaf, principal } => {
                write!(f, "revoke leaf={leaf} principal={principal}")
            }
            Op::Relabel { leaf, class } => write!(f, "relabel leaf={leaf} class={class}"),
            Op::Install { owner, hostile } => {
                write!(f, "install owner={owner} hostile={hostile}")
            }
            Op::InstallHog { owner } => write!(f, "install-hog owner={owner}"),
            Op::RunExt { ext } => write!(f, "run ext={ext}"),
            Op::Clock { ms } => write!(f, "clock ms={ms}"),
            Op::BundleCycle { leaf, principal } => {
                write!(f, "bundle leaf={leaf} principal={principal}")
            }
            Op::Check {
                principal,
                leaf,
                mode,
            } => write!(
                f,
                "check principal={principal} leaf={leaf} mode={}",
                mode.symbol()
            ),
            Op::Burst {
                principal,
                leaf,
                mode,
            } => write!(
                f,
                "burst principal={principal} leaf={leaf} mode={}",
                mode.symbol()
            ),
        }
    }
}

fn fields(words: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    for word in words {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {word:?}"))?;
        map.insert(key.to_string(), value.to_string());
    }
    Ok(map)
}

fn want_usize(map: &HashMap<String, String>, key: &str) -> Result<usize, String> {
    map.get(key)
        .ok_or_else(|| format!("missing {key}"))?
        .parse()
        .map_err(|e| format!("bad {key}: {e}"))
}

fn want_mode(map: &HashMap<String, String>, key: &str) -> Result<AccessMode, String> {
    let raw = map.get(key).ok_or_else(|| format!("missing {key}"))?;
    let c = raw.chars().next().ok_or_else(|| format!("empty {key}"))?;
    AccessMode::from_symbol(c).ok_or_else(|| format!("unknown mode {raw:?}"))
}

fn want_modes(map: &HashMap<String, String>, key: &str) -> Result<ModeSet, String> {
    let raw = map.get(key).ok_or_else(|| format!("missing {key}"))?;
    ModeSet::parse(raw).ok_or_else(|| format!("unknown modes {raw:?}"))
}

impl FromStr for Op {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let words: Vec<&str> = s.split_whitespace().collect();
        let (head, rest) = words.split_first().ok_or("empty op")?;
        let map = fields(rest)?;
        match *head {
            "add-principal" => Ok(Op::AddPrincipal),
            "join" => Ok(Op::Join {
                principal: want_usize(&map, "principal")?,
                group: want_usize(&map, "group")?,
            }),
            "leave" => Ok(Op::Leave {
                principal: want_usize(&map, "principal")?,
                group: want_usize(&map, "group")?,
            }),
            "create" => Ok(Op::Create {
                domain: want_usize(&map, "domain")?,
                class: want_usize(&map, "class")?,
            }),
            "remove" => Ok(Op::Remove {
                leaf: want_usize(&map, "leaf")?,
            }),
            "grant" => Ok(Op::Grant {
                leaf: want_usize(&map, "leaf")?,
                principal: want_usize(&map, "principal")?,
                modes: want_modes(&map, "modes")?,
            }),
            "forbid" => Ok(Op::Forbid {
                leaf: want_usize(&map, "leaf")?,
                principal: want_usize(&map, "principal")?,
                modes: want_modes(&map, "modes")?,
            }),
            "revoke" => Ok(Op::Revoke {
                leaf: want_usize(&map, "leaf")?,
                principal: want_usize(&map, "principal")?,
            }),
            "relabel" => Ok(Op::Relabel {
                leaf: want_usize(&map, "leaf")?,
                class: want_usize(&map, "class")?,
            }),
            "install" => Ok(Op::Install {
                owner: want_usize(&map, "owner")?,
                hostile: map.get("hostile").map(|v| v == "true").unwrap_or(false),
            }),
            "install-hog" => Ok(Op::InstallHog {
                owner: want_usize(&map, "owner")?,
            }),
            "run" => Ok(Op::RunExt {
                ext: want_usize(&map, "ext")?,
            }),
            "clock" => Ok(Op::Clock {
                ms: want_usize(&map, "ms")? as u64,
            }),
            "bundle" => Ok(Op::BundleCycle {
                leaf: want_usize(&map, "leaf")?,
                principal: want_usize(&map, "principal")?,
            }),
            "check" => Ok(Op::Check {
                principal: want_usize(&map, "principal")?,
                leaf: want_usize(&map, "leaf")?,
                mode: want_mode(&map, "mode")?,
            }),
            "burst" => Ok(Op::Burst {
                principal: want_usize(&map, "principal")?,
                leaf: want_usize(&map, "leaf")?,
                mode: want_mode(&map, "mode")?,
            }),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// A seeded random fault storm riding along with a campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Storm {
    /// The storm's fault-plan seed.
    pub seed: u64,
    /// Firing probability per fault-point hit, out of 1024.
    pub rate: u32,
}

/// A planted mutant: a named fail-open bug (a `fire_mutant` point)
/// armed for one specific hit or for every hit of its tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mutant {
    /// The mutant point's tag, e.g. `refmon.set_acl.apply`.
    pub tag: String,
    /// Fire at this 0-based hit only, or at every hit when `None`.
    pub nth: Option<u64>,
}

/// Mutant tags must be `'static` for the fault plan; corpus files carry
/// them as strings. Known tags map to their static spellings and novel
/// ones are interned once per process.
fn intern_tag(tag: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "refmon.set_acl.apply",
        "ext.admit.bypass",
        "vm.mem.limit_skip",
    ];
    if let Some(known) = KNOWN.iter().find(|k| **k == tag) {
        return known;
    }
    static EXTRA: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut extra = EXTRA.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(found) = extra.iter().find(|k| **k == tag) {
        return found;
    }
    let leaked: &'static str = Box::leak(tag.to_owned().into_boxed_str());
    extra.push(leaked);
    leaked
}

/// A fully replayable campaign: world, seed, fault configuration, and
/// the step list. `to_text`/`parse` round-trip exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Campaign {
    /// The world the campaign runs in.
    pub spec: WorldSpec,
    /// The explorer seed that generated the ops (provenance; replay
    /// does not consult it).
    pub seed: u64,
    /// The fault storm, if any.
    pub storm: Option<Storm>,
    /// Planted mutants, if any.
    pub mutants: Vec<Mutant>,
    /// The invariant this campaign violates, if it is a violating one.
    pub expect: Option<Invariant>,
    /// The step list.
    pub ops: Vec<Op>,
}

impl Campaign {
    /// The fault plan this campaign runs under: storm rate plus scripted
    /// mutant entries. `None` when the campaign is fault-free.
    pub fn build_plan(&self) -> Option<FaultPlan> {
        if self.storm.is_none() && self.mutants.is_empty() {
            return None;
        }
        let mut plan = FaultPlan::seeded(self.storm.map(|s| s.seed).unwrap_or(0));
        if let Some(storm) = self.storm {
            plan = plan.rate(storm.rate).actions(&[
                FaultAction::Error,
                FaultAction::Trap,
                FaultAction::Panic,
            ]);
        }
        for mutant in &self.mutants {
            let tag = intern_tag(&mutant.tag);
            plan = match mutant.nth {
                Some(nth) => plan.at(tag, nth, FaultAction::Error),
                None => plan.always(tag, FaultAction::Error),
            };
        }
        Some(plan)
    }

    /// Serializes the campaign to its corpus text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# extsec campaign (format v1)\n");
        out.push_str(&format!("world {}\n", self.spec));
        out.push_str(&format!("seed {}\n", self.seed));
        if let Some(storm) = self.storm {
            out.push_str(&format!("storm seed={} rate={}\n", storm.seed, storm.rate));
        }
        for mutant in &self.mutants {
            match mutant.nth {
                Some(nth) => out.push_str(&format!("mutant tag={} nth={nth}\n", mutant.tag)),
                None => out.push_str(&format!("mutant tag={} nth=all\n", mutant.tag)),
            }
        }
        if let Some(expect) = self.expect {
            out.push_str(&format!("expect {expect}\n"));
        }
        for op in &self.ops {
            out.push_str(&format!("op {op}\n"));
        }
        out
    }

    /// Parses the corpus text form. Blank lines and `#` comments are
    /// ignored.
    pub fn parse(text: &str) -> Result<Campaign, String> {
        let mut spec = None;
        let mut seed = 0;
        let mut storm = None;
        let mut mutants = Vec::new();
        let mut expect = None;
        let mut ops = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |e: String| format!("line {}: {e}", lineno + 1);
            let (head, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            match head {
                "world" => spec = Some(rest.parse::<WorldSpec>().map_err(err)?),
                "seed" => seed = rest.parse::<u64>().map_err(|e| err(e.to_string()))?,
                "storm" => {
                    let words: Vec<&str> = rest.split_whitespace().collect();
                    let map = fields(&words).map_err(err)?;
                    storm = Some(Storm {
                        seed: want_usize(&map, "seed").map_err(err)? as u64,
                        rate: want_usize(&map, "rate").map_err(err)? as u32,
                    });
                }
                "mutant" => {
                    let words: Vec<&str> = rest.split_whitespace().collect();
                    let map = fields(&words).map_err(err)?;
                    let tag = map
                        .get("tag")
                        .ok_or_else(|| err("missing tag".into()))?
                        .clone();
                    let nth = match map.get("nth").map(String::as_str) {
                        None | Some("all") => None,
                        Some(n) => Some(n.parse::<u64>().map_err(|e| err(e.to_string()))?),
                    };
                    mutants.push(Mutant { tag, nth });
                }
                "expect" => expect = Some(rest.parse::<Invariant>().map_err(err)?),
                "op" => ops.push(rest.parse::<Op>().map_err(err)?),
                other => return Err(format!("line {}: unknown directive {other:?}", lineno + 1)),
            }
        }
        Ok(Campaign {
            spec: spec.ok_or("campaign has no world line")?,
            seed,
            storm,
            mutants,
            expect,
            ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extsec_core::AccessMode;

    #[test]
    fn ops_round_trip_through_text() {
        let ops = vec![
            Op::AddPrincipal,
            Op::Join {
                principal: 3,
                group: 1,
            },
            Op::Grant {
                leaf: 2,
                principal: 4,
                modes: ModeSet::parse("rwx").unwrap(),
            },
            Op::Revoke {
                leaf: 2,
                principal: 4,
            },
            Op::Check {
                principal: 4,
                leaf: 2,
                mode: AccessMode::Read,
            },
            Op::Burst {
                principal: 1,
                leaf: 0,
                mode: AccessMode::Execute,
            },
            Op::Install {
                owner: 0,
                hostile: true,
            },
            Op::InstallHog { owner: 2 },
            Op::RunExt { ext: 0 },
            Op::Clock { ms: 500 },
            Op::BundleCycle {
                leaf: 3,
                principal: 1,
            },
        ];
        for op in ops {
            let text = op.to_string();
            assert_eq!(text.parse::<Op>().unwrap(), op, "{text}");
        }
    }

    #[test]
    fn campaigns_round_trip_through_text() {
        let campaign = Campaign {
            spec: WorldSpec::campus(5),
            seed: 42,
            storm: Some(Storm { seed: 7, rate: 24 }),
            mutants: vec![Mutant {
                tag: "refmon.set_acl.apply".into(),
                nth: None,
            }],
            expect: Some(Invariant::StaleGrant),
            ops: vec![
                Op::Grant {
                    leaf: 1,
                    principal: 2,
                    modes: ModeSet::parse("rx").unwrap(),
                },
                Op::Revoke {
                    leaf: 1,
                    principal: 2,
                },
                Op::Check {
                    principal: 2,
                    leaf: 1,
                    mode: AccessMode::Read,
                },
            ],
        };
        let text = campaign.to_text();
        let parsed = Campaign::parse(&text).unwrap();
        assert_eq!(parsed, campaign);
        assert_eq!(parsed.to_text(), text);
    }
}
