//! A campaign session: one world plus the machinery that applies
//! operations and checks every probe against the invariants. The
//! explorer generates ops into a session; replay feeds a recorded list
//! through an identical session, so the two cannot drift apart.

use crate::invariant::{
    audit_gap_free, coherent, is_injected_denial, mac_flow, quarantine_honoured, resource_bounded,
    Invariant, RevocationLedger, Violation,
};
use crate::op::Op;
use crate::world::{ExtKind, World, WorldSpec};
use extsec_core::{
    faults, AccessMode, Acl, AuditPipeline, Decision, FaultPlan, FaultStats, PipelineConfig, Who,
};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Counters a session keeps while applying ops.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// Ops applied.
    pub applied: usize,
    /// Invariant probes evaluated (explicit checks plus re-probes).
    pub probes: u64,
    /// Probes that came back allowed.
    pub grants: u64,
    /// Probes that came back denied.
    pub denials: u64,
    /// Probes whose outcome flipped relative to the previous probe of
    /// the same (principal, leaf, mode) — the explorer's guidance
    /// signal.
    pub flips: u64,
}

/// How many pending revocation expectations are re-probed after each
/// mutating op, and how many flipped pairs the hot ring remembers.
const REPROBE_LEAVES: usize = 4;
const HOT_CAP: usize = 32;

/// How often (in applied ops) the session re-verifies the audit chain
/// and its gap accounting. The full check flushes the drainer and
/// re-derives every segment hash, so it is periodic, not per-op; the
/// explorer and replay also run it once at campaign end.
const AUDIT_CHECK_INTERVAL: usize = 512;

/// A running campaign: world, revocation ledger, probe memory, and the
/// process-global fault plan (installed on start, cleared on finish or
/// drop).
pub struct Session {
    /// The world under campaign.
    pub world: World,
    /// Post-revocation ground truth.
    pub ledger: RevocationLedger,
    /// Counters.
    pub stats: SessionStats,
    /// Recently flipped (principal, leaf) pairs, most recent last.
    pub hot: VecDeque<(usize, usize)>,
    storm: bool,
    step: usize,
    memory: HashMap<(usize, usize, AccessMode), bool>,
    plan_installed: bool,
}

impl Session {
    /// Builds the world (fault-free — construction is not part of the
    /// campaign), then installs `plan` if one is given.
    pub fn start(spec: &WorldSpec, plan: Option<FaultPlan>, storm: bool) -> Session {
        let world = World::build(spec);
        // Campaign sessions run audited: an in-memory pipeline (queue
        // sized so single-threaded probing never sheds) records every
        // probe the invariants make, and [`audit_gap_free`] re-verifies
        // the chain and its gap accounting as the campaign runs.
        world
            .monitor
            .attach_audit_pipeline(Arc::new(AuditPipeline::in_memory(PipelineConfig {
                queue_capacity: 1 << 16,
                ..PipelineConfig::default()
            })));
        let plan_installed = plan.is_some();
        if let Some(plan) = plan {
            faults::install(plan);
        }
        Session {
            world,
            ledger: RevocationLedger::default(),
            stats: SessionStats::default(),
            hot: VecDeque::new(),
            storm,
            step: 0,
            memory: HashMap::new(),
            plan_installed,
        }
    }

    /// The current step counter (ops applied so far).
    pub fn step(&self) -> usize {
        self.step
    }

    /// Clears the fault plan and returns what it injected.
    pub fn finish(&mut self) -> FaultStats {
        if self.plan_installed {
            self.plan_installed = false;
            faults::clear()
        } else {
            FaultStats::default()
        }
    }

    /// Applies one op, then re-probes pending revocation expectations
    /// if the op mutated policy. An `Err` is an invariant violation —
    /// the campaign stops there.
    pub fn apply(&mut self, op: &Op) -> Result<(), Violation> {
        self.step += 1;
        self.stats.applied += 1;
        let mutated = match op {
            Op::AddPrincipal => {
                self.world.add_principal();
                true
            }
            Op::Join { principal, group } => {
                let p = self.world.principals[*principal % self.world.principals.len()];
                let g = self.world.depts[*group % self.world.depts.len()];
                self.world.monitor.directory_mut(|d| {
                    let _ = d.add_member(g, p);
                });
                true
            }
            Op::Leave { principal, group } => {
                let p = self.world.principals[*principal % self.world.principals.len()];
                let g = self.world.depts[*group % self.world.depts.len()];
                self.world.monitor.directory_mut(|d| {
                    let _ = d.remove_member(g, p);
                });
                true
            }
            Op::Create { domain, class } => {
                self.world.create_leaf(*domain, *class);
                true
            }
            Op::Remove { leaf } => {
                let li = *leaf % self.world.leaves.len();
                let path = self.world.leaves[li].clone();
                let _ = self.world.monitor.bootstrap(|ns| ns.remove(&path));
                // The node is gone; any expectation about it is moot.
                self.ledger.clear(li);
                true
            }
            Op::Grant {
                leaf,
                principal,
                modes,
            } => {
                let li = *leaf % self.world.leaves.len();
                let path = self.world.leaves[li].clone();
                let p = self.world.principals[*principal % self.world.principals.len()];
                let entry = extsec_core::AclEntry::allow_principal_modes(p, *modes);
                let _ = self.world.monitor.bootstrap(|ns| {
                    let id = ns.resolve(&path)?;
                    ns.update_protection(id, |prot| prot.acl.push(entry))?;
                    Ok(())
                });
                // A legitimate later ACL change supersedes the
                // revocation expectation.
                self.ledger.clear(li);
                true
            }
            Op::Forbid {
                leaf,
                principal,
                modes,
            } => {
                let li = *leaf % self.world.leaves.len();
                let path = self.world.leaves[li].clone();
                let p = self.world.principals[*principal % self.world.principals.len()];
                let entry = extsec_core::AclEntry::deny_principal_modes(p, *modes);
                let _ = self.world.monitor.bootstrap(|ns| {
                    let id = ns.resolve(&path)?;
                    ns.update_protection(id, |prot| prot.acl.push(entry))?;
                    Ok(())
                });
                self.ledger.clear(li);
                true
            }
            Op::Revoke { leaf, principal } => {
                self.revoke(*leaf, *principal);
                true
            }
            Op::Relabel { leaf, class } => {
                let li = *leaf % self.world.leaves.len();
                let path = self.world.leaves[li].clone();
                let label = self.world.palette[*class % self.world.palette.len()].clone();
                let _ = self.world.monitor.bootstrap(|ns| {
                    let id = ns.resolve(&path)?;
                    ns.update_protection(id, |prot| prot.label = label)?;
                    Ok(())
                });
                // The ACL is untouched: a live revocation expectation
                // stays valid.
                true
            }
            Op::Install { owner, hostile } => {
                let kind = if *hostile {
                    ExtKind::Hostile
                } else {
                    ExtKind::Calm
                };
                let _ = self.world.install_ext(*owner, kind);
                false
            }
            Op::InstallHog { owner } => {
                let _ = self.world.install_ext(*owner, ExtKind::Hog);
                false
            }
            Op::RunExt { ext } => {
                self.run_ext(*ext)?;
                false
            }
            Op::Clock { ms } => {
                self.world
                    .runtime
                    .health()
                    .advance(Duration::from_millis(*ms));
                false
            }
            Op::Check {
                principal,
                leaf,
                mode,
            } => {
                self.probe(*principal, *leaf, *mode)?;
                false
            }
            Op::Burst {
                principal,
                leaf,
                mode,
            } => {
                self.burst(*principal, *leaf, *mode)?;
                false
            }
            Op::BundleCycle { leaf, principal } => {
                self.bundle_cycle(*leaf, *principal)?;
                true
            }
        };
        if mutated {
            self.reprobe()?;
        }
        if self.step.is_multiple_of(AUDIT_CHECK_INTERVAL) {
            self.check_audit()?;
        }
        Ok(())
    }

    /// Verifies the audit pipeline's chain integrity and gap
    /// accounting ([`audit_gap_free`]), stamping any violation with the
    /// current step. The explorer and replay call this once more at
    /// campaign end, so a gap introduced after the last periodic check
    /// still fails the campaign.
    pub fn check_audit(&self) -> Result<(), Violation> {
        audit_gap_free(&self.world.monitor).map_err(|v| v.at_step(self.step))
    }

    /// The guarded revocation: read the leaf's current protection,
    /// strip every direct entry of the principal, and push the new ACL
    /// through the monitor's guarded `set_acl` as the administrator. An
    /// expectation is recorded only when the monitor acknowledged the
    /// replacement — which is exactly what the planted
    /// `refmon.set_acl.apply` mutant betrays.
    fn revoke(&mut self, leaf: usize, principal: usize) {
        let li = leaf % self.world.leaves.len();
        let path = self.world.leaves[li].clone();
        let pi = principal % self.world.principals.len();
        let p = self.world.principals[pi];
        let Ok(prot) = self.world.monitor.protection_of(&path) else {
            return;
        };
        let new_acl = Acl::from_entries(
            prot.acl
                .entries()
                .iter()
                .filter(|e| e.who != Who::Principal(p))
                .cloned(),
        );
        if new_acl.len() == prot.acl.len() {
            // Nothing to revoke: no expectation either way.
            return;
        }
        let admin = self.world.admin_subject(&prot.label);
        if self
            .world
            .monitor
            .set_acl(&admin, &path, new_acl.clone())
            .is_ok()
        {
            self.ledger.note(li, new_acl, pi);
        }
    }

    /// A full bundle lifecycle: stage a one-edit diff that appends a
    /// read grant for the principal on the leaf, shadow it across one
    /// probe (enforcement must not move), activate it, probe under the
    /// new surface, then roll back and probe again. A bundle refusal
    /// (an injected fault, a principal name that no longer resolves)
    /// ends the cycle quietly — the invariants only care about what
    /// the monitor actually published.
    fn bundle_cycle(&mut self, leaf: usize, principal: usize) -> Result<(), Violation> {
        let li = leaf % self.world.leaves.len();
        let pi = principal % self.world.principals.len();
        let path = self.world.leaves[li].clone();
        let p = self.world.principals[pi];
        let name = self.world.monitor.directory(|d| d.principal_name(p));
        let source = format!(
            "bundle \"campaign-{step}\" version 1 base current;\nacl-add {path} \"+{name}:r\";\n",
            step = self.step
        );
        let Ok(staged) = self.world.monitor.stage_bundle(&source) else {
            return Ok(());
        };
        if self.world.monitor.shadow_bundle(staged.id, true).is_ok() {
            self.probe(pi, li, AccessMode::Read)?;
            let _ = self.world.monitor.shadow_bundle(staged.id, false);
        }
        if self.world.monitor.activate_bundle(staged.id).is_err() {
            return Ok(());
        }
        // The appended grant supersedes any pending revocation
        // expectation on this leaf, and rollback below restores the
        // pre-bundle ACL, so the expectation stays cleared either way.
        self.ledger.clear(li);
        self.probe(pi, li, AccessMode::Read)?;
        let _ = self.world.monitor.rollback();
        self.probe(pi, li, AccessMode::Read)
    }

    fn run_ext(&mut self, ext: usize) -> Result<(), Violation> {
        if self.world.extensions.is_empty() {
            return Ok(());
        }
        let (id, owner, kind) = self.world.extensions[ext % self.world.extensions.len()];
        let subject = self.world.subject(owner);
        let report = self.world.runtime.explain_health(id);
        let outcome = self.world.runtime.run(id, "main", &[], &subject);
        quarantine_honoured(&report, &outcome).map_err(|v| v.at_step(self.step))?;
        if kind == ExtKind::Hog {
            resource_bounded(&outcome).map_err(|v| v.at_step(self.step))?;
        }
        Ok(())
    }

    /// One invariant-checked probe: cache coherence, MAC flow
    /// re-derivation, and the revocation ledger, plus flip tracking for
    /// the explorer's guidance.
    pub fn probe(
        &mut self,
        principal: usize,
        leaf: usize,
        mode: AccessMode,
    ) -> Result<(), Violation> {
        let pi = principal % self.world.principals.len();
        let li = leaf % self.world.leaves.len();
        let subject = self.world.subject(pi);
        let path = self.world.leaves[li].clone();
        self.stats.probes += 1;
        let decision = coherent(&self.world.monitor, &subject, &path, mode, self.storm)
            .map_err(|v| v.at_step(self.step))?;
        mac_flow(&self.world.monitor, &subject, &path, mode, &decision)
            .map_err(|v| v.at_step(self.step))?;
        if decision.allowed() {
            self.stats.grants += 1;
            self.ledger
                .verify_grant(&self.world.monitor, li, pi, subject.principal, mode)
                .map_err(|v| v.at_step(self.step))?;
        } else {
            self.stats.denials += 1;
        }
        let key = (pi, li, mode);
        if let Some(previous) = self.memory.insert(key, decision.allowed()) {
            if previous != decision.allowed() {
                self.stats.flips += 1;
                self.hot.push_back((pi, li));
                if self.hot.len() > HOT_CAP {
                    self.hot.pop_front();
                }
            }
        }
        Ok(())
    }

    /// Concurrent burst: one uncached oracle, then the same check from
    /// three threads through the lock-free cached read path. With no
    /// concurrent mutator, any granted answer must match the oracle
    /// (injected denials of the oracle are tolerated under a storm).
    fn burst(&mut self, principal: usize, leaf: usize, mode: AccessMode) -> Result<(), Violation> {
        let pi = principal % self.world.principals.len();
        let li = leaf % self.world.leaves.len();
        let subject = self.world.subject(pi);
        let path = self.world.leaves[li].clone();
        self.stats.probes += 1;
        let oracle = self.world.monitor.check_unmemoized(&subject, &path, mode);
        let monitor = &self.world.monitor;
        let decisions: Vec<Decision> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| scope.spawn(|| monitor.check(&subject, &path, mode)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("burst thread"))
                .collect()
        });
        for got in &decisions {
            if got.allowed() && !oracle.allowed() && !(self.storm && is_injected_denial(&oracle)) {
                return Err(Violation::new(
                    Invariant::FailClosed,
                    format!(
                        "concurrent check on {path} {mode:?} granted but the oracle denied \
                         ({oracle:?})"
                    ),
                )
                .at_step(self.step));
            }
        }
        Ok(())
    }

    /// After every mutating op: re-probe the oldest pending revocation
    /// expectations (read + execute per revoked principal). This is
    /// what turns a skipped revocation into a detected violation within
    /// a handful of steps instead of "whenever the random walk returns".
    fn reprobe(&mut self) -> Result<(), Violation> {
        for (leaf, principals) in self.ledger.sample(REPROBE_LEAVES) {
            for principal in principals {
                for mode in [AccessMode::Read, AccessMode::Execute] {
                    self.probe(principal, leaf, mode)?;
                }
            }
        }
        Ok(())
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.plan_installed {
            faults::clear();
        }
    }
}
